"""Benchmark validating Theorem 2: heterogeneous coverage-time bounds.

The measured average coverage time of the generalized BCC scheme must lie
between the theorem's lower bound (``min E[T-hat(m)]``) and upper bound
(``min E[T-hat(floor(c m log m))] + 1``), both evaluated at the P2-optimal
loads for a heterogeneous shift-exponential cluster.
"""

from repro.cluster.spec import ClusterSpec
from repro.experiments.theorems import run_theorem2_validation
from repro.utils.tables import TextTable


def test_theorem2_coverage_time_bounds(benchmark, report):
    cluster = ClusterSpec.paper_fig5_cluster(num_workers=50, num_fast=3, shift=5.0)
    validation = benchmark.pedantic(
        lambda: run_theorem2_validation(
            num_examples=100, cluster=cluster, num_trials=300, rng=0
        ),
        rounds=1,
        iterations=1,
    )
    table = TextTable(["quantity", "value"], title="Theorem 2 bound check")
    table.add_row(["lower bound", validation.bounds.lower])
    table.add_row(["measured coverage time", validation.measured_coverage_time])
    table.add_row(["upper bound", validation.bounds.upper])
    table.add_row(["constant c", validation.bounds.constant])
    report("Theorem 2 — heterogeneous coverage-time bounds", table.render())

    assert validation.bounds.lower <= validation.bounds.upper
    assert validation.within_bounds
