"""Ablation benchmark: straggler (network jitter) intensity.

Sweeps the per-message communication jitter of the EC2-like cluster and
compares BCC against the uncoded baseline. Expected shape: the BCC speed-up
grows as transfers become more variable, because the uncoded master waits for
the slowest of all n transfers while BCC only needs the fastest ~(m/r)log(m/r).
"""

from repro.experiments.ablations import straggler_intensity_sweep
from repro.utils.tables import TextTable


def test_ablation_straggler_intensity(benchmark, report):
    rows = benchmark.pedantic(
        lambda: straggler_intensity_sweep(
            jitters=(0.005, 0.02, 0.06, 0.2), num_iterations=40, rng=0
        ),
        rounds=1,
        iterations=1,
    )
    table = TextTable(
        ["comm jitter (s)", "BCC total (s)", "uncoded total (s)", "BCC speed-up"],
        title="Ablation — network-straggling intensity sweep",
    )
    for row in rows:
        table.add_row(
            [
                row["comm_jitter"],
                row["bcc_total_time"],
                row["uncoded_total_time"],
                f"{100 * row['speedup']:.1f}%",
            ]
        )
    report("Ablation — straggler intensity", table.render())

    speedups = [row["speedup"] for row in rows]
    assert all(value > 0 for value in speedups)
    assert speedups[-1] > speedups[0]
