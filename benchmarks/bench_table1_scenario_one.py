"""Benchmark reproducing the paper's Table I (scenario one breakdown).

Recovery threshold, communication time, computation time and total running
time for the uncoded, cyclic-repetition and BCC schemes with n = 50 workers,
m = 50 batches of 100 points, r = 10 and 100 iterations.

Expected shape (paper): recovery thresholds 50 / 41 / ~11, communication time
dominating computation for every scheme, and total times ordered
uncoded > cyclic repetition > BCC with BCC roughly 5-7x faster than uncoded.
"""

from repro.experiments.fig4 import ScenarioConfig, run_scenario

PAPER_ROWS = {
    "uncoded": {"recovery_threshold": 50, "total_time": 28.786},
    "cyclic-repetition": {"recovery_threshold": 41, "total_time": 13.990},
    "bcc": {"recovery_threshold": 11, "total_time": 4.205},
}


def test_table1_scenario_one_breakdown(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_scenario(ScenarioConfig.scenario_one(), rng=0),
        rounds=1,
        iterations=1,
    )
    report(
        "Table I — breakdown of running times (scenario one)",
        result.render(),
        paper_rows=str(PAPER_ROWS),
        bcc_speedup_vs_uncoded=result.speedup_over("bcc", "uncoded"),
        bcc_speedup_vs_cyclic=result.speedup_over("bcc", "cyclic-repetition"),
    )

    rows = {name: result.row(name) for name in result.jobs}
    # Recovery thresholds are structural and must match the paper closely.
    assert rows["uncoded"]["recovery_threshold"] == 50.0
    assert rows["cyclic-repetition"]["recovery_threshold"] == 41.0
    assert 10.0 <= rows["bcc"]["recovery_threshold"] <= 13.5
    # Communication dominates computation (the paper's central observation).
    for row in rows.values():
        assert row["communication_time"] > row["computation_time"]
    # Total-time ordering and rough factors.
    assert rows["bcc"]["total_time"] < rows["cyclic-repetition"]["total_time"]
    assert rows["cyclic-repetition"]["total_time"] < rows["uncoded"]["total_time"]
    assert 0.6 <= result.speedup_over("bcc", "uncoded") <= 0.97
    assert 0.4 <= result.speedup_over("bcc", "cyclic-repetition") <= 0.92
