"""Benchmark validating Theorem 1 (Eq. 2/3): the BCC recovery threshold.

For a grid of computational loads the Monte-Carlo average of the BCC stopping
time is compared against the closed form ``ceil(m/r) * H_{ceil(m/r)}`` and
checked to sit inside the ``[m/r, ceil(m/r) H]`` sandwich.
"""

from repro.experiments.theorems import run_theorem1_validation


def test_theorem1_recovery_threshold_bounds(benchmark, report):
    validation = benchmark.pedantic(
        lambda: run_theorem1_validation(
            num_examples=100, loads=[5, 10, 20, 25, 50], num_trials=2000, rng=0
        ),
        rounds=1,
        iterations=1,
    )
    report(
        "Theorem 1 — BCC recovery threshold: closed form vs simulation",
        validation.render(),
        max_relative_error=validation.max_relative_error(),
    )

    assert validation.max_relative_error() < 0.05
    for lower, simulated, closed in zip(
        validation.lower_bounds, validation.simulated, validation.closed_forms
    ):
        assert lower <= simulated + 1e-9
        assert simulated <= 1.1 * closed
