"""Benchmark of the timing engines on a *dynamic* cluster.

Runs the same 1000-worker job through both engines on a cluster with
Markov-modulated slow/fast regimes plus a scripted churn schedule (periodic
spot preemptions), asserts the two engines produce *identical* summaries —
the dynamic extension of the RNG draw-order contract — and asserts the
vectorized engine is at least 5x faster, the acceptance bar of the
dynamic-cluster subsystem. The bar is lower than the stationary engine
benchmark's 10x because both engines share the timeline materialisation
cost, and churn rows force the vectorized engine onto per-iteration
(row-vectorized) draws.
"""

import time

from repro.cluster.dynamic import ChurnEvent, DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.schemes.registry import scheme_from_config
from repro.simulation.job import simulate_job
from repro.simulation.vectorized import simulate_job_vectorized
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import ShiftedExponentialDelay
from repro.utils.tables import TextTable

NUM_WORKERS = 1000
NUM_ITERATIONS = 300
MINIMUM_SPEEDUP = 5.0

#: (scheme config, with churn events?). Uncoded has zero redundancy, so it
#: runs the absence-free Markov scenario; BCC additionally survives the
#: scripted preemption schedule.
SCHEMES = (
    ({"name": "uncoded"}, False),
    ({"name": "bcc", "load": 100}, True),
)


def _dynamic_cluster(with_churn: bool) -> DynamicClusterSpec:
    base = ClusterSpec.homogeneous(
        NUM_WORKERS,
        ShiftedExponentialDelay(straggling=1.0, shift=0.001),
        LinearCommunicationModel(latency=0.01, seconds_per_unit=0.001),
    )
    # Periodic spot preemptions walking across the fleet.
    events = (
        tuple(
            ChurnEvent(
                kind="preempt",
                worker=(7 * index) % NUM_WORKERS,
                iteration=10 * index,
                recovery=5,
            )
            for index in range(1, NUM_ITERATIONS // 10)
        )
        if with_churn
        else ()
    )
    return DynamicClusterSpec(
        base,
        dynamics={"name": "markov", "slowdown": 8.0, "p_slow": 0.05},
        events=events,
    )


def test_vectorized_engine_at_least_5x_faster_under_dynamics(benchmark, report):
    rows = []

    for config, with_churn in SCHEMES:
        name = config["name"]
        cluster = _dynamic_cluster(with_churn)
        started = time.perf_counter()
        loop_result = simulate_job(
            scheme_from_config(config),
            cluster,
            NUM_WORKERS,
            NUM_ITERATIONS,
            rng=0,
        )
        loop_seconds = time.perf_counter() - started

        # Best of three: the minimum is the noise-robust statistic, so the
        # floor does not flake on a loaded CI runner.
        vectorized_seconds = float("inf")
        for _attempt in range(3):
            started = time.perf_counter()
            vectorized_result = simulate_job_vectorized(
                scheme_from_config(config),
                cluster,
                NUM_WORKERS,
                NUM_ITERATIONS,
                rng=0,
            )
            vectorized_seconds = min(
                vectorized_seconds, time.perf_counter() - started
            )

        assert vectorized_result.summary() == loop_result.summary(), (
            f"{name}: the engines must agree bit for bit on dynamic clusters"
        )
        speedup = loop_seconds / vectorized_seconds
        assert speedup >= MINIMUM_SPEEDUP, (
            f"{name}: vectorized engine is only {speedup:.1f}x faster under "
            f"dynamics (bar: {MINIMUM_SPEEDUP:.0f}x)"
        )
        rows.append(
            [name, "yes" if with_churn else "no", f"{loop_seconds:.2f}",
             f"{vectorized_seconds:.2f}", f"{speedup:.1f}x"]
        )

    churn_cluster = _dynamic_cluster(True)

    def run_once():
        simulate_job_vectorized(
            scheme_from_config(SCHEMES[-1][0]),
            churn_cluster,
            NUM_WORKERS,
            NUM_ITERATIONS,
            rng=0,
        )

    benchmark(run_once)
    table = TextTable(
        ["scheme", "churn", "loop (s)", "vectorized (s)", "speedup"],
        title=(
            f"Dynamic-cluster engines — n={NUM_WORKERS}, "
            f"{NUM_ITERATIONS} iterations, Markov regimes + churn schedule"
        ),
    )
    for row in rows:
        table.add_row(row)
    report("bench_churn", table.render(), minimum_speedup=MINIMUM_SPEEDUP)
