"""Ablation benchmark: the computational load ``r`` drives the whole tradeoff.

Sweeps the BCC batch size on the EC2-like cluster (scenario-one dimensions)
and reports the realised recovery threshold and run-time breakdown per load.
Expected shape: the recovery threshold falls roughly like ``(m/r) log(m/r)``
as ``r`` grows, and the total time falls with it until the (small)
computation term starts to matter.
"""

from repro.experiments.ablations import load_sweep
from repro.utils.tables import TextTable


def test_ablation_computational_load_sweep(benchmark, report):
    rows = benchmark.pedantic(
        lambda: load_sweep(loads=(5, 10, 25, 50), num_iterations=40, rng=0),
        rounds=1,
        iterations=1,
    )
    table = TextTable(
        ["load r", "recovery threshold", "total time (s)", "computation (s)", "communication (s)"],
        title="Ablation — BCC computational-load sweep (m = 50 batches, n = 50 workers)",
    )
    for row in rows:
        table.add_row(
            [
                int(row["load"]),
                row["recovery_threshold"],
                row["total_time"],
                row["computation_time"],
                row["communication_time"],
            ]
        )
    report("Ablation — computational load sweep", table.render())

    thresholds = [row["recovery_threshold"] for row in rows]
    assert all(a > b for a, b in zip(thresholds, thresholds[1:]))
    # Larger loads keep reducing how many workers the master waits for.
    assert thresholds[-1] < 0.25 * thresholds[0]
