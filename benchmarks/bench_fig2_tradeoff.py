"""Benchmark reproducing the paper's Fig. 2.

Recovery threshold vs computational load for m = n = 100: the lower bound
``m/r``, the BCC scheme, the simple randomized scheme and the cyclic
repetition scheme, plus Monte-Carlo cross-checks of the two random schemes.

Expected shape (paper): BCC sits just above the lower bound and far below
both the randomized scheme (for small r) and the cyclic-repetition line
``m - r + 1``.
"""

from repro.experiments.fig2 import run_fig2


def test_fig2_tradeoff_curves(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig2(
            num_examples=100,
            num_workers=100,
            loads=list(range(5, 51, 5)),
            monte_carlo_trials=20,
            rng=0,
        ),
        rounds=1,
        iterations=1,
    )
    report("Fig. 2 — recovery threshold vs computational load", result.render())

    # Shape assertions mirroring the figure.
    for index, load in enumerate(result.loads):
        lower = result.curves["lower-bound"][index]
        bcc = result.curves["bcc"][index]
        cyclic = result.curves["cyclic-repetition"][index]
        randomized = result.curves["randomized"][index]
        assert lower <= bcc <= randomized + 1e-9
        assert bcc <= cyclic + 1e-9
    # At r = 10 the paper's figure shows BCC ~ 29 vs CR = 91.
    index = result.loads.index(10)
    assert result.curves["bcc"][index] < 0.45 * result.curves["cyclic-repetition"][index]
