"""Benchmark reproducing the paper's Table II (scenario two breakdown).

Same breakdown as Table I for n = 100 workers and m = 100 batches of 100
points (r = 10, 100 iterations).

Expected shape (paper): recovery thresholds 100 / 91 / ~25-29, communication
time dominating, total times uncoded > cyclic repetition > BCC with BCC
roughly 3-4x faster than uncoded.
"""

from repro.experiments.fig4 import ScenarioConfig, run_scenario

PAPER_ROWS = {
    "uncoded": {"recovery_threshold": 100, "total_time": 33.020},
    "cyclic-repetition": {"recovery_threshold": 91, "total_time": 29.482},
    "bcc": {"recovery_threshold": 25, "total_time": 8.931},
}


def test_table2_scenario_two_breakdown(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_scenario(ScenarioConfig.scenario_two(), rng=0),
        rounds=1,
        iterations=1,
    )
    report(
        "Table II — breakdown of running times (scenario two)",
        result.render(),
        paper_rows=str(PAPER_ROWS),
        bcc_speedup_vs_uncoded=result.speedup_over("bcc", "uncoded"),
        bcc_speedup_vs_cyclic=result.speedup_over("bcc", "cyclic-repetition"),
    )

    rows = {name: result.row(name) for name in result.jobs}
    assert rows["uncoded"]["recovery_threshold"] == 100.0
    assert rows["cyclic-repetition"]["recovery_threshold"] == 91.0
    assert 24.0 <= rows["bcc"]["recovery_threshold"] <= 33.0
    for row in rows.values():
        assert row["communication_time"] > row["computation_time"]
    assert rows["bcc"]["total_time"] < rows["cyclic-repetition"]["total_time"]
    assert rows["cyclic-repetition"]["total_time"] < rows["uncoded"]["total_time"]
    assert result.speedup_over("bcc", "uncoded") >= 0.5
    assert result.speedup_over("bcc", "cyclic-repetition") >= 0.4
