"""Benchmark of the scheme auto-tuner's analytic pruning.

One pin, ``test_tuner_prunes_and_matches_exhaustive``: on a fig2-shaped
grid the two-stage tuner must (a) recommend the **same winner** as
exhaustively simulating every feasible candidate at the same seeds —
candidates share trial seeds (common random numbers), so the comparison is
bit-for-bit on the winner's mean — and (b) get there while simulating at
least **5x fewer** candidates than the exhaustive sweep (the analytic
oracle's leverage; :doc:`the tuning guide </tuning>`).

Measurements append to ``benchmarks/BENCH_sweep.json`` — the shared
machine-readable perf trajectory — through
:func:`repro.analysis.validation.load_benchmark_history`, so a corrupt
history file is backed up to ``*.corrupt`` and warned about, never
silently erased. ``BENCH_TUNE_QUICK=1`` (or the sweep benchmarks'
``BENCH_SWEEP_QUICK=1``) shrinks the grid for CI smokes; the winner-match
assertion and the pruning floor are never relaxed.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.validation import load_benchmark_history
from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep
from repro.exceptions import ReproError
from repro.experiments.ec2 import ec2_like_cluster
from repro.service import ResultCache
from repro.tuning import TuneSpec, tune

HISTORY_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

QUICK = any(
    os.environ.get(name, "") not in ("", "0")
    for name in ("BENCH_TUNE_QUICK", "BENCH_SWEEP_QUICK")
)

#: Minimum exhaustive-feasible-candidates per simulated-candidate ratio.
#: Never relaxed: this is the acceptance pin for the analytic oracle's
#: leverage on a fig2-shaped search space.
PRUNING_FLOOR = 5.0


def _append_history(entry: dict) -> None:
    """Append one run's measurements to the perf-trajectory artifact."""
    history = load_benchmark_history(HISTORY_PATH)
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()), **entry}
    history["runs"].append(entry)
    HISTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _tune_spec() -> TuneSpec:
    """A fig2-shaped search space (m = n = 100 at full size)."""
    if QUICK:
        return TuneSpec(
            cluster=ec2_like_cluster(20),
            loads=(4, 8),
            num_units=(20,),
            unit_sizes=(20,),
            num_iterations=5,
            trials=2,
            top_k=2,
            seed=0,
        )
    return TuneSpec(
        cluster=ec2_like_cluster(100),
        loads=(5, 10, 25, 50),
        num_units=(50, 100),
        unit_sizes=(50, 100),
        num_iterations=10,
        trials=4,
        top_k=5,
        seed=0,
    )


def _exhaustive_means(spec: TuneSpec) -> dict:
    """Simulate every feasible candidate at the tuner's seeds: ground truth."""
    means = {}
    for candidate in spec.candidates():
        job = JobSpec(
            scheme=dict(candidate.scheme),
            cluster=spec.cluster,
            num_units=candidate.num_units,
            unit_size=candidate.unit_size,
            num_iterations=spec.num_iterations,
            serialize_master_link=spec.serialize_master_link,
            seed=spec.seed,
        )
        try:
            result = run_sweep(
                Sweep(
                    job,
                    trials=spec.trials,
                    backend=TimingSimBackend(engine=spec.engine),
                ),
                record="summary",
            )
        except ReproError:
            continue  # infeasible/unsimulable cell; the tuner ledgers these
        means[candidate.index] = float(
            np.mean([record.result.total_time for record in result])
        )
    return means


def test_tuner_prunes_and_matches_exhaustive(benchmark, report, tmp_path):
    spec = _tune_spec()

    tuned = benchmark.pedantic(
        lambda: tune(spec, cache=ResultCache(tmp_path)),
        rounds=1,
        iterations=1,
    )
    tune_seconds = benchmark.stats.stats.total

    exhaustive_started = time.perf_counter()
    exhaustive = _exhaustive_means(spec)
    exhaustive_seconds = time.perf_counter() - exhaustive_started

    truth_index = min(exhaustive, key=exhaustive.get)
    pruning_factor = len(exhaustive) / max(tuned.pruning["simulated"], 1)

    table = tuned.to_table().render()
    report(
        f"Auto-tuner — {tuned.pruning['simulated']}/{len(exhaustive)} "
        f"feasible candidates simulated ({pruning_factor:.1f}x pruning, "
        f"floor {PRUNING_FLOOR}x); tune {tune_seconds:.3f}s vs exhaustive "
        f"{exhaustive_seconds:.3f}s",
        table,
        tune_seconds=tune_seconds,
        exhaustive_seconds=exhaustive_seconds,
        pruning_factor=pruning_factor,
    )
    _append_history(
        {
            "test": "tune_pruning_vs_exhaustive",
            "quick": QUICK,
            "candidates": tuned.pruning["candidates"],
            "feasible": len(exhaustive),
            "simulated": tuned.pruning["simulated"],
            "pruning_factor": pruning_factor,
            "tune_seconds": tune_seconds,
            "exhaustive_seconds": exhaustive_seconds,
            "best": dict(tuned.best.candidate.scheme),
            "best_num_units": tuned.best.candidate.num_units,
            "best_unit_size": tuned.best.candidate.unit_size,
            "floor": PRUNING_FLOOR,
        }
    )

    # Correctness before speed: same winner as exhaustive ground truth, and
    # the winner's simulated mean is the exhaustive mean bit for bit
    # (common random numbers across candidates).
    assert tuned.best.candidate.index == truth_index, (
        f"pruned recommendation {tuned.best.candidate.label} != exhaustive "
        f"winner index {truth_index}"
    )
    assert tuned.best.simulated_seconds == exhaustive[truth_index]
    assert pruning_factor >= PRUNING_FLOOR, (
        f"analytic pruning leverage regressed: simulated "
        f"{tuned.pruning['simulated']} of {len(exhaustive)} feasible "
        f"candidates ({pruning_factor:.1f}x < {PRUNING_FLOOR}x)"
    )
