"""Benchmark of the analytic backend: closed forms vs Monte-Carlo simulation.

Runs a Fig. 2-sized sweep (m = n = 100, the full computational-load grid for
BCC and the randomized scheme plus the uncoded and cyclic-repetition
baselines) through the vectorized timing engine and through the analytic
backend, asserts the two agree within the documented 15 % relative error on
every cell, and asserts the analytic backend is at least 100x faster — the
acceptance bar of its introduction.

Both sides estimate the same quantity: the expected per-iteration runtime
over the placement randomness *and* the arrival randomness. Monte Carlo
therefore replicates each cell over several independently drawn placements
(``TRIALS``) x many iterations; the analytic backend produces the same
expectation in one O(1) evaluation per cell, which is where the speedup
comes from — and it grows linearly with the iteration budget.
"""

import time

from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep
from repro.experiments.ec2 import ec2_like_cluster

NUM_WORKERS = 100
NUM_UNITS = 100
UNIT_SIZE = 100
NUM_ITERATIONS = 600
TRIALS = 8
MINIMUM_SPEEDUP = 100.0
TOLERANCE = 0.15

SCHEMES = (
    [{"name": "bcc", "load": r} for r in range(5, 51, 5)]
    + [{"name": "randomized", "load": r} for r in range(5, 51, 5)]
    + [{"name": "uncoded"}, {"name": "cyclic-repetition", "load": 10}]
)


def _base() -> JobSpec:
    return JobSpec(
        scheme=SCHEMES[0],
        cluster=ec2_like_cluster(NUM_WORKERS),
        num_units=NUM_UNITS,
        num_iterations=NUM_ITERATIONS,
        unit_size=UNIT_SIZE,
        serialize_master_link=False,
        seed=0,
    )


def test_analytic_backend_at_least_100x_faster(benchmark, report):
    base = _base()

    started = time.perf_counter()
    simulated = run_sweep(
        Sweep(
            base,
            parameters={"scheme": SCHEMES},
            trials=TRIALS,
            backend=TimingSimBackend(engine="vectorized"),
        )
    )
    simulated_seconds = time.perf_counter() - started

    started = time.perf_counter()
    analytic = run_sweep(
        Sweep(base, parameters={"scheme": SCHEMES}, backend="analytic")
    )
    analytic_seconds = time.perf_counter() - started

    speedup = simulated_seconds / analytic_seconds
    simulated_rows = simulated.aggregate(metrics=["total_time"])
    rows = []
    worst_error = 0.0
    for sim_row, ana_record in zip(simulated_rows, analytic.records):
        sim_mean = sim_row["total_time"] / NUM_ITERATIONS
        ana_mean = ana_record.result.total_time / NUM_ITERATIONS
        error = abs(ana_mean - sim_mean) / sim_mean
        worst_error = max(worst_error, error)
        rows.append(
            f"{ana_record.result.scheme_name:20s} sim={sim_mean:.5f}s "
            f"analytic={ana_mean:.5f}s err={100 * error:5.1f}%"
        )
        assert error <= TOLERANCE, rows[-1]

    rendered = "\n".join(
        rows
        + [
            "",
            f"vectorized sweep: {simulated_seconds:8.3f}s "
            f"({len(SCHEMES)} cells x {TRIALS} placements x "
            f"{NUM_ITERATIONS} iterations)",
            f"analytic sweep:   {analytic_seconds:8.3f}s "
            f"({len(SCHEMES)} closed-form evaluations)",
            f"speedup:          {speedup:8.1f}x (required >= {MINIMUM_SPEEDUP:.0f}x)",
            f"worst cell error: {100 * worst_error:8.1f}% (allowed <= 15%)",
        ]
    )
    report(
        "Analytic backend vs vectorized engine — Fig. 2-sized sweep",
        rendered,
        speedup=speedup,
        worst_error=worst_error,
        simulated_seconds=simulated_seconds,
        analytic_seconds=analytic_seconds,
    )
    assert speedup >= MINIMUM_SPEEDUP, (
        f"analytic backend only {speedup:.1f}x faster than the vectorized "
        f"engine (required {MINIMUM_SPEEDUP:.0f}x)"
    )

    benchmark(
        lambda: run_sweep(
            Sweep(base, parameters={"scheme": SCHEMES}, backend="analytic")
        )
    )
