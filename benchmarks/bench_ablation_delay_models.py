"""Ablation benchmark: universality across delay distributions.

Runs BCC, cyclic repetition and uncoded under shift-exponential, Pareto and
bimodal computation-time families. Expected shape: BCC wins under every
family — it needs no knowledge of the delay distribution (the paper's
"universality" property), unlike codes designed for a fixed straggler count.
"""

from repro.experiments.ablations import delay_model_comparison
from repro.utils.tables import TextTable


def test_ablation_delay_model_universality(benchmark, report):
    rows = benchmark.pedantic(
        lambda: delay_model_comparison(num_iterations=40, rng=0),
        rounds=1,
        iterations=1,
    )
    table = TextTable(
        ["delay model", "BCC total (s)", "cyclic repetition total (s)", "uncoded total (s)"],
        title="Ablation — scheme comparison across delay families",
    )
    for row in rows:
        table.add_row(
            [
                row["delay_model"],
                row["bcc_total_time"],
                row["cyclic_total_time"],
                row["uncoded_total_time"],
            ]
        )
    report("Ablation — delay-model universality", table.render())

    for row in rows:
        assert row["bcc_total_time"] < row["cyclic_total_time"]
        assert row["bcc_total_time"] < row["uncoded_total_time"]
