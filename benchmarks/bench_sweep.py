"""Benchmark of the unified sweep engine: serial vs parallel execution.

Runs the same BCC load x scheme grid with multi-trial replication through
``run_sweep`` serially and on a process pool (the simulation is CPU-bound
Python, so processes are the executor that can actually speed it up),
asserts the two produce identical tables (the spawn seed strategy's
determinism guarantee), and reports both wall-clock times. On a single-core
runner the pool only adds overhead — the assertion is about identity, not
speed-up.
"""

import time

from repro.api import JobSpec, Sweep, run_sweep
from repro.experiments.ec2 import ec2_like_cluster


def _sweep() -> Sweep:
    base = JobSpec(
        scheme={"name": "bcc", "load": 10},
        cluster=ec2_like_cluster(50),
        num_units=50,
        num_iterations=30,
        unit_size=100,
        serialize_master_link=False,
        seed=0,
    )
    return Sweep(
        base,
        parameters={
            "scheme": [
                {"name": "bcc", "load": 5},
                {"name": "bcc", "load": 10},
                {"name": "bcc", "load": 25},
                {"name": "uncoded"},
                {"name": "cyclic-repetition", "load": 10},
            ]
        },
        trials=4,
    )


def test_sweep_parallel_matches_serial(benchmark, report):
    sweep = _sweep()

    serial_started = time.perf_counter()
    serial = run_sweep(sweep)
    serial_seconds = time.perf_counter() - serial_started

    parallel = benchmark.pedantic(
        lambda: run_sweep(sweep, max_workers=4, executor="process"),
        rounds=1,
        iterations=1,
    )
    parallel_seconds = benchmark.stats.stats.total

    serial_table = serial.to_table(title="Sweep — 5 schemes x 4 trials").render()
    parallel_table = parallel.to_table(title="Sweep — 5 schemes x 4 trials").render()
    assert parallel_table == serial_table

    report(
        "Sweep engine — serial vs 4-process parallel (identical tables)",
        serial_table,
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
    )
