"""Benchmarks of the unified sweep engine.

Three pins:

1. ``test_sweep_parallel_matches_serial`` — the spawn seed strategy's
   determinism guarantee: a process pool produces byte-identical tables.
2. ``test_trial_batched_speedup`` — the trial-batched fast path: on a
   Fig. 2-sized sweep (m = n = 100, ten loads x {bcc, randomized}, 64
   trials) dispatching whole cells through the vectorized engine must be at
   least ``5x`` faster than per-trial execution, with every batched trial
   bit-identical to a solo run at the same spawned seed.
3. ``test_distributed_nodes_match_serial`` — the multi-node path: the same
   sweep sharded across two real ``repro serve`` subprocess nodes (the TCP
   lease protocol, pull-based stealing and all) renders the serial table
   byte for byte.

The tests append their measurements to ``benchmarks/BENCH_sweep.json`` — a
machine-readable perf trajectory (one entry per run, newest last) that CI
and humans can diff across commits. Setting ``BENCH_SWEEP_QUICK=1`` shrinks
the workload for CI smokes and relaxes the speedup floor accordingly; the
identity assertions are never relaxed.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis.validation import load_benchmark_history
from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep
from repro.cluster.spec import ClusterSpec
from repro.experiments.ec2 import ec2_like_cluster
from repro.scheduling import DistributedExecutor
from repro.simulation.vectorized import simulate_job_vectorized
from repro.stragglers.models import ExponentialDelay
from repro.utils.rng import random_seed_sequence

HISTORY_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

QUICK = os.environ.get("BENCH_SWEEP_QUICK", "") not in ("", "0")

#: Speedup floor for the trial-batched path. The full-size run measures
#: 10-15x on one core; 5x is the acceptance floor. The quick (CI smoke)
#: workload is small enough that constant overheads bite, so its regression
#: guard is looser — it catches "the fast path stopped being fast", not
#: exact ratios.
SPEEDUP_FLOOR = 2.0 if QUICK else 5.0


def _append_history(entry: dict) -> None:
    """Append one run's measurements to the perf-trajectory artifact.

    A corrupt artifact must not fail the benchmark, but it must not be
    erased either: the shared loader backs it up to ``*.corrupt`` and
    warns (see :func:`repro.analysis.validation.load_benchmark_history`).
    """
    history = load_benchmark_history(HISTORY_PATH)
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()), **entry}
    history["runs"].append(entry)
    HISTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _sweep() -> Sweep:
    base = JobSpec(
        scheme={"name": "bcc", "load": 10},
        cluster=ec2_like_cluster(50),
        num_units=50,
        num_iterations=30,
        unit_size=100,
        serialize_master_link=False,
        seed=0,
    )
    return Sweep(
        base,
        parameters={
            "scheme": [
                {"name": "bcc", "load": 5},
                {"name": "bcc", "load": 10},
                {"name": "bcc", "load": 25},
                {"name": "uncoded"},
                {"name": "cyclic-repetition", "load": 10},
            ]
        },
        trials=4,
    )


def test_sweep_parallel_matches_serial(benchmark, report):
    sweep = _sweep()

    serial_started = time.perf_counter()
    serial = run_sweep(sweep)
    serial_seconds = time.perf_counter() - serial_started

    parallel = benchmark.pedantic(
        lambda: run_sweep(sweep, max_workers=4, executor="process"),
        rounds=1,
        iterations=1,
    )
    parallel_seconds = benchmark.stats.stats.total

    serial_table = serial.to_table(title="Sweep — 5 schemes x 4 trials").render()
    parallel_table = parallel.to_table(title="Sweep — 5 schemes x 4 trials").render()
    assert parallel_table == serial_table

    report(
        "Sweep engine — serial vs 4-process parallel (identical tables)",
        serial_table,
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
    )
    _append_history(
        {
            "test": "sweep_parallel_matches_serial",
            "quick": QUICK,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
        }
    )


def _fig2_sweep():
    """A Fig. 2-sized Monte-Carlo sweep: the trial-batching headline case.

    m = n = 100 exponential workers, single-iteration jobs, many trials per
    (load, scheme) cell — exactly the shape of the paper's recovery-threshold
    cross-checks, where per-trial overhead (planning, engine entry, result
    objects) dwarfs the single iteration each trial simulates.
    """
    trials = 16 if QUICK else 64
    loads = [5, 25, 50] if QUICK else list(range(5, 51, 5))
    cluster = ClusterSpec.homogeneous(100, ExponentialDelay(straggling=1.0))
    base = JobSpec(
        scheme={"name": "bcc", "load": 10},
        cluster=cluster,
        num_units=100,
        num_iterations=1,
        serialize_master_link=False,
        seed=0,
    )
    sweep = Sweep(
        base,
        parameters={"scheme.load": loads, "scheme.name": ["bcc", "randomized"]},
        trials=trials,
        backend=TimingSimBackend(engine="vectorized"),
    )
    return sweep, trials, loads


def _assert_batched_trials_match_solo(sweep: Sweep, batched) -> None:
    """Every batched trial of the first cell == its solo run (bit-identical)."""
    cells = sweep.cells()
    children = random_seed_sequence(sweep.base.seed).spawn(len(cells) * sweep.trials)
    spec = sweep.base.with_overrides(cells[0])
    scheme = spec.resolve_scheme()
    generator = np.random.default_rng(children[0])
    plan = scheme.build_feasible_plan(
        spec.num_units, spec.cluster.num_workers, generator
    )
    for trial in range(sweep.trials):
        rng = generator if trial == 0 else np.random.default_rng(children[trial])
        solo = simulate_job_vectorized(
            plan,
            spec.cluster,
            spec.num_units,
            spec.num_iterations,
            rng,
            serialize_master_link=spec.serialize_master_link,
        )
        record = batched.records[trial]
        assert record.cell == 0 and record.trial == trial
        summary = dict(record.result.summary())
        summary.pop("backend", None)
        assert summary == solo.summary(), (
            f"batched trial {trial} diverged from its solo run"
        )


def test_trial_batched_speedup(benchmark, report):
    sweep, trials, loads = _fig2_sweep()

    per_trial_started = time.perf_counter()
    per_trial = run_sweep(sweep, trial_batching="never")
    per_trial_seconds = time.perf_counter() - per_trial_started

    batched = benchmark.pedantic(
        lambda: run_sweep(sweep, trial_batching="always", record="summary"),
        rounds=1,
        iterations=1,
    )
    batched_seconds = benchmark.stats.stats.total
    speedup = per_trial_seconds / batched_seconds

    # Correctness before speed: the batched trials are bit-identical to solo
    # runs at the same spawned seeds (the simulate_job_batch contract).
    _assert_batched_trials_match_solo(sweep, batched)

    table = batched.to_table(
        title=(
            f"Trial-batched sweep — {len(loads) * 2} cells x {trials} trials, "
            f"m=n=100 (speedup {speedup:.1f}x)"
        )
    ).render()
    report(
        f"Trial batching — per-trial {per_trial_seconds:.3f}s vs batched "
        f"{batched_seconds:.3f}s ({speedup:.1f}x, floor {SPEEDUP_FLOOR}x)",
        table,
        per_trial_seconds=per_trial_seconds,
        batched_seconds=batched_seconds,
        speedup=speedup,
    )
    _append_history(
        {
            "test": "trial_batched_speedup",
            "quick": QUICK,
            "cells": len(loads) * 2,
            "trials": trials,
            "per_trial_seconds": per_trial_seconds,
            "batched_seconds": batched_seconds,
            "speedup": speedup,
            "floor": SPEEDUP_FLOOR,
        }
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"trial-batched sweep regressed: {speedup:.2f}x < {SPEEDUP_FLOOR}x "
        f"(per-trial {per_trial_seconds:.3f}s, batched {batched_seconds:.3f}s)"
    )
    assert per_trial.num_cells == batched.num_cells == len(loads) * 2


def _spawn_node() -> "tuple[subprocess.Popen, str]":
    """Start one ``repro serve`` node on an ephemeral port; return its endpoint.

    ``--port 0`` makes the server announce ``repro serve: listening on
    HOST:PORT`` on stdout once bound — the same handshake scripted callers
    use — so there is no port-picking race.
    """
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = process.stdout.readline()
    prefix = "repro serve: listening on "
    if not line.startswith(prefix):
        process.terminate()
        raise AssertionError(f"unexpected serve announcement: {line!r}")
    return process, line[len(prefix) :].strip()


def test_distributed_nodes_match_serial(benchmark, report):
    """Two real nodes over TCP render the serial sweep table byte for byte."""
    sweep = _sweep()

    serial_started = time.perf_counter()
    serial = run_sweep(sweep)
    serial_seconds = time.perf_counter() - serial_started

    nodes = [_spawn_node() for _ in range(2)]
    try:
        executor = DistributedExecutor(",".join(endpoint for _, endpoint in nodes))
        with executor:
            distributed = benchmark.pedantic(
                lambda: run_sweep(sweep, executor=executor),
                rounds=1,
                iterations=1,
            )
        distributed_seconds = benchmark.stats.stats.total
    finally:
        for process, _ in nodes:
            process.terminate()
        for process, _ in nodes:
            process.wait(timeout=10)

    serial_table = serial.to_table(title="Sweep — 5 schemes x 4 trials").render()
    distributed_table = distributed.to_table(
        title="Sweep — 5 schemes x 4 trials"
    ).render()
    assert distributed_table == serial_table

    report(
        "Sweep engine — serial vs 2 distributed serve nodes (identical tables)",
        distributed_table,
        serial_seconds=serial_seconds,
        distributed_seconds=distributed_seconds,
    )
    _append_history(
        {
            "test": "distributed_nodes_match_serial",
            "level": "node",
            "quick": QUICK,
            "nodes": 2,
            "serial_seconds": serial_seconds,
            "distributed_seconds": distributed_seconds,
        }
    )
