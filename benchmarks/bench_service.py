"""Benchmark of the content-addressed result cache and sweep service.

One pin, ``test_cached_resubmission_speedup``: resubmitting an identical
sweep through a :class:`~repro.service.cache.ResultCache` must be served
at least **95 %** from cache and run at least ``10x`` faster than the
first (computing) submission — the "iterate on plots for free" promise of
:doc:`the service guide </service>`. Correctness comes first: the cached
records must equal the computed ones exactly, and a disk-tier reload
(fresh cache object, same directory — a new process, morally) must hit
and agree too.

Measurements append to ``benchmarks/BENCH_sweep.json`` — the same
machine-readable perf trajectory the sweep benchmarks feed (one entry per
run, newest last). ``BENCH_SWEEP_QUICK=1`` shrinks the workload for CI
smokes and relaxes the speedup floor; the hit-rate floor and the identity
assertions are never relaxed.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis.validation import load_benchmark_history
from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep
from repro.experiments.ec2 import ec2_like_cluster
from repro.service import ResultCache

HISTORY_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

QUICK = os.environ.get("BENCH_SWEEP_QUICK", "") not in ("", "0")

#: Wall-clock floor for a fully cached resubmission. A cache hit is a dict
#: lookup plus record assembly, so the full-size run measures hundreds of
#: times faster; 10x is the acceptance floor. The quick workload computes
#: so little that fixed overheads bite, hence the looser guard.
SPEEDUP_FLOOR = 3.0 if QUICK else 10.0

#: Fraction of a resubmission's tasks that must be cache hits. Never
#: relaxed: every task of an identical sweep is fingerprintable, so
#: anything below 1.0 would mean keys stopped being content-addressed.
HIT_RATE_FLOOR = 0.95


def _append_history(entry: dict) -> None:
    """Append one run's measurements to the perf-trajectory artifact.

    A corrupt artifact must not fail the benchmark, but it must not be
    erased either: the shared loader backs it up to ``*.corrupt`` and
    warns (see :func:`repro.analysis.validation.load_benchmark_history`).
    """
    history = load_benchmark_history(HISTORY_PATH)
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()), **entry}
    history["runs"].append(entry)
    HISTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _sweep() -> Sweep:
    """A plot-iteration-shaped sweep: many cells, real per-cell cost."""
    iterations = 80 if QUICK else 400
    loads = [5, 10] if QUICK else [5, 10, 25, 50]
    workers = 20 if QUICK else 100
    base = JobSpec(
        scheme={"name": "bcc", "load": loads[0]},
        cluster=ec2_like_cluster(workers),
        num_units=workers,
        num_iterations=iterations,
        unit_size=100,
        serialize_master_link=False,
        seed=0,
    )
    configs = [{"name": "bcc", "load": load} for load in loads]
    configs += [{"name": "randomized", "load": load} for load in loads]
    configs.append({"name": "uncoded"})
    return Sweep(
        base,
        parameters={"scheme": configs},
        trials=2 if QUICK else 4,
        backend=TimingSimBackend(engine="vectorized"),
    )


def _records(result):
    return [(r.cell, r.trial, r.result) for r in result]


def test_cached_resubmission_speedup(benchmark, report, tmp_path):
    sweep = _sweep()
    cache = ResultCache(tmp_path)

    cold_started = time.perf_counter()
    cold = run_sweep(sweep, record="summary", cache=cache)
    cold_seconds = time.perf_counter() - cold_started
    stores = cache.stats.stores

    warm = benchmark.pedantic(
        lambda: run_sweep(sweep, record="summary", cache=cache),
        rounds=1,
        iterations=1,
    )
    warm_seconds = benchmark.stats.stats.total
    speedup = cold_seconds / warm_seconds
    hit_rate = cache.stats.hits / max(cache.stats.hits + cache.stats.misses - stores, 1)

    # Correctness before speed: cached records equal computed records, and
    # a fresh cache over the same directory (a new process, morally) hits
    # from disk and agrees too.
    assert _records(warm) == _records(cold)
    reloaded = ResultCache(tmp_path)
    disk = run_sweep(sweep, record="summary", cache=reloaded)
    assert _records(disk) == _records(cold)
    assert reloaded.stats.misses == 0 and reloaded.stats.hits == stores

    table = warm.to_table(
        title=(
            f"Cached resubmission — {warm.num_cells} cells x {sweep.trials} "
            f"trials (speedup {speedup:.1f}x, {cache.stats.hits}/{stores} hits)"
        )
    ).render()
    report(
        f"Result cache — cold {cold_seconds:.3f}s vs cached {warm_seconds:.3f}s "
        f"({speedup:.1f}x, floor {SPEEDUP_FLOOR}x; hit rate {hit_rate:.0%})",
        table,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        speedup=speedup,
        hit_rate=hit_rate,
    )
    _append_history(
        {
            "test": "cached_resubmission_speedup",
            "quick": QUICK,
            "cells": warm.num_cells,
            "trials": sweep.trials,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "hit_rate": hit_rate,
            "floor": SPEEDUP_FLOOR,
        }
    )
    assert hit_rate >= HIT_RATE_FLOOR, (
        f"resubmission hit only {hit_rate:.0%} of tasks in cache "
        f"(need >= {HIT_RATE_FLOOR:.0%})"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"cached resubmission regressed: {speedup:.2f}x < {SPEEDUP_FLOOR}x "
        f"(cold {cold_seconds:.3f}s, cached {warm_seconds:.3f}s)"
    )
