"""Benchmark of the timing engines: per-iteration loop vs vectorized batch.

Runs the same 1000-worker x 1000-iteration job through both engines for an
uncoded, a BCC, and a coded (fractional-repetition) scheme, asserts the two
produce *identical* summaries (the RNG draw-order contract of
:mod:`repro.simulation.vectorized`), and asserts the vectorized engine is at
least 10x faster on every scheme — the acceptance bar of the engine's
introduction. A smaller smoke case checks the full sweep path end to end.

The cyclic-repetition/Reed-Solomon codes are represented by fractional
repetition: at n = 1000 their per-iteration decodability test is an
O(n^3) rank computation that dominates *both* engines equally, which would
benchmark the linear algebra, not the engines.
"""

import time

from repro.cluster.spec import ClusterSpec
from repro.schemes.registry import scheme_from_config
from repro.simulation.job import simulate_job
from repro.simulation.vectorized import simulate_job_vectorized
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import ShiftedExponentialDelay

NUM_WORKERS = 1000
NUM_ITERATIONS = 1000
MINIMUM_SPEEDUP = 10.0

SCHEMES = (
    {"name": "uncoded"},
    {"name": "bcc", "load": 50},
    {"name": "fractional-repetition", "load": 10},
)


def _cluster() -> ClusterSpec:
    return ClusterSpec.homogeneous(
        NUM_WORKERS,
        ShiftedExponentialDelay(straggling=1.0, shift=0.001),
        LinearCommunicationModel(latency=0.01, seconds_per_unit=0.001),
    )


def test_vectorized_engine_at_least_10x_faster(benchmark, report):
    cluster = _cluster()
    rows = []
    vectorized_results = {}

    for config in SCHEMES:
        name = config["name"]
        started = time.perf_counter()
        loop_result = simulate_job(
            scheme_from_config(config),
            cluster,
            NUM_WORKERS,
            NUM_ITERATIONS,
            rng=0,
        )
        loop_seconds = time.perf_counter() - started

        # Best of three: the minimum is the noise-robust statistic, and the
        # 10x floor should not flake on a loaded CI runner.
        vectorized_seconds = float("inf")
        for _attempt in range(3):
            started = time.perf_counter()
            vectorized_result = simulate_job_vectorized(
                scheme_from_config(config),
                cluster,
                NUM_WORKERS,
                NUM_ITERATIONS,
                rng=0,
            )
            vectorized_seconds = min(
                vectorized_seconds, time.perf_counter() - started
            )
        vectorized_results[name] = vectorized_result

        assert vectorized_result.summary() == loop_result.summary(), (
            f"{name}: the engines must agree bit for bit"
        )
        speedup = loop_seconds / vectorized_seconds
        assert speedup >= MINIMUM_SPEEDUP, (
            f"{name}: vectorized engine is only {speedup:.1f}x faster "
            f"({loop_seconds:.2f}s vs {vectorized_seconds:.2f}s); "
            f"the bar is {MINIMUM_SPEEDUP:.0f}x"
        )
        rows.append(
            f"{name:24s} loop={loop_seconds:7.2f}s "
            f"vectorized={vectorized_seconds:6.2f}s speedup={speedup:6.1f}x"
        )

    # The benchmark statistic tracks the vectorized engine's wall clock.
    benchmark.pedantic(
        lambda: simulate_job_vectorized(
            scheme_from_config(SCHEMES[1]), cluster, NUM_WORKERS, NUM_ITERATIONS, rng=0
        ),
        rounds=1,
        iterations=1,
    )
    report(
        f"Timing engines — {NUM_WORKERS} workers x {NUM_ITERATIONS} iterations "
        "(identical summaries)",
        "\n".join(rows),
        minimum_speedup=MINIMUM_SPEEDUP,
    )


def test_vectorized_sweep_smoke(benchmark, report):
    """The engine knob flows through JobSpec -> backend -> run_sweep."""
    from repro.api import JobSpec, Sweep, TimingSimBackend, run_sweep

    base = JobSpec(
        scheme={"name": "bcc", "load": 10},
        cluster=ClusterSpec.homogeneous(
            50,
            ShiftedExponentialDelay(straggling=1.0, shift=0.001),
            LinearCommunicationModel(latency=0.01, seconds_per_unit=0.001),
        ),
        num_units=50,
        num_iterations=50,
        seed=0,
    )
    sweep = Sweep(
        base,
        parameters={"scheme": list(SCHEMES[:2]) + [{"name": "bcc", "load": 25}]},
        trials=3,
    )
    import dataclasses

    loop_table = run_sweep(
        dataclasses.replace(sweep, backend=TimingSimBackend(engine="loop"))
    ).to_table()
    vectorized = benchmark.pedantic(
        lambda: run_sweep(
            dataclasses.replace(sweep, backend=TimingSimBackend(engine="vectorized"))
        ),
        rounds=1,
        iterations=1,
    )
    vectorized_table = vectorized.to_table()
    assert vectorized_table.render() == loop_table.render()
    report(
        "Sweep through the vectorized engine (identical to engine=loop)",
        vectorized_table.render(),
    )
