"""Micro-benchmarks of the computational substrate.

These are conventional pytest-benchmark timings (many rounds) of the hot
kernels the reproduction relies on: the paper-scale logistic gradient, the
BCC worker message (summed partial gradients), the coded encode/decode pair,
and one timing-only simulated iteration at scenario-two scale.

The file skips itself cleanly when ``pytest-benchmark`` is not installed
(it is a benchmarking extra, not a test dependency), and setting
``BENCH_KERNELS_QUICK=1`` shrinks the problem sizes for CI smokes — the
correctness assertions are unchanged, only the workloads scale down.
"""

import os

import numpy as np
import pytest

pytest.importorskip(
    "pytest_benchmark", reason="benchmarks need the pytest-benchmark plugin"
)

from repro.coding.cyclic_repetition import CyclicRepetitionCode
from repro.coding.linear_code import LinearGradientCode
from repro.datasets.synthetic import LogisticDataConfig, make_paper_logistic_data
from repro.experiments.ec2 import ec2_like_cluster
from repro.gradients.logistic import LogisticLoss
from repro.schemes.base import CodedAggregator
from repro.schemes.bcc import BCCScheme
from repro.simulation.iteration import simulate_iteration

QUICK = os.environ.get("BENCH_KERNELS_QUICK", "") not in ("", "0")

#: Paper-scale problem sizes, shrunk ~4x per axis under the quick mode.
NUM_EXAMPLES = 250 if QUICK else 1000
NUM_FEATURES = 500 if QUICK else 2000
NUM_WORKERS = 25 if QUICK else 50


@pytest.fixture(scope="module")
def logistic_problem():
    config = LogisticDataConfig(num_examples=NUM_EXAMPLES, num_features=NUM_FEATURES)
    dataset, _ = make_paper_logistic_data(config, seed=0)
    weights = np.random.default_rng(1).standard_normal(NUM_FEATURES) * 0.01
    return LogisticLoss(), dataset, weights


def test_kernel_full_logistic_gradient(benchmark, logistic_problem):
    model, dataset, weights = logistic_problem
    result = benchmark(model.gradient, weights, dataset.features, dataset.labels)
    assert np.all(np.isfinite(result))


def test_kernel_bcc_worker_message(benchmark, logistic_problem):
    model, dataset, weights = logistic_problem
    features, labels = dataset.rows(np.arange(min(100, NUM_EXAMPLES)))
    result = benchmark(model.gradient_sum, weights, features, labels)
    assert result.shape == (NUM_FEATURES,)


def test_kernel_cyclic_code_encode_decode(benchmark):
    code = CyclicRepetitionCode(num_workers=NUM_WORKERS, num_stragglers=9, seed=0)
    gradients = np.random.default_rng(2).standard_normal((NUM_WORKERS, NUM_FEATURES))
    survivors = list(range(9, NUM_WORKERS))

    def encode_and_decode():
        messages = np.vstack([code.encode(w, gradients) for w in survivors])
        return code.decode(survivors, messages)

    decoded = benchmark(encode_and_decode)
    np.testing.assert_allclose(decoded, gradients.sum(axis=0), atol=1e-6)


def test_kernel_coded_aggregator_decodability_throttle(benchmark):
    """``check_every`` must actually skip the expensive decodability test.

    The identity code is the worst case for the master's stopping rule: the
    worst-case bound ``n - s`` is loose (coverage needs every worker), so an
    unthrottled aggregator re-runs the O(n^3) least-squares check on every
    single arrival past the threshold. This guards the throttle against
    regressing to that behaviour.
    """
    n = 40 if QUICK else 80
    code = LinearGradientCode(np.eye(n), name="identity")
    # Claim a loose worst-case straggler tolerance so the first plausible
    # completion point is far below the real one and many checks would fail.
    code.num_stragglers = n // 2

    def feed(check_every: int) -> CodedAggregator:
        aggregator = CodedAggregator(code=code, check_every=check_every)
        for worker in range(n):
            if aggregator.receive(worker, None):
                break
        return aggregator

    eager = feed(1)
    throttled = benchmark(lambda: feed(8))
    assert eager.is_complete() and throttled.is_complete()
    assert eager.workers_heard == throttled.workers_heard == n
    # The throttle runs at most ceil(window / check_every) + 1 checks where
    # the eager aggregator runs one per arrival in the window.
    assert eager.decodability_checks == n - n // 2 + 1
    assert throttled.decodability_checks <= eager.decodability_checks // 4


def test_kernel_simulated_iteration_scenario_two_scale(benchmark):
    scale = 50 if QUICK else 100
    cluster = ec2_like_cluster(scale)
    plan = BCCScheme(load=10).build_feasible_plan(scale, scale, rng=0)
    rng = np.random.default_rng(3)
    outcome = benchmark(
        lambda: simulate_iteration(
            plan, cluster, rng=rng, unit_size=100, serialize_master_link=False
        )
    )
    assert outcome.total_time > 0
