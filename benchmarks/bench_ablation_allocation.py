"""Ablation benchmark: heterogeneous load-allocation strategies.

Compares the P2-optimal loads with random placement (generalized BCC) against
the proportional "load-balanced" baseline and a plain uniform split on a
heterogeneous cluster. Expected shape: generalized BCC beats the LB baseline
(the paper's Fig. 5 claim); the uniform row quantifies the extra computation
the coverage target costs.
"""

from repro.cluster.spec import ClusterSpec
from repro.experiments.ablations import allocation_strategy_comparison
from repro.utils.tables import TextTable


def test_ablation_allocation_strategies(benchmark, report):
    cluster = ClusterSpec.paper_fig5_cluster(num_workers=50, num_fast=3)
    rows = benchmark.pedantic(
        lambda: allocation_strategy_comparison(
            num_examples=250, cluster=cluster, num_trials=150, rng=0
        ),
        rounds=1,
        iterations=1,
    )
    table = TextTable(
        ["strategy", "average completion time (s)", "total assigned examples"],
        title="Ablation — heterogeneous allocation strategies (m = 250, n = 50)",
    )
    for row in rows:
        table.add_row([row["strategy"], row["average_time"], int(row["total_load"])])
    report("Ablation — allocation strategies", table.render())

    times = {row["strategy"]: row["average_time"] for row in rows}
    assert times["p2-random"] < times["load-balanced"]
