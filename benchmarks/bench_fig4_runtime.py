"""Benchmark reproducing the paper's Fig. 4 (running-time comparison).

Total running time of 100 iterations of distributed Nesterov GD under the
uncoded, cyclic-repetition and BCC schemes, in both scenarios, on the
EC2-like simulated cluster.

Expected shape (paper): BCC fastest in both scenarios (85.4 % / 73.0 % faster
than uncoded, ~70 % faster than cyclic repetition), and the relative gain
over the uncoded scheme shrinks from scenario one to scenario two.
"""

from repro.experiments.fig4 import ScenarioConfig, run_scenario
from repro.utils.tables import TextTable


def _run_both_scenarios():
    one = run_scenario(ScenarioConfig.scenario_one(), rng=0)
    two = run_scenario(ScenarioConfig.scenario_two(), rng=1)
    return one, two


def test_fig4_running_time_comparison(benchmark, report):
    one, two = benchmark.pedantic(_run_both_scenarios, rounds=1, iterations=1)

    table = TextTable(
        ["scenario", "scheme", "total running time (s)", "speed-up vs uncoded"],
        title="Fig. 4 — total running times (100 iterations, simulated EC2-like cluster)",
    )
    for label, scenario in (("one", one), ("two", two)):
        for scheme in scenario.jobs:
            table.add_row(
                [
                    label,
                    scheme,
                    scenario.jobs[scheme].total_time,
                    f"{100 * scenario.speedup_over(scheme, 'uncoded'):.1f}%",
                ]
            )
    report(
        "Fig. 4 — running time comparison",
        table.render(),
        scenario_one_bcc_speedup_vs_uncoded=one.speedup_over("bcc", "uncoded"),
        scenario_one_bcc_speedup_vs_cyclic=one.speedup_over("bcc", "cyclic-repetition"),
        scenario_two_bcc_speedup_vs_uncoded=two.speedup_over("bcc", "uncoded"),
        scenario_two_bcc_speedup_vs_cyclic=two.speedup_over("bcc", "cyclic-repetition"),
    )

    for scenario in (one, two):
        jobs = scenario.jobs
        assert jobs["bcc"].total_time < jobs["cyclic-repetition"].total_time
        assert jobs["cyclic-repetition"].total_time < jobs["uncoded"].total_time
    # BCC's gain over uncoded shrinks with the larger cluster (paper text).
    assert one.speedup_over("bcc", "uncoded") >= two.speedup_over("bcc", "uncoded") - 0.05
