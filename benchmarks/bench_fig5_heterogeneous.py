"""Benchmark reproducing the paper's Fig. 5 (heterogeneous clusters).

Average computation time of the load-balanced (LB) baseline vs the
generalized BCC scheme on the paper's heterogeneous cluster: m = 500 examples,
n = 100 workers, all shifts a_i = 20, straggling mu_i = 1 for 95 workers and
mu_i = 20 for the remaining 5.

Expected shape (paper): generalized BCC reduces the average computation time
by roughly 29 % relative to LB.
"""

from repro.experiments.fig5 import run_fig5


def test_fig5_heterogeneous_cluster(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig5(num_examples=500, num_trials=200, rng=0),
        rounds=1,
        iterations=1,
    )
    report(
        "Fig. 5 — LB vs generalized BCC on the heterogeneous cluster",
        result.render(),
        paper_reduction_percent=29.28,
        measured_reduction_percent=100 * result.reduction,
    )

    assert result.bcc_average_time < result.lb_average_time
    # The paper reports 29.28 %; require the same ballpark.
    assert 0.15 <= result.reduction <= 0.50
