"""The compiled-kernel pin: another order of magnitude on the hot path.

``repro.simulation.kernels`` ships compiled backends (numba, and the
build-on-first-use C extension) for the vectorized engine's five hot
kernels. This file pins the claim on the paper's largest scale — ``n = 10^4``
workers:

1. ``test_compiled_link_recurrence_speedup`` — the serialized-master-link
   recurrence (the only float kernel, inherently serial per row, the worst
   case for NumPy's column-at-a-time evaluation) must run at least
   ``3x`` faster compiled than the NumPy reference (measured: well past the
   ``5x`` target), bit-identical output.
2. ``test_compiled_completion_kernels_identical`` — every completion kernel
   (count, partial-sum, coverage, group) returns arrays *equal* to the
   NumPy reference on randomized inputs, and the partial-sum selection is
   also timed against its reference.
3. ``test_compiled_job_bit_identical`` — an end-to-end simulated job with
   ``kernels=<compiled>`` produces the NumPy path's exact summary.

Both timed tests append kernel-level entries to
``benchmarks/BENCH_sweep.json`` (the shared perf trajectory). The file
skips itself cleanly when no compiled backend is available (no numba, no C
compiler) and when ``pytest-benchmark`` is missing. ``BENCH_COMPILED_QUICK=1``
shrinks row counts and relaxes the speedup floor for CI smokes; the
identity assertions are never relaxed, and the ``n = 10^4`` worker axis is
kept even in quick mode — it is the claim under test.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

pytest.importorskip(
    "pytest_benchmark", reason="benchmarks need the pytest-benchmark plugin"
)

from repro.analysis.validation import load_benchmark_history
from repro.api import JobSpec, TimingSimBackend
from repro.cluster.spec import ClusterSpec
from repro.simulation.kernels import available_kernel_backends, get_suite
from repro.stragglers.models import ExponentialDelay

HISTORY_PATH = Path(__file__).resolve().parent / "BENCH_sweep.json"

QUICK = os.environ.get("BENCH_COMPILED_QUICK", "") not in ("", "0")

#: The paper's largest cluster scale — the axis the speedup claim is made at.
NUM_WORKERS = 10_000

#: (trials x iterations) rows pushed through the kernels per call.
NUM_ROWS = 8 if QUICK else 32

#: Acceptance floor for compiled-vs-numpy on the link recurrence. The full
#: run measures ~10-30x on one core; 3x is the regression floor (5x the
#: stated target). Quick mode uses fewer rows, so constant call overheads
#: (ctypes marshalling, dispatch) weigh more — its floor is looser.
SPEEDUP_FLOOR = 2.0 if QUICK else 3.0

#: The preferred compiled backend here: numba when installed, else the C
#: extension (present wherever a C toolchain is), else skip the module.
COMPILED = next(
    (name for name in available_kernel_backends() if name != "numpy"), None
)

pytestmark = pytest.mark.skipif(
    COMPILED is None,
    reason="no compiled kernel backend available (numba not installed and "
    "no C compiler for the cext backend)",
)


def _append_history(entry: dict) -> None:
    """Append one run's measurements to the shared perf-trajectory artifact."""
    history = load_benchmark_history(HISTORY_PATH)
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()), **entry}
    history["runs"].append(entry)
    HISTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _best_of(callable_, repeats: int = 3) -> float:
    """The minimum wall-clock of ``repeats`` calls — noise-resistant."""
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def _random_positions(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Row-wise random arrival-rank permutations, as the engine produces."""
    base = np.tile(np.arange(cols, dtype=np.int64), (rows, 1))
    return rng.permuted(base, axis=1)


def test_compiled_link_recurrence_speedup(benchmark, report):
    numpy_suite = get_suite("numpy")
    compiled_suite = get_suite(COMPILED)

    rng = np.random.default_rng(0)
    compute = rng.exponential(1.0, size=(NUM_ROWS, NUM_WORKERS))
    compute.sort(axis=1)
    transfer = rng.exponential(0.1, size=(NUM_ROWS, NUM_WORKERS))

    reference = numpy_suite.link_recurrence(compute, transfer)
    # Warm the backend (numba JIT / cext library load) outside the timing.
    compiled = compiled_suite.link_recurrence(compute, transfer)
    assert reference.tobytes() == compiled.tobytes(), (
        f"{COMPILED} link_recurrence is not bit-identical to numpy"
    )

    numpy_seconds = _best_of(lambda: numpy_suite.link_recurrence(compute, transfer))
    benchmark.pedantic(
        lambda: compiled_suite.link_recurrence(compute, transfer),
        rounds=5,
        iterations=1,
    )
    compiled_seconds = benchmark.stats.stats.min
    speedup = numpy_seconds / compiled_seconds

    report(
        f"Link recurrence ({NUM_ROWS} rows x {NUM_WORKERS} workers) — "
        f"numpy {numpy_seconds * 1e3:.1f}ms vs {COMPILED} "
        f"{compiled_seconds * 1e3:.1f}ms ({speedup:.1f}x, floor {SPEEDUP_FLOOR}x)",
        "bit-identical output confirmed",
        backend=COMPILED,
        numpy_seconds=numpy_seconds,
        compiled_seconds=compiled_seconds,
        speedup=speedup,
    )
    _append_history(
        {
            "test": "compiled_link_recurrence_speedup",
            "level": "kernel",
            "quick": QUICK,
            "backend": COMPILED,
            "rows": NUM_ROWS,
            "workers": NUM_WORKERS,
            "numpy_seconds": numpy_seconds,
            "compiled_seconds": compiled_seconds,
            "speedup": speedup,
            "floor": SPEEDUP_FLOOR,
        }
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"{COMPILED} link recurrence at n={NUM_WORKERS} is only "
        f"{speedup:.2f}x the numpy reference (floor {SPEEDUP_FLOOR}x)"
    )


def test_compiled_completion_kernels_identical(benchmark, report):
    numpy_suite = get_suite("numpy")
    compiled_suite = get_suite(COMPILED)

    rng = np.random.default_rng(1)
    positions = _random_positions(rng, NUM_ROWS, NUM_WORKERS)
    required = rng.choice(NUM_WORKERS, size=NUM_WORKERS // 2, replace=False)
    eligible = rng.choice(NUM_WORKERS, size=NUM_WORKERS // 2, replace=False)
    needed = eligible.size // 2
    # A coverage structure: ~2 owners per item, grouped by item.
    num_items = NUM_WORKERS // 2
    owners_sorted = rng.integers(0, NUM_WORKERS, size=2 * num_items)
    segment_starts = np.arange(0, 2 * num_items, 2, dtype=np.int64)
    # A replication-group structure: disjoint groups of 4 columns.
    members = rng.permutation(NUM_WORKERS).astype(np.int64)
    group_starts = np.arange(0, NUM_WORKERS, 4, dtype=np.int64)

    pairs = [
        ("count_completion", lambda s: s.count_completion(positions, required)),
        (
            "partial_sum_completion",
            lambda s: s.partial_sum_completion(positions, eligible, needed),
        ),
        (
            "coverage_completion",
            lambda s: s.coverage_completion(positions, owners_sorted, segment_starts),
        ),
        (
            "group_completion",
            lambda s: s.group_completion(positions, members, group_starts),
        ),
    ]
    for name, call in pairs:
        expected = call(numpy_suite)
        actual = call(compiled_suite)
        assert np.array_equal(expected, actual), (
            f"{COMPILED} {name} diverged from the numpy reference"
        )

    numpy_seconds = _best_of(
        lambda: numpy_suite.partial_sum_completion(positions, eligible, needed)
    )
    benchmark.pedantic(
        lambda: compiled_suite.partial_sum_completion(positions, eligible, needed),
        rounds=5,
        iterations=1,
    )
    compiled_seconds = benchmark.stats.stats.min
    speedup = numpy_seconds / compiled_seconds

    report(
        f"Completion kernels ({NUM_ROWS} rows x {NUM_WORKERS} workers) — all "
        f"four equal to numpy; partial-sum selection {speedup:.1f}x "
        f"({numpy_seconds * 1e3:.1f}ms vs {compiled_seconds * 1e3:.1f}ms)",
        "count/partial-sum/coverage/group outputs identical",
        backend=COMPILED,
        numpy_seconds=numpy_seconds,
        compiled_seconds=compiled_seconds,
        speedup=speedup,
    )
    _append_history(
        {
            "test": "compiled_completion_kernels",
            "level": "kernel",
            "quick": QUICK,
            "backend": COMPILED,
            "rows": NUM_ROWS,
            "workers": NUM_WORKERS,
            "numpy_seconds": numpy_seconds,
            "compiled_seconds": compiled_seconds,
            "speedup": speedup,
        }
    )


def test_compiled_job_bit_identical(benchmark, report):
    """End to end: a simulated job on the compiled path == the numpy path."""
    workers = 500 if QUICK else 2000
    spec = JobSpec(
        scheme={"name": "bcc", "load": 10},
        cluster=ClusterSpec.homogeneous(workers, ExponentialDelay(straggling=1.0)),
        num_units=workers,
        num_iterations=10,
        serialize_master_link=True,
        seed=7,
    )
    reference = TimingSimBackend(engine="vectorized", kernels="numpy").run(spec)
    result = benchmark.pedantic(
        lambda: TimingSimBackend(engine="vectorized", kernels=COMPILED).run(spec),
        rounds=1,
        iterations=1,
    )
    assert dict(result.summary()) == dict(reference.summary()), (
        f"kernels={COMPILED!r} job summary diverged from kernels='numpy'"
    )
    report(
        f"Simulated job (m=n={workers}, 10 serialized-link iterations) — "
        f"kernels={COMPILED!r} summary identical to numpy",
        json.dumps(dict(reference.summary()), indent=2, default=str),
        backend=COMPILED,
        workers=workers,
    )
