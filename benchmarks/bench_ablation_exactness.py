"""Ablation benchmark: the cost of exactness under a wall-clock budget.

Compares exact BCC against the approximate ignore-stragglers baseline (and
the exact uncoded scheme) by the training loss reached within fixed simulated
time budgets. Expected shape: ignoring stragglers beats waiting for everyone,
and BCC — which is both exact and nearly as fast per iteration — reaches the
lowest loss at every budget, quantifying that exact recovery costs nothing
here (the paper's central selling point over approximate aggregation).
"""

from repro.experiments.ablations import exactness_under_time_budget
from repro.utils.tables import TextTable


def test_ablation_exactness_under_time_budget(benchmark, report):
    rows = benchmark.pedantic(
        lambda: exactness_under_time_budget(
            time_budgets=(0.5, 1.5, 4.0), max_iterations=120, rng=0
        ),
        rounds=1,
        iterations=1,
    )
    table = TextTable(
        ["time budget (s)", "uncoded loss", "ignore-stragglers loss", "BCC loss"],
        title="Ablation — training loss reached within a simulated time budget",
    )
    for row in rows:
        table.add_row(
            [
                row["time_budget"],
                row["uncoded_loss"],
                row["ignore_stragglers_loss"],
                row["bcc_loss"],
            ]
        )
    report("Ablation — exactness under a time budget", table.render())

    for row in rows:
        assert row["ignore_stragglers_loss"] <= row["uncoded_loss"] + 1e-9
        assert row["bcc_loss"] <= row["ignore_stragglers_loss"] + 1e-6
