"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the reproduced rows/series (visible with ``pytest benchmarks/ --benchmark-only
-s``; also attached to the pytest-benchmark JSON via ``extra_info``).
"""

from __future__ import annotations

import pytest


def attach_and_print(benchmark, title: str, rendered: str, **extra) -> None:
    """Attach a rendered table to the benchmark record and echo it to stdout."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{rendered}\n")
    benchmark.extra_info["title"] = title
    benchmark.extra_info["table"] = rendered
    for key, value in extra.items():
        benchmark.extra_info[key] = value


@pytest.fixture
def report(benchmark):
    """Convenience fixture: ``report(title, rendered, **extra)``."""

    def _report(title: str, rendered: str, **extra) -> None:
        attach_and_print(benchmark, title, rendered, **extra)

    return _report
