"""Ablation benchmark: in-worker compression (summing) vs per-example messages.

Compares BCC (one summed vector per worker) with the simple randomized scheme
(one vector per processed unit) while sweeping the per-unit communication
cost. Expected shape: the randomized scheme's disadvantage grows with the
communication cost because its communication load is ``r`` times larger
(paper Eq. 6 vs the BCC load of Theorem 1).
"""

from repro.experiments.ablations import communication_ratio_sweep
from repro.utils.tables import TextTable


def test_ablation_compression_vs_per_unit_messages(benchmark, report):
    rows = benchmark.pedantic(
        lambda: communication_ratio_sweep(
            comm_costs=(1e-3, 1e-2, 1e-1), num_iterations=25, rng=0
        ),
        rounds=1,
        iterations=1,
    )
    table = TextTable(
        [
            "comm cost (s/unit)",
            "BCC total (s)",
            "randomized total (s)",
            "BCC comm load",
            "randomized comm load",
        ],
        title="Ablation — summed messages (BCC) vs per-unit messages (randomized)",
    )
    for row in rows:
        table.add_row(
            [
                row["comm_seconds_per_unit"],
                row["bcc_total_time"],
                row["randomized_total_time"],
                row["bcc_communication_load"],
                row["randomized_communication_load"],
            ]
        )
    report("Ablation — communication compression", table.render())

    ratios = [row["randomized_total_time"] / row["bcc_total_time"] for row in rows]
    assert ratios[-1] > ratios[0]
    for row in rows:
        assert row["randomized_communication_load"] > row["bcc_communication_load"]
