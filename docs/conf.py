"""Sphinx configuration for the repro documentation site.

Build locally with::

    pip install -r docs/requirements.txt
    sphinx-build -W -b html docs docs/_build/html

CI builds with warnings-as-errors plus a link check, so a broken
cross-reference or docstring fails the pipeline rather than rotting.
"""

import os
import sys

# Make `import repro` work for autodoc without installing the package.
sys.path.insert(
    0, os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
)

project = "repro"
copyright = "2026, the repro contributors"
author = "the repro contributors"

extensions = [
    "sphinx.ext.autodoc",
    "sphinx.ext.napoleon",
    "sphinx.ext.viewcode",
]

# NumPy-style docstrings throughout the code base.
napoleon_google_docstring = False
napoleon_numpy_docstring = True
napoleon_use_rtype = False

autodoc_member_order = "bysource"
autodoc_typehints = "description"

templates_path = []
exclude_patterns = ["_build"]

html_theme = "alabaster"
html_static_path = []
html_theme_options = {
    "description": "Near-optimal straggler mitigation, reproduced",
    "fixed_sidebar": True,
}

# The link check runs in CI; anchors on large external pages are flaky, and
# publisher landing pages often rate-limit CI runners.
linkcheck_anchors = False
linkcheck_timeout = 15
linkcheck_ignore = [
    r"https://doi\.org/.*",
]
