"""The two-stage scheme auto-tuner behind ``repro tune``.

Stage 1 — **analytic pruning**. Every candidate ``(scheme config, m,
unit_size)`` in the :class:`TuneSpec` grid is priced with the closed-form
:meth:`~repro.schemes.base.Scheme.analytic_runtime` oracle (~250x cheaper
than simulating a cell). Candidates whose configuration is infeasible
(``load > m``, too few workers for the batch count, ...) are dropped with
the reason recorded; candidates outside the closed-form regime
(:class:`~repro.exceptions.AnalyticIntractableError`) are *kept* and passed
straight to stage 2 — the tuner never dies on an intractable cell. The
analytic scores are always evaluated on the spec's **stationary base
cluster**: when a dynamics scenario is attached, the closed forms act as a
proxy ranking and the simulation stage prices the dynamics.

Stage 2 — **simulated confirmation**. The top-k analytic frontier (plus
every intractable candidate, capped by the ``budget``) is confirmed by
trial-batched Monte-Carlo simulation through the existing scheduling core:
each survivor runs as one single-cell :class:`~repro.api.sweep.Sweep` at the
*same base seed*, so every candidate sees the **same** spawned trial seeds
(common random numbers — differences between candidates are scheme
differences, not draw luck) and repeat tunes through a
:class:`~repro.service.cache.ResultCache` are pure cache hits.

The :class:`TuneReport` ranks the survivors by simulated mean runtime and
carries, per candidate, a trial-count-aware confidence interval (Student-t
over the per-trial totals) and the analytic/simulated ratio as a sanity
column — a ratio far from 1 flags a candidate whose closed form and
simulation disagree (see :doc:`the tuning guide </tuning>`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.analytic import normal_quantile
from repro.api.backends import TimingSimBackend
from repro.api.spec import JobSpec
from repro.api.sweep import Sweep, run_sweep
from repro.cluster.spec import ClusterSpec
from repro.exceptions import (
    AnalyticIntractableError,
    ConfigurationError,
    ReproError,
)
from repro.schemes.registry import available_schemes, scheme_accepts, scheme_from_config
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive_int

__all__ = [
    "DEFAULT_TUNE_SCHEMES",
    "TuneCandidate",
    "TunedCandidate",
    "TuneReport",
    "TuneSpec",
    "trial_confidence_halfwidth",
    "tune",
    "tune_from_request",
]

#: Schemes searched when a :class:`TuneSpec` does not name a subset: every
#: registered scheme constructible on a homogeneous cluster without extra
#: placement inputs (the heterogeneous schemes need per-worker loads and
#: only make sense on clusters the operator describes explicitly).
DEFAULT_TUNE_SCHEMES: Tuple[str, ...] = (
    "bcc",
    "cyclic-repetition",
    "fractional-repetition",
    "ignore-stragglers",
    "randomized",
    "reed-solomon",
    "uncoded",
)


def student_t_quantile(q: float, dof: int) -> float:
    """Quantile of Student's t with ``dof`` degrees of freedom.

    Uses :func:`scipy.stats.t.ppf` when scipy is importable and falls back
    to the Cornish-Fisher expansion around the normal quantile otherwise
    (accurate to a few 1e-3 for ``dof >= 2`` — ample for a confidence
    interval whose width is itself a noisy estimate).
    """
    check_positive_int(dof, "dof")
    try:
        from scipy import stats

        return float(stats.t.ppf(q, dof))
    except ImportError:  # pragma: no cover - scipy is a declared dependency
        z = normal_quantile(q)
        g1 = (z**3 + z) / 4.0
        g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96.0
        return float(z + g1 / dof + g2 / dof**2)


def trial_confidence_halfwidth(
    values: Sequence[float], confidence: float = 0.95
) -> Optional[float]:
    """Half-width of the Student-t CI of the mean of ``values``.

    Trial-count aware: the half-width is ``t_{n-1} * s / sqrt(n)`` over the
    per-trial totals, so doubling the trials shrinks it by ~``sqrt(2)`` and
    the heavier t tails at small ``n`` keep two-trial intervals honest.
    ``None`` when fewer than two trials were run (no variance estimate).
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    n = len(values)
    if n < 2:
        return None
    std = float(np.std(np.asarray(values, dtype=float), ddof=1))
    return student_t_quantile(0.5 + confidence / 2.0, n - 1) * std / math.sqrt(n)


# --------------------------------------------------------------------------- #
# Candidates
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TuneCandidate:
    """One point of the search grid: a scheme config at one ``(m, unit_size)``.

    ``index`` is the candidate's position in the *full* enumerated grid —
    stable whether or not other candidates are pruned, so fixtures and
    cache keys can name a candidate independently of the pruning outcome.
    """

    index: int
    scheme: Mapping[str, object]
    num_units: int
    unit_size: int

    @property
    def label(self) -> str:
        """Compact display form, e.g. ``bcc(load=10)``."""
        options = ", ".join(
            f"{key}={value}"
            for key, value in self.scheme.items()
            if key != "name"
        )
        name = self.scheme.get("name", "?")
        return f"{name}({options})" if options else str(name)


@dataclass(frozen=True)
class TunedCandidate:
    """One ranked row of a :class:`TuneReport`.

    Attributes
    ----------
    candidate:
        The grid point this row describes.
    analytic_seconds:
        Stage-1 closed-form expected total runtime, or ``None`` when the
        candidate was analytically intractable (priced by simulation only).
    simulated_seconds:
        Trial-mean simulated total runtime (the ranking key).
    ci_halfwidth:
        Student-t confidence half-width of ``simulated_seconds`` over the
        trials, or ``None`` for single-trial confirmations.
    trials:
        Number of Monte-Carlo trials behind the mean.
    analytic_ratio:
        ``analytic_seconds / simulated_seconds`` — the sanity column; ``None``
        without an analytic score.
    """

    candidate: TuneCandidate
    analytic_seconds: Optional[float]
    simulated_seconds: float
    ci_halfwidth: Optional[float]
    trials: int
    analytic_ratio: Optional[float]


# --------------------------------------------------------------------------- #
# The spec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TuneSpec:
    """Everything the auto-tuner needs: target profile, grid, and budget.

    Attributes
    ----------
    cluster:
        The stationary target cluster (delay + communication profile) the
        recommendation is for. Analytic pruning always prices this cluster.
    schemes:
        Registered scheme names to search; ``None`` searches
        :data:`DEFAULT_TUNE_SCHEMES`.
    loads:
        Computational loads ``r`` tried for every scheme whose constructor
        takes one (schemes without a ``load`` contribute one candidate per
        ``(m, unit_size)``).
    num_units:
        The ``m`` grid — numbers of data units to try.
    unit_sizes:
        The examples-per-unit grid (scales every computation draw).
    num_iterations:
        Iteration budget each candidate is priced over.
    trials:
        Monte-Carlo trials per confirmed candidate (stage 2).
    top_k:
        Size of the analytic frontier confirmed by simulation.
    budget:
        Hard cap on simulated candidates (frontier + intractables);
        ``None`` caps nothing. The report records what was cut.
    dynamics:
        Optional CLI-style dynamics spec (``"markov:slowdown=8"``; see
        :func:`repro.experiments.churn.dynamics_from_spec`) applied to the
        cluster for the *simulation* stage. Analytic pruning then acts as a
        stationary proxy ranking.
    serialize_master_link:
        Whether master receptions serialise over one link.
    seed:
        Base seed. Every candidate's confirmation runs at this same base
        seed, so candidates share trial seeds (common random numbers).
    confidence:
        Confidence level of the reported intervals.
    engine:
        Timing-engine for the confirmation stage.
    """

    cluster: ClusterSpec
    schemes: Optional[Tuple[str, ...]] = None
    loads: Tuple[int, ...] = (5, 10, 25)
    num_units: Tuple[int, ...] = (50,)
    unit_sizes: Tuple[int, ...] = (100,)
    num_iterations: int = 20
    trials: int = 8
    top_k: int = 5
    budget: Optional[int] = None
    dynamics: Optional[str] = None
    serialize_master_link: bool = False
    seed: int = 0
    confidence: float = 0.95
    engine: str = "auto"

    def __post_init__(self) -> None:
        check_positive_int(self.num_iterations, "num_iterations")
        check_positive_int(self.trials, "trials")
        check_positive_int(self.top_k, "top_k")
        if self.budget is not None:
            check_positive_int(self.budget, "budget")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must lie in (0, 1), got {self.confidence}"
            )
        for axis, values in (
            ("loads", self.loads),
            ("num_units", self.num_units),
            ("unit_sizes", self.unit_sizes),
        ):
            if not values:
                raise ConfigurationError(f"the {axis} grid has no values")
            for value in values:
                check_positive_int(value, f"{axis} entry")
        known = available_schemes()
        for name in self.scheme_names:
            if name not in known:
                raise ConfigurationError(
                    f"unknown scheme {name!r}; available: {', '.join(known)}"
                )

    # ------------------------------------------------------------------ #
    @property
    def scheme_names(self) -> Tuple[str, ...]:
        """The searched scheme names (the default subset when unset)."""
        return tuple(self.schemes) if self.schemes else DEFAULT_TUNE_SCHEMES

    def candidates(self) -> List[TuneCandidate]:
        """The full enumerated grid, in deterministic order.

        Scheme-major (spec order), then loads, then ``m``, then
        ``unit_size`` — candidate indices are stable across prunings.
        """
        configs: List[Dict[str, object]] = []
        for name in self.scheme_names:
            if scheme_accepts(name, "load"):
                configs.extend(
                    {"name": name, "load": int(load)} for load in self.loads
                )
            else:
                configs.append({"name": name})
        grid = [
            (config, int(m), int(unit_size))
            for config in configs
            for m in self.num_units
            for unit_size in self.unit_sizes
        ]
        return [
            TuneCandidate(index=index, scheme=config, num_units=m, unit_size=u)
            for index, (config, m, u) in enumerate(grid)
        ]

    def simulation_cluster(self) -> object:
        """The cluster stage 2 simulates: dynamics applied when configured."""
        if self.dynamics is None:
            return self.cluster
        from repro.experiments.churn import dynamics_from_spec

        return dynamics_from_spec(
            self.dynamics, self.cluster, num_iterations=self.num_iterations
        )

    def quick(self) -> "TuneSpec":
        """A scaled-down copy for smoke runs (CLI ``--quick``, CI).

        Shrinks the trial count, iteration budget, grid breadth, and
        frontier — the pipeline is exercised end to end, the calibration is
        not representative.
        """
        return replace(
            self,
            trials=min(self.trials, 2),
            num_iterations=min(self.num_iterations, 5),
            num_units=self.num_units[:2],
            unit_sizes=self.unit_sizes[:1],
            top_k=min(self.top_k, 3),
        )


# --------------------------------------------------------------------------- #
# The report
# --------------------------------------------------------------------------- #
@dataclass
class TuneReport:
    """Ranked recommendation plus the pruning ledger of one tune run.

    Attributes
    ----------
    ranking:
        Confirmed candidates, best (smallest simulated mean runtime) first.
    pruning:
        Counters of the funnel: ``candidates`` enumerated, ``infeasible``
        dropped with reasons, ``analytic_scored`` priced in closed form,
        ``intractable`` passed to simulation unpriced, ``pruned`` cut by the
        top-k frontier, ``budget_dropped`` cut by the budget, ``simulated``
        confirmed, ``failed`` simulation failures.
    infeasible:
        Candidate label -> reason, for every dropped configuration.
    failures:
        Candidate label -> error, for survivors whose simulation failed.
    confidence:
        Confidence level of the ``ci_halfwidth`` columns.
    num_iterations, trials, seed:
        Echo of the spec fields the numbers depend on.
    """

    ranking: List[TunedCandidate] = field(default_factory=list)
    pruning: Dict[str, int] = field(default_factory=dict)
    infeasible: Dict[str, str] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    confidence: float = 0.95
    num_iterations: int = 0
    trials: int = 0
    seed: int = 0

    @property
    def best(self) -> TunedCandidate:
        """The recommendation: the top-ranked confirmed candidate."""
        if not self.ranking:
            raise ConfigurationError(
                "the tune run confirmed no candidate (every configuration "
                "was infeasible or failed); widen the grid"
            )
        return self.ranking[0]

    @property
    def pruning_factor(self) -> float:
        """Feasible candidates per simulated cell (the oracle's leverage)."""
        simulated = self.pruning.get("simulated", 0)
        feasible = self.pruning.get("analytic_scored", 0) + self.pruning.get(
            "intractable", 0
        )
        return feasible / simulated if simulated else float("inf")

    # ------------------------------------------------------------------ #
    def to_record(self) -> Dict[str, object]:
        """JSON-stable form of the report (fixtures, ``--json``, benchmarks)."""
        return {
            "ranking": [
                {
                    "index": row.candidate.index,
                    "scheme": dict(row.candidate.scheme),
                    "num_units": row.candidate.num_units,
                    "unit_size": row.candidate.unit_size,
                    "analytic_seconds": row.analytic_seconds,
                    "simulated_seconds": row.simulated_seconds,
                    "ci_halfwidth": row.ci_halfwidth,
                    "trials": row.trials,
                    "analytic_ratio": row.analytic_ratio,
                }
                for row in self.ranking
            ],
            "pruning": dict(self.pruning),
            "infeasible": dict(self.infeasible),
            "failures": dict(self.failures),
            "confidence": self.confidence,
            "num_iterations": self.num_iterations,
            "trials": self.trials,
            "seed": self.seed,
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """The record as a JSON document."""
        return json.dumps(self.to_record(), indent=indent)

    def to_table(self, *, title: str = "") -> TextTable:
        """Monospace ranking table, best candidate first."""
        level = f"{round(100 * self.confidence)}%"
        table = TextTable(
            [
                "rank",
                "scheme",
                "m",
                "unit_size",
                f"simulated mean [s] (+/- {level} CI)",
                "analytic [s]",
                "analytic/sim",
            ],
            title=title or self._default_title(),
        )
        for rank, row in enumerate(self.ranking, start=1):
            if row.ci_halfwidth is None:
                simulated = f"{row.simulated_seconds:.4f}"
            else:
                simulated = (
                    f"{row.simulated_seconds:.4f} +/- {row.ci_halfwidth:.4f}"
                )
            table.add_row(
                [
                    rank,
                    row.candidate.label,
                    row.candidate.num_units,
                    row.candidate.unit_size,
                    simulated,
                    "-" if row.analytic_seconds is None
                    else f"{row.analytic_seconds:.4f}",
                    "-" if row.analytic_ratio is None
                    else f"{row.analytic_ratio:.3f}",
                ]
            )
        return table

    def _default_title(self) -> str:
        p = self.pruning
        return (
            f"repro tune — {p.get('candidates', 0)} candidates, "
            f"{p.get('analytic_scored', 0)} analytically scored, "
            f"{p.get('simulated', 0)} simulated "
            f"({self.trials} trial(s) x {self.num_iterations} iterations)"
        )


# --------------------------------------------------------------------------- #
# The pipeline
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ScoredCandidate:
    """Stage-1 outcome for one surviving candidate."""

    candidate: TuneCandidate
    analytic_seconds: Optional[float]  # None == intractable


def _analytic_score(
    spec: TuneSpec, candidate: TuneCandidate
) -> Optional[float]:
    """Stage 1 for one candidate: expected total seconds, or ``None``.

    ``None`` means "no closed form — confirm by simulation"; infeasible
    configurations re-raise their :class:`ConfigurationError` (minus the
    intractable subclass) for the caller to ledger.
    """
    scheme = scheme_from_config(dict(candidate.scheme), cluster=spec.cluster)
    try:
        estimate = scheme.analytic_runtime(
            spec.cluster,
            candidate.num_units,
            unit_size=candidate.unit_size,
            serialize_master_link=spec.serialize_master_link,
            quantiles=(0.5,),
        )
    except AnalyticIntractableError:
        return None
    return float(estimate.total_runtime_mean(spec.num_iterations))


def _confirm_candidate(
    spec: TuneSpec,
    candidate: TuneCandidate,
    backend: TimingSimBackend,
    cache: Optional[object],
) -> Tuple[float, Optional[float], int]:
    """Stage 2 for one candidate: ``(mean, ci_halfwidth, trials)``.

    Each candidate runs as its own single-cell sweep at the spec's base
    seed, so every candidate sees the same spawned per-trial seeds (common
    random numbers) and a repeat tune is a pure cache hit per candidate.
    """
    job = JobSpec(
        scheme=dict(candidate.scheme),
        cluster=spec.simulation_cluster(),
        num_units=candidate.num_units,
        unit_size=candidate.unit_size,
        num_iterations=spec.num_iterations,
        serialize_master_link=spec.serialize_master_link,
        seed=spec.seed,
    )
    sweep = Sweep(job, trials=spec.trials, backend=backend)
    result = run_sweep(sweep, record="summary", cache=cache)
    totals = [record.result.total_time for record in result]
    mean = float(np.mean(totals))
    halfwidth = trial_confidence_halfwidth(totals, spec.confidence)
    return mean, halfwidth, len(totals)


def tune(spec: TuneSpec, *, cache: Optional[object] = None) -> TuneReport:
    """Run the two-stage auto-tuner and return the ranked recommendation.

    Parameters
    ----------
    spec:
        The search space, target profile, and budget.
    cache:
        Optional :class:`~repro.service.cache.ResultCache` (or directory
        path) the confirmation stage runs through — repeat tunes over a
        shared cache re-simulate nothing.

    Raises
    ------
    ConfigurationError
        When the grid is empty of feasible candidates (``TuneReport.best``
        raises; ``tune`` itself returns the report with the ledger, so the
        caller can see *why* everything fell out).
    """
    candidates = spec.candidates()
    report = TuneReport(
        confidence=spec.confidence,
        num_iterations=spec.num_iterations,
        trials=spec.trials,
        seed=spec.seed,
    )
    pruning = report.pruning
    pruning["candidates"] = len(candidates)

    # ---- Stage 1: closed-form scoring -------------------------------- #
    scored: List[_ScoredCandidate] = []
    intractable: List[_ScoredCandidate] = []
    for candidate in candidates:
        try:
            seconds = _analytic_score(spec, candidate)
        except ConfigurationError as error:
            report.infeasible[
                f"{candidate.label} m={candidate.num_units} "
                f"u={candidate.unit_size}"
            ] = str(error)
            continue
        entry = _ScoredCandidate(candidate, seconds)
        (intractable if seconds is None else scored).append(entry)
    pruning["infeasible"] = len(report.infeasible)
    pruning["analytic_scored"] = len(scored)
    pruning["intractable"] = len(intractable)

    # ---- Prune to the frontier --------------------------------------- #
    scored.sort(key=lambda entry: (entry.analytic_seconds, entry.candidate.index))
    frontier = scored[: spec.top_k]
    pruning["pruned"] = len(scored) - len(frontier)
    # Intractable candidates cannot be ranked without simulating, so they
    # ride along after the frontier; the budget is the only thing that can
    # cut them (frontier first — it is the part with evidence behind it).
    survivors = frontier + intractable
    if spec.budget is not None and len(survivors) > spec.budget:
        pruning["budget_dropped"] = len(survivors) - spec.budget
        survivors = survivors[: spec.budget]
    else:
        pruning["budget_dropped"] = 0

    # ---- Stage 2: simulated confirmation ----------------------------- #
    backend = TimingSimBackend(engine=spec.engine)
    rows: List[TunedCandidate] = []
    for entry in survivors:
        label = (
            f"{entry.candidate.label} m={entry.candidate.num_units} "
            f"u={entry.candidate.unit_size}"
        )
        try:
            mean, halfwidth, trials = _confirm_candidate(
                spec, entry.candidate, backend, cache
            )
        except ReproError as error:
            # A candidate the oracle could not screen (intractable, or a
            # dynamics scenario the closed form did not see) may still fail
            # under simulation — e.g. churn vacating every holder of a
            # unit. One bad candidate must not kill the recommendation.
            report.failures[label] = str(error)
            continue
        ratio = (
            None
            if entry.analytic_seconds is None or mean == 0.0
            else entry.analytic_seconds / mean
        )
        rows.append(
            TunedCandidate(
                candidate=entry.candidate,
                analytic_seconds=entry.analytic_seconds,
                simulated_seconds=mean,
                ci_halfwidth=halfwidth,
                trials=trials,
                analytic_ratio=ratio,
            )
        )
    pruning["simulated"] = len(rows)
    pruning["failed"] = len(report.failures)

    rows.sort(key=lambda row: (row.simulated_seconds, row.candidate.index))
    report.ranking = rows
    return report


# --------------------------------------------------------------------------- #
# Request grammar (service + CLI share it)
# --------------------------------------------------------------------------- #
#: Keys a ``recommend`` service request may carry.
RECOMMEND_KEYS = frozenset(
    {
        "request",
        "schemes",
        "loads",
        "units",
        "unit_sizes",
        "workers",
        "iterations",
        "trials",
        "top_k",
        "budget",
        "seed",
        "engine",
        "dynamics",
        "confidence",
        "quick",
    }
)


def tune_from_request(payload: Mapping[str, object]) -> TuneSpec:
    """Build a :class:`TuneSpec` from a service-request mapping.

    The grammar mirrors the ``repro tune`` CLI flags on an EC2-like cluster
    (``workers`` sizes it); unknown keys are a loud error, ``quick: true``
    applies :meth:`TuneSpec.quick`.
    """
    from repro.experiments.ec2 import ec2_like_cluster

    unknown = set(payload) - RECOMMEND_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown recommend key(s) {sorted(unknown)}; expected a subset "
            f"of {sorted(RECOMMEND_KEYS)}"
        )
    schemes = payload.get("schemes")
    dynamics = payload.get("dynamics")
    budget = payload.get("budget")
    spec = TuneSpec(
        cluster=ec2_like_cluster(int(payload.get("workers", 50))),  # type: ignore[arg-type]
        schemes=None if schemes is None else tuple(str(s) for s in schemes),  # type: ignore[union-attr]
        loads=tuple(int(load) for load in payload.get("loads", (5, 10, 25))),  # type: ignore[union-attr]
        num_units=tuple(int(m) for m in payload.get("units", (50,))),  # type: ignore[union-attr]
        unit_sizes=tuple(int(u) for u in payload.get("unit_sizes", (100,))),  # type: ignore[union-attr]
        num_iterations=int(payload.get("iterations", 20)),  # type: ignore[arg-type]
        trials=int(payload.get("trials", 8)),  # type: ignore[arg-type]
        top_k=int(payload.get("top_k", 5)),  # type: ignore[arg-type]
        budget=None if budget is None else int(budget),  # type: ignore[arg-type]
        dynamics=None if dynamics is None else str(dynamics),
        seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
        confidence=float(payload.get("confidence", 0.95)),  # type: ignore[arg-type]
        engine=str(payload.get("engine", "auto")),
    )
    if payload.get("quick"):
        spec = spec.quick()
    return spec
