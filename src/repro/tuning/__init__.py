"""Scheme auto-tuning: pick the best (scheme, m, unit_size) for a scenario.

The paper's central operational question — *which* coding scheme, at *which*
computational load and data granularity, minimises expected runtime on a
given cluster — is answered here by a two-stage pipeline
(:func:`~repro.tuning.tuner.tune`): stage 1 scores every feasible candidate
with the closed-form :meth:`~repro.schemes.base.Scheme.analytic_runtime`
oracle and prunes to a top-k frontier; stage 2 confirms the survivors with
trial-batched Monte-Carlo simulation through the shared scheduling core and
result cache, and reports a ranked :class:`~repro.tuning.tuner.TuneReport`
with confidence intervals and an analytic-vs-simulated sanity column.

Exposed as the ``repro tune`` CLI sub-command and as the ``recommend``
request of the sweep service (:doc:`the tuning guide </tuning>`).
"""

from repro.tuning.tuner import (
    DEFAULT_TUNE_SCHEMES,
    TuneCandidate,
    TuneReport,
    TuneSpec,
    TunedCandidate,
    trial_confidence_halfwidth,
    tune,
    tune_from_request,
)

__all__ = [
    "DEFAULT_TUNE_SCHEMES",
    "TuneCandidate",
    "TunedCandidate",
    "TuneReport",
    "TuneSpec",
    "trial_confidence_halfwidth",
    "tune",
    "tune_from_request",
]
