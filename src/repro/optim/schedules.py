"""Learning-rate schedules.

A schedule maps the iteration counter ``t`` (0-based) to the step size
``mu_t`` used in the GD update ``w_{t+1} = w_t - mu_t * gradient`` (paper
Eq. 1). Schedules are small immutable objects so experiment configurations
can be logged and compared.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_in_range, check_nonnegative, check_positive_int

__all__ = [
    "LearningRateSchedule",
    "ConstantSchedule",
    "InverseTimeDecay",
    "StepDecay",
    "PolynomialDecay",
]


class LearningRateSchedule(abc.ABC):
    """Maps an iteration index to a step size."""

    @abc.abstractmethod
    def learning_rate(self, iteration: int) -> float:
        """Return the step size ``mu_t`` for 0-based iteration ``t``."""

    def __call__(self, iteration: int) -> float:
        if iteration < 0:
            raise ConfigurationError(f"iteration must be non-negative, got {iteration}")
        rate = self.learning_rate(iteration)
        if rate < 0:
            raise ConfigurationError(f"schedule produced a negative learning rate: {rate}")
        return rate


@dataclass(frozen=True)
class ConstantSchedule(LearningRateSchedule):
    """A fixed step size ``mu_t = rate`` for every iteration."""

    rate: float

    def __post_init__(self) -> None:
        check_in_range(self.rate, "rate", low=0.0, inclusive=False)

    def learning_rate(self, iteration: int) -> float:
        return self.rate


@dataclass(frozen=True)
class InverseTimeDecay(LearningRateSchedule):
    """``mu_t = initial / (1 + decay * t)`` — the classical Robbins-Monro form."""

    initial: float
    decay: float = 0.01

    def __post_init__(self) -> None:
        check_in_range(self.initial, "initial", low=0.0, inclusive=False)
        check_nonnegative(self.decay, "decay")

    def learning_rate(self, iteration: int) -> float:
        return self.initial / (1.0 + self.decay * iteration)


@dataclass(frozen=True)
class StepDecay(LearningRateSchedule):
    """Multiply the rate by ``factor`` every ``period`` iterations."""

    initial: float
    factor: float = 0.5
    period: int = 20

    def __post_init__(self) -> None:
        check_in_range(self.initial, "initial", low=0.0, inclusive=False)
        check_in_range(self.factor, "factor", low=0.0, high=1.0, inclusive=True)
        check_positive_int(self.period, "period")

    def learning_rate(self, iteration: int) -> float:
        return self.initial * (self.factor ** (iteration // self.period))


@dataclass(frozen=True)
class PolynomialDecay(LearningRateSchedule):
    """``mu_t = initial / (1 + t) ** power`` with ``power`` typically 0.5 or 1."""

    initial: float
    power: float = 0.5

    def __post_init__(self) -> None:
        check_in_range(self.initial, "initial", low=0.0, inclusive=False)
        check_in_range(self.power, "power", low=0.0, inclusive=True)

    def learning_rate(self, iteration: int) -> float:
        return self.initial / float((1 + iteration) ** self.power)
