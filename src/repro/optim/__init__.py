"""First-order optimizers and the training-loop driver.

The optimizers are deliberately decoupled from how the gradient is obtained:
they consume a *gradient oracle* — any callable ``oracle(weights) -> gradient``
— which in this library is either the exact full gradient or the gradient
reconstructed at the master of a distributed scheme (simulated or real).
"""

from repro.optim.schedules import (
    LearningRateSchedule,
    ConstantSchedule,
    InverseTimeDecay,
    StepDecay,
    PolynomialDecay,
)
from repro.optim.base import Optimizer, OptimizerState
from repro.optim.gradient_descent import GradientDescent
from repro.optim.nesterov import NesterovAcceleratedGradient
from repro.optim.momentum import HeavyBallMomentum
from repro.optim.trainer import TrainingResult, IterationRecord, train

__all__ = [
    "LearningRateSchedule",
    "ConstantSchedule",
    "InverseTimeDecay",
    "StepDecay",
    "PolynomialDecay",
    "Optimizer",
    "OptimizerState",
    "GradientDescent",
    "NesterovAcceleratedGradient",
    "HeavyBallMomentum",
    "TrainingResult",
    "IterationRecord",
    "train",
]
