"""Heavy-ball (Polyak) momentum."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optim.base import Optimizer, OptimizerState
from repro.optim.schedules import LearningRateSchedule
from repro.utils.validation import check_in_range

__all__ = ["HeavyBallMomentum"]


class HeavyBallMomentum(Optimizer):
    """Polyak momentum: ``v_{t+1} = beta v_t - mu_t grad; w_{t+1} = w_t + v_{t+1}``.

    Unlike Nesterov, the gradient is evaluated at the current iterate, so
    :meth:`query_point` returns ``w_t``.
    """

    def __init__(
        self, schedule: LearningRateSchedule | float, momentum: float = 0.9
    ) -> None:
        super().__init__(schedule)
        momentum = check_in_range(momentum, "momentum", low=0.0, high=1.0)
        if momentum >= 1.0:
            raise ConfigurationError("momentum must be strictly less than 1")
        self.momentum = momentum

    def query_point(self, state: OptimizerState) -> np.ndarray:
        return state.weights

    def step(self, state: OptimizerState, gradient: np.ndarray) -> OptimizerState:
        rate = self.schedule(state.iteration)
        velocity = (
            np.zeros_like(state.weights) if state.auxiliary is None else state.auxiliary
        )
        new_velocity = self.momentum * velocity - rate * gradient
        new_weights = state.weights + new_velocity
        return OptimizerState(
            weights=new_weights,
            iteration=state.iteration + 1,
            auxiliary=new_velocity,
        )

    def __repr__(self) -> str:
        return (
            f"HeavyBallMomentum(schedule={self.schedule!r}, momentum={self.momentum!r})"
        )
