"""Vanilla gradient descent (paper Eq. 1)."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer, OptimizerState

__all__ = ["GradientDescent"]


class GradientDescent(Optimizer):
    """Plain GD: ``w_{t+1} = w_t - mu_t * gradient(w_t)``."""

    def query_point(self, state: OptimizerState) -> np.ndarray:
        return state.weights

    def step(self, state: OptimizerState, gradient: np.ndarray) -> OptimizerState:
        rate = self.schedule(state.iteration)
        new_weights = state.weights - rate * gradient
        return OptimizerState(
            weights=new_weights, iteration=state.iteration + 1, auxiliary=None
        )
