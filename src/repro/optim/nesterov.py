"""Nesterov's accelerated gradient method.

This is the optimizer the paper's EC2 experiments run for 100 iterations.
We use the standard convex formulation

.. math::

    w_{t+1} &= y_t - \\mu_t \\nabla L(y_t) \\\\
    y_{t+1} &= w_{t+1} + \\beta_t (w_{t+1} - w_t),

with momentum coefficients ``beta_t = t / (t + 3)`` (the common parameter-free
choice) unless a fixed ``momentum`` is supplied. The gradient is evaluated at
the look-ahead sequence ``y_t``, which is what :meth:`query_point` exposes to
the distributed trainer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optim.base import Optimizer, OptimizerState
from repro.optim.schedules import LearningRateSchedule
from repro.utils.validation import check_in_range

__all__ = ["NesterovAcceleratedGradient"]


class NesterovAcceleratedGradient(Optimizer):
    """Nesterov accelerated gradient descent.

    Parameters
    ----------
    schedule:
        Learning-rate schedule (or a constant float).
    momentum:
        If given, a fixed momentum coefficient ``beta in [0, 1)``; otherwise
        the iteration-dependent ``t / (t + 3)`` sequence is used.
    """

    def __init__(
        self,
        schedule: LearningRateSchedule | float,
        momentum: Optional[float] = None,
    ) -> None:
        super().__init__(schedule)
        if momentum is not None:
            momentum = check_in_range(momentum, "momentum", low=0.0, high=1.0)
            if momentum >= 1.0:
                raise ConfigurationError("momentum must be strictly less than 1")
        self.momentum = momentum

    def _beta(self, iteration: int) -> float:
        if self.momentum is not None:
            return self.momentum
        return iteration / (iteration + 3.0)

    def query_point(self, state: OptimizerState) -> np.ndarray:
        # auxiliary holds y_t; before the first step y_0 = w_0.
        if state.auxiliary is None:
            return state.weights
        return state.auxiliary

    def step(self, state: OptimizerState, gradient: np.ndarray) -> OptimizerState:
        rate = self.schedule(state.iteration)
        lookahead = self.query_point(state)
        new_weights = lookahead - rate * gradient
        beta = self._beta(state.iteration)
        new_lookahead = new_weights + beta * (new_weights - state.weights)
        return OptimizerState(
            weights=new_weights,
            iteration=state.iteration + 1,
            auxiliary=new_lookahead,
        )

    def __repr__(self) -> str:
        return (
            f"NesterovAcceleratedGradient(schedule={self.schedule!r}, "
            f"momentum={self.momentum!r})"
        )
