"""Optimizer interface.

Every optimizer transforms the current iterate given the gradient evaluated
at a *query point* it chooses. Nesterov's accelerated method queries the
gradient at a look-ahead point, so the interface separates
:meth:`Optimizer.query_point` (where the distributed job must evaluate the
gradient) from :meth:`Optimizer.step` (how the iterate is updated). This is
exactly the structure the distributed trainer needs: the master broadcasts
the query point, workers compute partial gradients there, and the master
applies the update.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optim.schedules import ConstantSchedule, LearningRateSchedule

__all__ = ["Optimizer", "OptimizerState"]


@dataclass
class OptimizerState:
    """Mutable state carried across iterations.

    Attributes
    ----------
    weights:
        Current iterate ``w_t``.
    iteration:
        Zero-based iteration counter.
    auxiliary:
        Optimizer-specific extra state (e.g. Nesterov's ``y_t`` sequence or a
        momentum buffer); ``None`` until the optimizer initialises it.
    """

    weights: np.ndarray
    iteration: int = 0
    auxiliary: Optional[np.ndarray] = field(default=None, repr=False)

    def copy(self) -> "OptimizerState":
        """Deep-copy the state (weights and auxiliary buffers)."""
        return OptimizerState(
            weights=self.weights.copy(),
            iteration=self.iteration,
            auxiliary=None if self.auxiliary is None else self.auxiliary.copy(),
        )


class Optimizer(abc.ABC):
    """Base class for deterministic first-order update rules."""

    def __init__(self, schedule: LearningRateSchedule | float) -> None:
        if isinstance(schedule, (int, float)):
            schedule = ConstantSchedule(float(schedule))
        if not isinstance(schedule, LearningRateSchedule):
            # reprolint: allow[EXC001] reason=wrong type is a programming error; TypeError propagates unchanged by the hierarchy contract
            raise TypeError(
                "schedule must be a LearningRateSchedule or a positive float, "
                f"got {type(schedule).__name__}"
            )
        self.schedule = schedule

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def query_point(self, state: OptimizerState) -> np.ndarray:
        """Return the point at which the gradient should be evaluated."""

    @abc.abstractmethod
    def step(self, state: OptimizerState, gradient: np.ndarray) -> OptimizerState:
        """Return the next state given the gradient at :meth:`query_point`."""

    # ------------------------------------------------------------------ #
    def initialize(self, initial_weights: np.ndarray) -> OptimizerState:
        """Create the initial state from a starting weight vector."""
        weights = np.asarray(initial_weights, dtype=float).copy()
        if weights.ndim != 1:
            raise ConfigurationError(
                f"initial weights must be a 1-D vector, got shape {weights.shape}"
            )
        return OptimizerState(weights=weights, iteration=0, auxiliary=None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(schedule={self.schedule!r})"
