"""Centralised training loop driven by a gradient oracle.

The distributed schemes plug in here by supplying an oracle whose output is
the gradient *reconstructed at the master* (exact for every scheme in this
paper — BCC, uncoded, coded — because all of them recover the exact full
gradient; only the time it takes differs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.datasets.base import Dataset
from repro.gradients.base import GradientModel
from repro.optim.base import Optimizer
from repro.utils.validation import check_positive_int

__all__ = ["IterationRecord", "TrainingResult", "train"]

GradientOracle = Callable[[np.ndarray, int], np.ndarray]
"""Signature of a gradient oracle: ``oracle(query_point, iteration) -> gradient``."""


@dataclass(frozen=True)
class IterationRecord:
    """Per-iteration trace entry."""

    iteration: int
    loss: float
    gradient_norm: float
    learning_rate: float


@dataclass
class TrainingResult:
    """Outcome of a training run.

    Attributes
    ----------
    weights:
        Final iterate.
    history:
        Per-iteration records (loss evaluated at the *start* of the iteration).
    converged:
        True if the gradient-norm tolerance was reached before the iteration
        budget was exhausted.
    """

    weights: np.ndarray
    history: List[IterationRecord] = field(default_factory=list)
    converged: bool = False

    @property
    def num_iterations(self) -> int:
        """Number of iterations actually performed."""
        return len(self.history)

    @property
    def losses(self) -> np.ndarray:
        """Loss trajectory as an array."""
        return np.array([record.loss for record in self.history], dtype=float)

    @property
    def final_loss(self) -> float:
        """Loss at the beginning of the last performed iteration."""
        if not self.history:
            raise ConfigurationError("no iterations were performed")
        return self.history[-1].loss


def train(
    model: GradientModel,
    dataset: Dataset,
    optimizer: Optimizer,
    num_iterations: int,
    *,
    gradient_oracle: Optional[GradientOracle] = None,
    initial_weights: Optional[np.ndarray] = None,
    gradient_tolerance: float = 0.0,
) -> TrainingResult:
    """Run ``num_iterations`` of the optimizer, tracking loss and gradient norm.

    Parameters
    ----------
    model, dataset:
        Define the empirical risk; also used to log the loss each iteration.
    optimizer:
        Update rule (GD, Nesterov, heavy ball).
    num_iterations:
        Iteration budget.
    gradient_oracle:
        Optional replacement for the exact full gradient; receives the query
        point and the iteration index. Distributed executions pass the
        master-side decoded gradient here.
    initial_weights:
        Starting point; defaults to ``model.initial_weights(p)``.
    gradient_tolerance:
        If positive, stop early once the oracle gradient norm drops below it.

    Returns
    -------
    TrainingResult
    """
    check_positive_int(num_iterations, "num_iterations")
    if initial_weights is None:
        initial_weights = model.initial_weights(dataset.num_features)
    state = optimizer.initialize(initial_weights)

    if gradient_oracle is None:
        def gradient_oracle(query: np.ndarray, _iteration: int) -> np.ndarray:
            return model.gradient(query, dataset.features, dataset.labels)

    history: List[IterationRecord] = []
    converged = False
    for iteration in range(num_iterations):
        query = optimizer.query_point(state)
        gradient = np.asarray(gradient_oracle(query, iteration), dtype=float)
        if gradient.shape != state.weights.shape:
            raise ConfigurationError(
                "gradient oracle returned a vector of shape "
                f"{gradient.shape}, expected {state.weights.shape}"
            )
        loss = model.loss(state.weights, dataset.features, dataset.labels)
        gradient_norm = float(np.linalg.norm(gradient))
        history.append(
            IterationRecord(
                iteration=iteration,
                loss=loss,
                gradient_norm=gradient_norm,
                learning_rate=optimizer.schedule(iteration),
            )
        )
        if gradient_tolerance > 0 and gradient_norm < gradient_tolerance:
            converged = True
            break
        state = optimizer.step(state, gradient)

    return TrainingResult(weights=state.weights, history=history, converged=converged)
