"""The content-addressed result cache behind ``run_sweep(cache=...)``.

Keys are canonical content fingerprints (:mod:`repro.api.fingerprint`) of
everything that determines a task's results: the derived cell spec (seed
included), the executing backend's identity (class, engine,
configuration), the record mode, and — for trial-batched cells — the
spawned seed set. Nothing identity-derived (``id``/``hash``/``repr``)
ever enters a key; the CACHE002 lint rule enforces that repo-wide.

Two tiers:

* **Memory** holds every stored result verbatim, so within a process a
  cache hit returns the *identical* record objects the first run produced.
* **Disk** (optional, a directory) persists results across processes —
  but only summary-form results whose payload survives a JSON round-trip
  unchanged. Full per-iteration logs and non-JSON-stable extras (e.g.
  float-keyed dicts, which JSON would silently stringify) stay
  memory-only rather than come back subtly different. Corrupted or
  unreadable disk entries count as misses and are recomputed, never
  trusted.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.api.fingerprint import backend_identity, canonical_value
from repro.api.result import RunResult
from repro.exceptions import FingerprintError
from repro.scheduling.core import CellTask

__all__ = ["CacheStats", "ResultCache"]

#: Process-wide counter feeding writer-unique temp names (see
#: :meth:`ResultCache._tmp_path`): distinct writers — threads in one
#: process via the counter, separate processes via the pid — never share a
#: temp file, so a half-written entry can never be renamed over a key by a
#: concurrent store.
_TMP_COUNTER = itertools.count()


@dataclass
class CacheStats:
    """Running counters of one cache's traffic.

    Attributes
    ----------
    hits, misses:
        Lookup outcomes (a corrupted disk entry counts as a miss).
    stores:
        Successful stores (memory tier; the disk tier may decline).
    uncacheable:
        Tasks with no canonical fingerprint (live-generator seeds, custom
        runner backends) — computed normally, never keyed.
    disk_errors:
        Disk entries that failed to load: missing fields, invalid JSON,
        unreadable files. Each one was recomputed.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    uncacheable: int = 0
    disk_errors: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits as a fraction of lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


#: Fields of a disk-persisted result, in the order they are (de)serialised.
_RESULT_FIELDS = (
    "scheme_name",
    "backend",
    "iteration_times",
    "workers_heard",
    "total_seconds",
    "extras",
    "summary_data",
)


class ResultCache:
    """Memory + optional disk cache of task results, content-addressed.

    Parameters
    ----------
    directory:
        ``None`` keeps the cache in memory only. A path enables the disk
        tier: compact summary-form results persist there as one JSON file
        per key and survive across processes.
    """

    def __init__(self, directory: Optional[Union[str, os.PathLike]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, List[RunResult]] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #
    def task_key(self, task: CellTask) -> Optional[str]:
        """The task's content fingerprint, or ``None`` if uncacheable.

        The key digests everything that determines the task's results:
        the derived cell spec (its seed included), the backend identity,
        the record mode, the task kind, and the spawned seed set of a
        trial-batched cell. ``None`` means some part has no canonical
        form — the scheduler then computes the task without caching it.
        """
        try:
            payload = {
                "spec": canonical_value(task.spec),
                "backend": backend_identity(task.backend),
                "kind": task.kind,
                "record": task.record,
                "seeds": (
                    None
                    if task.seeds is None
                    else canonical_value(list(task.seeds))
                ),
            }
        except FingerprintError:
            self.stats.uncacheable += 1
            return None
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[List[RunResult]]:
        """The cached results under ``key``, or ``None`` on a miss.

        Memory first; then the disk tier, whose entries are decoded
        defensively — anything malformed counts as a miss (and a
        ``disk_errors`` tick) so a corrupted file can only cost a
        recompute, never serve a wrong record.
        """
        cached = self._memory.get(key)
        if cached is not None:
            self.stats.hits += 1
            return list(cached)
        if self.directory is not None:
            loaded = self._load_disk(key)
            if loaded is not None:
                self._memory[key] = list(loaded)
                self.stats.hits += 1
                return loaded
        self.stats.misses += 1
        return None

    def store(self, key: str, results: List[RunResult]) -> None:
        """Store a task's results under ``key`` (memory always, disk if clean).

        The disk tier only accepts summary-form results whose payload
        survives a JSON round-trip unchanged; everything else stays
        memory-only so a future hit cannot differ from the original.
        """
        self._memory[key] = list(results)
        self.stats.stores += 1
        if self.directory is None:
            return
        encoded = [self._encode_result(result) for result in results]
        if any(entry is None for entry in encoded):
            return
        tmp_path = self._tmp_path(key)
        tmp_path.write_text(json.dumps({"results": encoded}), encoding="utf-8")
        tmp_path.replace(self._path(key))

    def __len__(self) -> int:
        return len(self._memory)

    def clear(self) -> None:
        """Drop the memory tier (disk entries, if any, remain)."""
        self._memory.clear()

    # ------------------------------------------------------------------ #
    # Disk tier
    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _tmp_path(self, key: str) -> Path:
        """A writer-unique temp path for ``key``'s pending disk entry.

        Two caches sharing a directory (separate processes, or threads in
        one service) may store the same key concurrently; a fixed
        ``{key}.tmp`` name would let one writer atomically ``replace`` the
        *other* writer's half-written file into place. The pid + a
        process-wide counter make the temp name unique per write, so each
        ``replace`` publishes only the file its own writer finished.
        """
        assert self.directory is not None
        return self.directory / (
            f"{key}.{os.getpid()}-{next(_TMP_COUNTER)}.tmp"
        )

    @staticmethod
    def _encode_result(result: RunResult) -> Optional[dict]:
        """JSON payload of a result, or ``None`` if it cannot round-trip.

        Only summary-form results qualify: per-iteration logs and training
        traces carry objects JSON cannot represent. The round-trip equality
        check additionally rejects payloads JSON would silently distort
        (float dict keys become strings, tuples become lists), so a disk
        hit always reconstructs a record equal to the original.
        """
        if result.iterations or result.training is not None:
            return None
        payload = {name: getattr(result, name) for name in _RESULT_FIELDS}
        try:
            roundtrip = json.loads(json.dumps(payload))
        except (TypeError, ValueError):
            return None
        if roundtrip != payload:
            return None
        return payload

    def _load_disk(self, key: str) -> Optional[List[RunResult]]:
        """Decode a disk entry defensively; any defect is a counted miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            entries = payload["results"]
            results = []
            for entry in entries:
                results.append(
                    RunResult(**{name: entry[name] for name in _RESULT_FIELDS})
                )
            return results
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.disk_errors += 1
            return None
