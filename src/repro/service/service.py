"""The asyncio sweep service: submissions in, streamed records out.

:class:`SweepService` drives the same scheduling core as ``run_sweep`` —
:func:`~repro.scheduling.core.build_sweep_plan` shapes the work,
:func:`~repro.scheduling.core.execute_task` runs it — on an
:class:`~repro.scheduling.executors.AsyncExecutor`, and adds the
service-grade behaviours:

* **Cache integration.** Every task is keyed through the service's
  :class:`~repro.service.cache.ResultCache`; hits never execute.
* **In-flight deduplication.** Two concurrent submissions containing the
  same cell share one execution: the second awaits the first's future
  instead of recomputing.
* **Streaming.** :meth:`SweepService.stream` yields each task's
  :class:`~repro.api.sweep.SweepRecord` batch as it completes, so callers
  see partial results while the sweep runs; :meth:`SweepService.run`
  collects them into an ordered :class:`~repro.api.sweep.SweepResult`.
* **Budgets.** A per-request cell budget rejects oversized grids with
  :class:`~repro.exceptions.BudgetExceededError` *before* any cell
  executes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, AsyncIterator, Dict, List, Optional, Union

from repro.api.backends import get_backend
from repro.api.result import RunResult, validate_record
from repro.api.sweep import TRIAL_BATCHING_MODES, Sweep, SweepRecord, SweepResult
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.scheduling.core import CellTask, build_sweep_plan
from repro.scheduling.executors import AsyncExecutor
from repro.service.cache import ResultCache

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.tuning import TuneReport, TuneSpec

__all__ = ["ServiceStats", "SweepService"]


@dataclass
class ServiceStats:
    """Running counters of one service's traffic.

    ``cache`` statistics live on the service's
    :class:`~repro.service.cache.CacheStats`; these counters cover what
    only the service layer can see.
    """

    submissions: int = 0
    tasks_executed: int = 0
    tasks_deduplicated: int = 0
    budget_rejections: int = 0


class SweepService:
    """An asyncio front end over the scheduling core and result cache.

    Parameters
    ----------
    cache:
        A :class:`~repro.service.cache.ResultCache`, a directory path for
        one with a disk tier, or ``None`` for a fresh in-memory cache.
    max_workers:
        Concurrent task slots (the :class:`AsyncExecutor` bound);
        ``None`` lets every task run as soon as it is scheduled.
    cell_budget:
        Maximum cells per submission; ``None`` accepts any size.
    """

    def __init__(
        self,
        *,
        cache: Optional[Union[str, ResultCache]] = None,
        max_workers: Optional[int] = None,
        cell_budget: Optional[int] = None,
    ) -> None:
        if cache is None:
            self.cache = ResultCache()
        elif isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.executor = AsyncExecutor(max_workers)
        self.cell_budget = cell_budget
        self.stats = ServiceStats()
        self._inflight: Dict[str, "asyncio.Task[List[RunResult]]"] = {}

    # ------------------------------------------------------------------ #
    async def stream(
        self,
        sweep: Sweep,
        *,
        record: str = "summary",
        trial_batching: str = "auto",
    ) -> AsyncIterator[List[SweepRecord]]:
        """Yield each task's record batch as it completes.

        Batches arrive in *completion* order (a cache hit completes
        immediately); each batch holds the records of one scheduled task —
        one ``(cell, trial)`` record, or a whole trial-batched cell. Use
        :meth:`run` for the ordered, aggregated result.

        Raises
        ------
        BudgetExceededError
            Before any cell executes, when the sweep's cell count exceeds
            the configured ``cell_budget``.
        """
        validate_record(record)
        if trial_batching not in TRIAL_BATCHING_MODES:
            raise ConfigurationError(
                f"unknown trial_batching mode {trial_batching!r}; expected "
                f"one of {list(TRIAL_BATCHING_MODES)}"
            )
        num_cells = len(sweep.cells())
        if self.cell_budget is not None and num_cells > self.cell_budget:
            self.stats.budget_rejections += 1
            raise BudgetExceededError(
                f"the submission spans {num_cells} cells but the service "
                f"accepts at most {self.cell_budget} per request; split the "
                "grid or raise the budget"
            )
        self.stats.submissions += 1
        plan = build_sweep_plan(
            sweep,
            backend=get_backend(sweep.backend),
            record=record,
            trial_batching=trial_batching,
        )

        if plan.sequential:
            # The shared seed strategy threads one generator through the
            # tasks; execute in order, without concurrency or caching
            # (generator seeds have no canonical fingerprint anyway).
            for task in plan.tasks:
                results = await self.executor.run_task(task)
                self.stats.tasks_executed += 1
                yield self._records(task, results)
            return

        async def labelled(task: CellTask) -> "tuple[CellTask, List[RunResult]]":
            return task, await self._cached_task(task)

        pending = [asyncio.ensure_future(labelled(task)) for task in plan.tasks]
        try:
            for future in asyncio.as_completed(pending):
                task, results = await future
                yield self._records(task, results)
        finally:
            for future in pending:
                if not future.done():
                    future.cancel()

    async def run(
        self,
        sweep: Sweep,
        *,
        record: str = "summary",
        trial_batching: str = "auto",
    ) -> SweepResult:
        """Execute a submission to completion and return the ordered result.

        Functionally equivalent to ``run_sweep(sweep, cache=...)`` — the
        records are sorted back into deterministic (cell, trial) order —
        but with the service's deduplication, budget, and concurrency
        behaviours applied.
        """
        records: List[SweepRecord] = []
        async for batch in self.stream(
            sweep, record=record, trial_batching=trial_batching
        ):
            records.extend(batch)
        records.sort(key=lambda rec: (rec.cell, rec.trial))
        return SweepResult(
            records=records,
            parameter_names=tuple(sweep.parameters),
            trials=sweep.trials,
        )

    def submit(
        self,
        sweep: Sweep,
        *,
        record: str = "summary",
        trial_batching: str = "auto",
    ) -> SweepResult:
        """Synchronous convenience wrapper: :meth:`run` on a fresh loop."""
        return asyncio.run(
            self.run(sweep, record=record, trial_batching=trial_batching)
        )

    async def recommend(self, spec: "TuneSpec") -> "TuneReport":
        """Run the scheme auto-tuner through the service's cache.

        The two-stage :func:`repro.tuning.tune` pipeline executes on a
        worker thread (its confirmation stage is synchronous, CPU-bound
        simulation) with the service's :class:`ResultCache` attached, so
        repeat recommendations — and sweeps over cells a tune already
        confirmed — are cache hits. The service ``cell_budget`` caps the
        number of *simulated candidates* per recommendation the same way it
        caps cells per sweep submission: an uncapped tune spec inherits the
        budget, a spec asking for more than the budget is rejected before
        any candidate simulates.
        """
        from dataclasses import replace as _replace

        from repro.tuning import tune

        if self.cell_budget is not None:
            if spec.budget is None:
                spec = _replace(spec, budget=self.cell_budget)
            elif spec.budget > self.cell_budget:
                self.stats.budget_rejections += 1
                raise BudgetExceededError(
                    f"the tune request budgets {spec.budget} simulated "
                    f"candidates but the service accepts at most "
                    f"{self.cell_budget}; shrink the request budget"
                )
        self.stats.submissions += 1
        return await asyncio.to_thread(tune, spec, cache=self.cache)

    async def execute_cell(self, task: CellTask) -> List[RunResult]:
        """Execute one externally built cell task through the service cache.

        The node-side entry point of the distributed executor's ``cells``
        leases (see :mod:`repro.service.server`): the task flows through
        the same content-addressed cache and in-flight deduplication as
        sweep submissions. That is what makes the coordinator's
        retry-with-reassignment **at-most-once per result** — a task
        re-sent to this node after an ambiguous failure either finds the
        already-computed result or recomputes the same deterministic value.
        """
        return await self._cached_task(task)

    # ------------------------------------------------------------------ #
    async def _cached_task(self, task: CellTask) -> List[RunResult]:
        """One task through the cache, with in-flight deduplication."""
        key = self.cache.task_key(task)
        if key is None:
            self.stats.tasks_executed += 1
            return await self.executor.run_task(task)
        hit = self.cache.lookup(key)
        if hit is not None:
            return hit
        running = self._inflight.get(key)
        if running is not None:
            self.stats.tasks_deduplicated += 1
            return await asyncio.shield(running)
        running = asyncio.ensure_future(self._execute_and_store(task, key))
        self._inflight[key] = running
        # Clear the key when the *execution* finishes, not when this caller
        # stops awaiting it: the await below is shielded, so a cancelled
        # caller (stream teardown) leaves the task running — popping the key
        # here would let an identical submission start a duplicate execution
        # instead of deduplicating against the still-running one.
        running.add_done_callback(
            lambda done, key=key: self._inflight.pop(key, None)
        )
        return await asyncio.shield(running)

    async def _execute_and_store(self, task: CellTask, key: str) -> List[RunResult]:
        results = await self.executor.run_task(task)
        self.stats.tasks_executed += 1
        self.cache.store(key, results)
        return results

    @staticmethod
    def _records(task: CellTask, results: List[RunResult]) -> List[SweepRecord]:
        """Pair one task's results with its (cell, params, trial) layout."""
        return [
            SweepRecord(cell=cell, params=params, trial=trial, result=result)
            for (cell, params, trial), result in zip(task.entries, results)
        ]
