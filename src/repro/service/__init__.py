"""Content-addressed result caching and the async sweep service.

This package mounts the shared scheduling core (:mod:`repro.scheduling`)
behind two service-grade conveniences:

* :class:`~repro.service.cache.ResultCache` — a content-addressed store of
  task results keyed by the canonical fingerprint of *(spec configuration,
  seed, backend identity, engine)* (see :mod:`repro.api.fingerprint`).
  Analytic cells are memoizable forever; simulated cells are deterministic
  at fixed seeds, so repeat sweeps become cache hits. A memory tier holds
  everything; an optional disk tier persists compact summary-form results
  as JSON across processes.
* :class:`~repro.service.service.SweepService` — an asyncio service that
  accepts sweep submissions, deduplicates in-flight and cached cells,
  streams partial :class:`~repro.api.sweep.SweepRecord` batches as tasks
  complete, and enforces per-request cell budgets.

:mod:`repro.service.server` exposes the service over a line-delimited JSON
TCP protocol (the ``repro serve`` sub-command); ``run_sweep(cache=...)``
uses the cache directly without a service.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.service import ServiceStats, SweepService

__all__ = [
    "CacheStats",
    "ResultCache",
    "ServiceStats",
    "SweepService",
]
