"""A line-delimited JSON TCP front end for :class:`SweepService`.

The ``repro serve`` sub-command listens on a host/port; each connection
sends one JSON request per line and receives a stream of JSON events back:

``{"event": "record", ...}``
    One per completed sweep record, in completion order (cache hits
    complete immediately) — the streamed partial results.
``{"event": "done", ...}``
    Submission complete: row/cell counts plus the service's cache and
    deduplication statistics.
``{"event": "error", ...}``
    The request was rejected (bad configuration, budget exceeded); the
    connection stays usable for the next request.

Requests mirror the ``repro sweep`` CLI flags::

    {"schemes": ["bcc", "uncoded"], "loads": [5, 10], "workers": 50,
     "units": 50, "unit_size": 100, "iterations": 20, "trials": 3,
     "seed": 0, "backend": "timing", "engine": "auto",
     "record": "summary", "trial_batching": "auto"}

A request carrying ``"request": "recommend"`` invokes the scheme
auto-tuner (:mod:`repro.tuning`) instead of a sweep: its remaining keys
follow the ``repro tune`` grammar
(:data:`repro.tuning.tuner.RECOMMEND_KEYS`) and the response is one
``{"event": "recommendation", "report": {...}}`` — the full ranked
:meth:`~repro.tuning.tuner.TuneReport.to_record` — followed by the usual
``done`` event. Tune confirmations run through the same service cache, so
recommending and then sweeping the winners re-simulates nothing.

A request carrying ``"request": "cells"`` is a **task lease** from a
:class:`~repro.scheduling.distributed.DistributedExecutor` coordinator:
``"tasks"`` holds base64-pickled :class:`~repro.scheduling.core.CellTask`
items, each executed through the service's content-addressed cache
(:meth:`~repro.service.service.SweepService.execute_cell`) and streamed
back as ``{"event": "cell_result", "index": i, "payload": <b64 pickle>}``
— or ``{"event": "cell_error", "index": i, "kind": ..., "error": ...}`` —
in completion order, followed by ``done``. The same protocol runs in
reverse over a dialled-out connection in ``repro serve --join HOST:PORT``
worker mode (:func:`run_worker`): the worker connects to a waiting
coordinator, announces itself, and serves leases until the coordinator
hangs up.

The protocol is deliberately minimal — a laboratory-scale result server,
not an internet-facing one: bind it to localhost. Cell leases carry
*pickled* payloads, so a node must only ever be pointed at a coordinator
it trusts (and vice versa).
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import pickle
from typing import List, Mapping, Optional, Tuple

from repro.api import JobSpec, Sweep
from repro.api.backends import TimingSimBackend
from repro.exceptions import ConfigurationError, ReproError
from repro.experiments.ec2 import ec2_like_cluster
from repro.schemes.registry import available_schemes, scheme_accepts
from repro.service.service import SweepService

__all__ = [
    "sweep_from_request",
    "serve",
    "run_server",
    "run_worker",
    "self_test",
]

#: Request keys the server understands (anything else is a loud error).
_REQUEST_KEYS = {
    "schemes",
    "loads",
    "workers",
    "units",
    "unit_size",
    "iterations",
    "trials",
    "seed",
    "backend",
    "engine",
    "record",
    "trial_batching",
}


def sweep_from_request(payload: Mapping[str, object]) -> Tuple[Sweep, str, str]:
    """Build the sweep (and run options) described by one JSON request.

    Returns ``(sweep, record, trial_batching)``. The request grammar
    mirrors :func:`repro.experiments.cli.run_cli_sweep`: a scheme list and
    a load list expand into one scheme-config cell per (scheme, load)
    combination on an EC2-like cluster.
    """
    unknown = set(payload) - _REQUEST_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown request key(s) {sorted(unknown)}; expected a subset "
            f"of {sorted(_REQUEST_KEYS)}"
        )
    scheme_names = list(payload.get("schemes", ["bcc", "uncoded"]))  # type: ignore[arg-type]
    loads = [int(load) for load in payload.get("loads", [5, 10, 25])]  # type: ignore[union-attr]
    if not scheme_names:
        raise ConfigurationError("the request must name at least one scheme")
    for name in scheme_names:
        if name not in available_schemes():
            raise ConfigurationError(
                f"unknown scheme {name!r}; available: "
                f"{', '.join(available_schemes())}"
            )
    scheme_configs: List[dict] = []
    for name in scheme_names:
        if scheme_accepts(name, "load"):
            scheme_configs.extend({"name": name, "load": load} for load in loads)
        else:
            scheme_configs.append({"name": name})
    if not scheme_configs:
        # Every requested scheme sweeps the load axis and "loads" was empty.
        raise ConfigurationError(
            "the request expands to zero sweep cells; give a non-empty "
            "'loads' list for the requested scheme(s)"
        )

    base = JobSpec(
        scheme=scheme_configs[0],
        cluster=ec2_like_cluster(int(payload.get("workers", 50))),  # type: ignore[arg-type]
        num_units=int(payload.get("units", 50)),  # type: ignore[arg-type]
        num_iterations=int(payload.get("iterations", 20)),  # type: ignore[arg-type]
        unit_size=int(payload.get("unit_size", 100)),  # type: ignore[arg-type]
        serialize_master_link=False,
        seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
    )
    backend_name = str(payload.get("backend", "timing"))
    if backend_name == "timing":
        backend: object = TimingSimBackend(engine=str(payload.get("engine", "auto")))
    elif backend_name == "analytic":
        backend = "analytic"
    else:
        raise ConfigurationError(
            f"the sweep service runs 'timing' or 'analytic' backends, "
            f"got {backend_name!r}"
        )
    sweep = Sweep(
        base,
        parameters={"scheme": scheme_configs},
        trials=int(payload.get("trials", 1)),  # type: ignore[arg-type]
        backend=backend,  # type: ignore[arg-type]
    )
    record = str(payload.get("record", "summary"))
    trial_batching = str(payload.get("trial_batching", "auto"))
    return sweep, record, trial_batching


async def _handle_request(
    service: SweepService, writer: asyncio.StreamWriter, line: bytes
) -> None:
    """Process one request line: stream record events, then a done event."""

    def send(event: Mapping[str, object]) -> None:
        writer.write(json.dumps(event).encode("utf-8") + b"\n")

    try:
        payload = json.loads(line.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ConfigurationError("a request must be a JSON object")
        if payload.get("request") == "recommend":
            await _handle_recommend(service, send, payload)
            await writer.drain()
            return
        if payload.get("request") == "cells":
            await _handle_cells(service, send, payload, writer)
            await writer.drain()
            return
        if "request" in payload:
            raise ConfigurationError(
                f"unknown request type {payload['request']!r}; the server "
                "understands sweep submissions (no 'request' key), "
                "'recommend', and 'cells'"
            )
        sweep, record, trial_batching = sweep_from_request(payload)
        hits_before = service.cache.stats.hits
        misses_before = service.cache.stats.misses
        rows = 0
        async for batch in service.stream(
            sweep, record=record, trial_batching=trial_batching
        ):
            for sweep_record in batch:
                rows += 1
                send(
                    {
                        "event": "record",
                        "cell": sweep_record.cell,
                        "trial": sweep_record.trial,
                        "params": {
                            key: value
                            for key, value in sweep_record.params.items()
                        },
                        "summary": sweep_record.result.summary(),
                    }
                )
            await writer.drain()
        hits = service.cache.stats.hits - hits_before
        lookups = hits + service.cache.stats.misses - misses_before
        send(
            {
                "event": "done",
                "records": rows,
                "cache_hits": hits,
                "cache_lookups": lookups,
                "cache_hit_rate": hits / lookups if lookups else 0.0,
                "deduplicated": service.stats.tasks_deduplicated,
            }
        )
    except (ReproError, ValueError) as error:
        send({"event": "error", "error": str(error)})
    await writer.drain()


async def _handle_cells(
    service: SweepService,
    send,
    payload: Mapping[str, object],
    writer: asyncio.StreamWriter,
) -> None:
    """One distributed-executor lease: run the tasks, stream their results.

    Every task flows through :meth:`SweepService.execute_cell` — the
    content-addressed cache plus in-flight deduplication — which is what
    makes the coordinator's retry-with-reassignment at-most-once per
    *result*. Events stream in completion order; a per-task failure becomes
    a ``cell_error`` event (the lease keeps going) rather than a request
    error.
    """
    from repro.scheduling.core import CellTask

    unknown = set(payload) - {"request", "tasks"}
    if unknown:
        raise ConfigurationError(
            f"unknown cells-request key(s) {sorted(unknown)}; a lease "
            "carries only 'request' and 'tasks'"
        )
    blobs = payload.get("tasks")
    if not isinstance(blobs, list) or not blobs:
        raise ConfigurationError(
            "a 'cells' request carries a non-empty 'tasks' list of "
            "base64-pickled CellTask payloads"
        )
    tasks: List[CellTask] = []
    for position, blob in enumerate(blobs):
        try:
            task = pickle.loads(base64.b64decode(blob))
        except (
            # The full menagerie unpickling raises on corrupt or
            # version-skewed payloads; anything else is a local bug and
            # propagates (EXC002 keeps catch-alls out of the service).
            pickle.UnpicklingError,
            ValueError,
            TypeError,
            EOFError,
            AttributeError,
            ImportError,
            IndexError,
        ) as error:
            raise ConfigurationError(
                f"lease task {position} could not be decoded: {error}"
            ) from error
        if not isinstance(task, CellTask):
            raise ConfigurationError(
                f"lease task {position} decodes to "
                f"{type(task).__name__}, expected a CellTask"
            )
        tasks.append(task)

    async def run_cell(position: int, task: CellTask):
        try:
            results = await service.execute_cell(task)
        except (ReproError, ValueError) as error:
            return position, None, error
        return position, base64.b64encode(pickle.dumps(results)).decode("ascii"), None

    pending = [
        asyncio.ensure_future(run_cell(position, task))
        for position, task in enumerate(tasks)
    ]
    completed = 0
    try:
        for future in asyncio.as_completed(pending):
            position, blob, error = await future
            if error is not None:
                send(
                    {
                        "event": "cell_error",
                        "index": position,
                        "kind": type(error).__name__,
                        "error": str(error),
                    }
                )
            else:
                send({"event": "cell_result", "index": position, "payload": blob})
                completed += 1
            await writer.drain()
    finally:
        for future in pending:
            if not future.done():
                future.cancel()
    send(
        {
            "event": "done",
            "results": completed,
            "errors": len(tasks) - completed,
        }
    )


async def _handle_recommend(service, send, payload: Mapping[str, object]) -> None:
    """One ``recommend`` request: run the tuner, send its report + done."""
    from repro.tuning import tune_from_request

    spec = tune_from_request(
        {key: value for key, value in payload.items() if key != "request"}
    )
    hits_before = service.cache.stats.hits
    misses_before = service.cache.stats.misses
    report = await service.recommend(spec)
    send({"event": "recommendation", "report": report.to_record()})
    hits = service.cache.stats.hits - hits_before
    lookups = hits + service.cache.stats.misses - misses_before
    send(
        {
            "event": "done",
            "records": len(report.ranking),
            "cache_hits": hits,
            "cache_lookups": lookups,
            "cache_hit_rate": hits / lookups if lookups else 0.0,
            "deduplicated": service.stats.tasks_deduplicated,
        }
    )


async def serve(
    service: SweepService,
    *,
    host: str = "127.0.0.1",
    port: int = 8123,
    once: bool = False,
    announce: bool = False,
) -> None:
    """Serve sweep submissions over TCP until cancelled.

    ``once=True`` exits after the first connection closes — the CI smoke
    mode, so a scripted client can submit, verify, and let the server
    fall out cleanly. ``announce=True`` prints the bound address once
    listening — the way scripted callers (benchmarks, tests) learn which
    ephemeral port a ``--port 0`` server actually got.
    """
    finished = asyncio.Event()

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await _connection(service, reader, writer)
        finally:
            if once:
                finished.set()

    server = await asyncio.start_server(handle, host, port)
    if announce:
        bound = server.sockets[0].getsockname()[1]
        print(f"repro serve: listening on {host}:{bound}", flush=True)
    async with server:
        if once:
            await finished.wait()
        else:  # pragma: no cover - interactive mode; exercised manually
            await server.serve_forever()


async def submit_request(
    host: str, port: int, request: Mapping[str, object]
) -> List[dict]:
    """Client side of the protocol: send one request, collect the events."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await writer.drain()
        events: List[dict] = []
        while True:
            line = await reader.readline()
            if not line:
                break
            event = json.loads(line.decode("utf-8"))
            events.append(event)
            if event.get("event") in ("done", "error"):
                break
        return events
    finally:
        writer.close()


async def _self_test(host: str, request: Mapping[str, object]) -> int:
    """Serve on an ephemeral port and submit ``request`` twice over TCP.

    The smoke contract: the second, identical submission must be served
    (almost) entirely from the cache — at least 95% of its records.
    """
    service = SweepService()
    server = await asyncio.start_server(
        lambda reader, writer: _connection(service, reader, writer), host, 0
    )
    port = server.sockets[0].getsockname()[1]
    async with server:
        first = await submit_request(host, port, request)
        second = await submit_request(host, port, request)
    for label, events in (("first", first), ("second", second)):
        done = events[-1]
        if done.get("event") != "done":
            print(f"service smoke FAILED: {label} submission -> {done}")
            return 1
        print(
            f"{label} submission: {done['records']} records, "
            f"{done['cache_hits']}/{done['cache_lookups']} cache hits"
        )
    done = second[-1]
    if done["cache_lookups"] == 0 or done["cache_hit_rate"] < 0.95:
        print(
            "service smoke FAILED: resubmission hit "
            f"{done['cache_hits']}/{done['cache_lookups']} tasks in cache "
            "(need >= 95%)"
        )
        return 1
    print("service smoke OK: resubmission served from cache")
    return 0


async def _connection(
    service: SweepService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: requests until EOF/blank line, then close."""
    try:
        while True:
            line = await reader.readline()
            if not line or not line.strip():
                break
            await _handle_request(service, writer, line)
    except asyncio.CancelledError:
        # Server shutdown while this connection idled between requests —
        # an orderly end of service, not an error to propagate.
        pass
    finally:
        writer.close()


def self_test(host: str = "127.0.0.1") -> int:
    """Run the end-to-end smoke: serve, submit twice, require ~all hits."""
    request = {
        "schemes": ["bcc", "uncoded"],
        "loads": [5, 10],
        "workers": 20,
        "units": 20,
        "iterations": 5,
        "trials": 4,
        "engine": "vectorized",
    }
    return asyncio.run(_self_test(host, request))


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8123,
    cache_dir: Optional[str] = None,
    max_workers: Optional[int] = None,
    cell_budget: Optional[int] = None,
    once: bool = False,
) -> int:
    """Blocking entry point for the ``repro serve`` sub-command."""
    service = SweepService(
        cache=cache_dir, max_workers=max_workers, cell_budget=cell_budget
    )
    # Announce when the OS picks the port — otherwise scripted callers
    # (benchmarks spawning nodes on ephemeral ports) cannot find the server.
    asyncio.run(
        serve(service, host=host, port=port, once=once, announce=port == 0)
    )
    return 0


async def _join_coordinator(service: SweepService, host: str, port: int) -> None:
    """Dial a coordinator, announce ourselves, serve leases until EOF."""
    reader, writer = await asyncio.open_connection(host, port)
    hello = {"event": "joined", "worker": f"pid-{os.getpid()}"}
    writer.write(json.dumps(hello).encode("utf-8") + b"\n")
    await writer.drain()
    await _connection(service, reader, writer)


def run_worker(
    host: str,
    port: int,
    *,
    cache_dir: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> int:
    """Blocking entry point for ``repro serve --join HOST:PORT``.

    Instead of binding a listening socket, the worker dials *out* to a
    :class:`~repro.scheduling.distributed.DistributedExecutor` coordinator
    (``DistributedExecutor(listen=...)`` or ``repro sweep --nodes`` with a
    listen endpoint), sends one hello line, and then speaks the ordinary
    request/event protocol over that single connection — leases in, result
    streams out — until the coordinator closes it. Everything runs through
    the worker's own :class:`SweepService`, cache included, so a worker
    with a disk cache (``--cache DIR``) serves repeat leases instantly.
    """
    service = SweepService(cache=cache_dir, max_workers=max_workers)
    asyncio.run(_join_coordinator(service, host, port))
    return 0
