"""Discrete-event simulation of distributed gradient descent.

The simulator substitutes for the paper's EC2 cluster: per-worker computation
times are drawn from the cluster's delay models, messages are delivered to
the master through a (by default serialised) ingress link whose transfer time
scales with the message size, and the scheme's aggregator decides when the
iteration ends. Two modes are supported:

* **timing-only** — no numerical gradients are computed; this is what the
  figure/table benchmarks use and it runs thousands of simulated iterations
  per second.
* **semantic** — the workers' messages are real encoded gradients and the
  master's decoded gradient drives an optimizer, so a whole training run can
  be executed under simulated time while also checking numerical exactness.
"""

from repro.simulation.execution import (
    unit_gradient_matrix,
    worker_message,
    distributed_gradient,
)
from repro.simulation.iteration import IterationOutcome, simulate_iteration
from repro.simulation.job import JobResult, simulate_job, simulate_training_run
from repro.simulation.kernels import (
    KERNELS,
    available_kernel_backends,
    resolve_kernels,
    validate_kernels,
)
from repro.simulation.vectorized import (
    ENGINES,
    resolve_engine,
    simulate_job_batch,
    simulate_job_vectorized,
    validate_engine,
)

__all__ = [
    "unit_gradient_matrix",
    "worker_message",
    "distributed_gradient",
    "IterationOutcome",
    "simulate_iteration",
    "JobResult",
    "simulate_job",
    "simulate_training_run",
    "ENGINES",
    "KERNELS",
    "available_kernel_backends",
    "resolve_engine",
    "resolve_kernels",
    "simulate_job_batch",
    "simulate_job_vectorized",
    "validate_engine",
    "validate_kernels",
]
