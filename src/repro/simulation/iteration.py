"""Single-iteration timing simulation.

One iteration of distributed GD proceeds as follows in the simulator:

1. Every worker draws a computation time from its delay model, proportional
   to the number of *examples* it processes (its unit count times the unit
   size in examples).
2. Finished workers send their message to the master. With
   ``serialize_master_link=True`` (the default, matching the single-NIC
   master of the paper's EC2 setup) the master receives messages one at a
   time in the order the workers finish, each transfer taking the
   communication model's time for that message size; with ``False`` the
   transfers overlap perfectly and a message arrives at
   ``compute_time + transfer_time``.
3. Arrivals are fed to the scheme's aggregator in order; the iteration ends
   the moment the aggregator is complete.

Reported metrics mirror the paper's Tables I and II: the *computation time*
is the maximum computation time among workers whose results were received
before the iteration ended, and the *communication time* is the remainder of
the total running time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.exceptions import SimulationError
from repro.schemes.base import ExecutionPlan
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["IterationOutcome", "simulate_iteration"]


def incomplete_iteration_error(
    scheme_name: str, vacant_workers: int
) -> SimulationError:
    """The master heard everyone it could hear and still cannot finish.

    One message builder shared by both engines, so the loop and vectorized
    paths report the same failure identically. ``vacant_workers`` counts
    assigned workers that can never report this iteration (their completion
    time is infinite — vacant slots of a dynamic cluster): with none, the
    placement itself is infeasible; with some, coverage was lost to
    churn/preemption.
    """
    if vacant_workers:
        return SimulationError(
            f"scheme {scheme_name!r}: the master could not recover the "
            f"gradient even after every available worker reported "
            f"({vacant_workers} assigned worker slot(s) never report this "
            "iteration — coverage lost to churn/preemption)"
        )
    return SimulationError(
        f"scheme {scheme_name!r}: the master could not recover the "
        "gradient even after all workers reported (infeasible placement)"
    )


@dataclass(frozen=True)
class IterationOutcome:
    """Timing metrics of one simulated iteration.

    Attributes
    ----------
    total_time:
        Wall-clock time from iteration start to gradient recovery.
    computation_time:
        Max computation time among workers the master heard before finishing.
    communication_time:
        ``total_time - computation_time`` (the paper's approximation).
    workers_heard:
        Realised recovery threshold: number of workers whose messages the
        master received before completing.
    communication_load:
        Realised communication load: total size (in gradient units) of the
        messages received before completing.
    workers_finished_compute:
        Number of workers that had finished computing by ``total_time``
        (includes workers whose messages were still in flight).
    heard_workers:
        The worker indices the master heard from, in arrival order (the last
        one triggered completion).
    """

    total_time: float
    computation_time: float
    communication_time: float
    workers_heard: int
    communication_load: float
    workers_finished_compute: int
    heard_workers: tuple = ()


def simulate_iteration(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    rng: RandomState = None,
    *,
    unit_size: int = 1,
    serialize_master_link: bool = True,
) -> IterationOutcome:
    """Simulate the timing of one distributed GD iteration.

    Parameters
    ----------
    plan:
        The scheme's execution plan (placement, message sizes, aggregator).
    cluster:
        Per-worker delay models and the master's communication model.
    unit_size:
        Number of training examples per data unit (the paper's experiments
        use batches of 100 examples as units).
    serialize_master_link:
        Whether message receptions at the master are serialised (default) or
        fully parallel.

    Raises
    ------
    SimulationError
        If the aggregator cannot complete even after every worker reported —
        the plan was infeasible (use
        :meth:`~repro.schemes.base.Scheme.build_feasible_plan`).
    """
    if cluster.num_workers != plan.num_workers:
        raise SimulationError(
            f"the plan has {plan.num_workers} workers but the cluster has "
            f"{cluster.num_workers}"
        )
    check_positive_int(unit_size, "unit_size")
    generator = as_generator(rng)

    loads_units = plan.unit_assignment.loads
    loads_examples = loads_units * unit_size

    # 1. Per-worker computation times (idle workers never report).
    compute_times = np.full(plan.num_workers, np.inf)
    for worker, model in enumerate(cluster.delay_models()):
        if loads_examples[worker] > 0:
            compute_times[worker] = model.sample(int(loads_examples[worker]), rng=generator)

    # 2. Message arrival times at the master.
    order = np.argsort(compute_times, kind="stable")
    transfer_times = np.zeros(plan.num_workers)
    for worker in order:
        if np.isfinite(compute_times[worker]):
            transfer_times[worker] = cluster.communication.sample(
                float(plan.message_sizes[worker]), rng=generator
            )

    arrival_times = np.full(plan.num_workers, np.inf)
    if serialize_master_link:
        link_free_at = 0.0
        for worker in order:
            if not np.isfinite(compute_times[worker]):
                break
            start = max(compute_times[worker], link_free_at)
            link_free_at = start + transfer_times[worker]
            arrival_times[worker] = link_free_at
    else:
        finite = np.isfinite(compute_times)
        arrival_times[finite] = compute_times[finite] + transfer_times[finite]

    # 3. Feed arrivals to the aggregator in arrival order.
    aggregator = plan.new_aggregator()
    arrival_order = np.argsort(arrival_times, kind="stable")
    total_time = np.inf
    heard: list[int] = []
    for worker in arrival_order:
        if not np.isfinite(arrival_times[worker]):
            break
        heard.append(int(worker))
        if aggregator.receive(int(worker), None):
            total_time = float(arrival_times[worker])
            break
    if not np.isfinite(total_time):
        vacant = int(np.sum(~np.isfinite(compute_times[loads_examples > 0])))
        raise incomplete_iteration_error(plan.scheme_name, vacant)

    computation_time = float(np.max(compute_times[heard])) if heard else 0.0
    communication_load = float(np.sum(plan.message_sizes[heard]))
    workers_finished = int(np.sum(compute_times <= total_time))
    return IterationOutcome(
        total_time=total_time,
        computation_time=computation_time,
        communication_time=max(total_time - computation_time, 0.0),
        workers_heard=len(heard),
        communication_load=communication_load,
        workers_finished_compute=workers_finished,
        heard_workers=tuple(heard),
    )
