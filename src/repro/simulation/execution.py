"""Semantic execution helpers: computing worker messages and the decoded gradient.

These functions implement the *numerical* side of a scheme's execution plan —
what a worker actually computes and what the master actually reconstructs —
independently of any timing model. They are shared by the semantic simulator,
the multiprocessing runtime, the examples, and the exactness tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.batching import BatchSpec
from repro.exceptions import CoverageError
from repro.gradients.base import GradientModel
from repro.schemes.base import ExecutionPlan

__all__ = ["unit_gradient_matrix", "worker_message", "distributed_gradient"]


def _unit_examples(unit_spec: Optional[BatchSpec], unit: int) -> np.ndarray:
    """Example indices belonging to data unit ``unit``."""
    if unit_spec is None:
        return np.array([unit], dtype=int)
    return unit_spec.batch_indices(unit)


def unit_gradient_matrix(
    model: GradientModel,
    dataset: Dataset,
    weights: np.ndarray,
    units: Sequence[int] | np.ndarray,
    unit_spec: Optional[BatchSpec] = None,
) -> np.ndarray:
    """Stack the summed partial gradients of the given data units.

    Parameters
    ----------
    units:
        Unit indices, in the order the rows should appear.
    unit_spec:
        Mapping from units to example indices. ``None`` means one unit is one
        example (the analytical granularity); a :class:`BatchSpec` means one
        unit is a batch of examples (the paper's experimental granularity).

    Returns
    -------
    ndarray of shape ``(len(units), p)`` whose row ``u`` is
    ``sum_{j in unit u} g_j(weights)``.
    """
    units = np.asarray(units, dtype=int)
    weights = np.asarray(weights, dtype=float)
    rows = np.empty((units.size, weights.shape[0]), dtype=float)
    for row, unit in enumerate(units):
        example_indices = _unit_examples(unit_spec, int(unit))
        features, labels = dataset.rows(example_indices)
        rows[row] = model.gradient_sum(weights, features, labels)
    return rows


def worker_message(
    plan: ExecutionPlan,
    worker: int,
    model: GradientModel,
    dataset: Dataset,
    weights: np.ndarray,
    unit_spec: Optional[BatchSpec] = None,
) -> np.ndarray:
    """Compute the message worker ``worker`` sends for the given weights.

    This is the full worker-side pipeline: gather the worker's units, compute
    each unit's summed partial gradient, then apply the scheme's encoder
    (plain sum for BCC/uncoded, linear combination for coded schemes,
    identity for per-unit schemes).
    """
    units = plan.worker_units(worker)
    if units.size == 0:
        return np.zeros(0, dtype=float)
    gradients = unit_gradient_matrix(model, dataset, weights, units, unit_spec)
    return plan.encode(worker, gradients)


def distributed_gradient(
    plan: ExecutionPlan,
    model: GradientModel,
    dataset: Dataset,
    weights: np.ndarray,
    responding_workers: Sequence[int] | np.ndarray,
    unit_spec: Optional[BatchSpec] = None,
) -> tuple[np.ndarray, int]:
    """Run one full (untimed) distributed gradient evaluation.

    The workers in ``responding_workers`` report *in the given order*; the
    master stops as soon as its aggregator is satisfied, decodes, and divides
    by the number of examples to produce the gradient of the empirical risk.

    Returns
    -------
    (gradient, workers_heard):
        The reconstructed full gradient and the number of workers the master
        actually waited for.

    Raises
    ------
    CoverageError
        If the responding workers do not suffice to recover the gradient.
    """
    aggregator = plan.new_aggregator()
    complete = False
    for worker in np.asarray(responding_workers, dtype=int):
        message = worker_message(plan, int(worker), model, dataset, weights, unit_spec)
        complete = aggregator.receive(int(worker), message)
        if complete:
            break
    if not complete:
        raise CoverageError(
            f"scheme {plan.scheme_name!r}: the responding workers do not allow "
            "the master to recover the gradient"
        )
    total = aggregator.decode()
    return total / float(dataset.num_examples), aggregator.workers_heard
