"""The NumPy kernel backend — the reference the compiled backends pin against.

These are the exact expressions :mod:`repro.simulation.vectorized` ran
before the kernel layer existed, lifted behind the
:class:`~repro.simulation.kernels.KernelSuite` call surface: the
serialized-link recurrence evaluated column by column (every row reproduces
the loop engine's float-op order — a cumsum/running-max rewrite would be
algebraically equal but rounded differently), and the completion kernels as
row-wise selections (``max``/``sort``/``reduceat``). The compiled backends
must return bit-identical arrays; the parity suite enforces it.

Always available — ``kernels="numpy"`` (and ``"auto"`` without an installed
accelerator) lands here, so tier-1 behaviour is byte-for-byte the pre-kernel
engine's.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "coverage_completion",
    "count_completion",
    "group_completion",
    "link_recurrence",
    "partial_sum_completion",
]

#: Row chunking bound for the gathered ``(rows x pairs)`` scratch matrices
#: in the segment-reduction kernels — the same 4M-cell ceiling the
#: pre-kernel `_coverage_kernel` used. Chunk boundaries fall between whole
#: rows and rows are independent, so chunking cannot change any result.
_SEGMENT_CHUNK_CELLS = 1 << 22


def link_recurrence(
    compute_sorted: np.ndarray, transfer_sorted: np.ndarray
) -> np.ndarray:
    """``a_k = max(c_k, a_{k-1}) + t_k`` over completion-sorted columns."""
    num_rows, _ = compute_sorted.shape
    arrival_sorted = np.empty_like(compute_sorted)
    link_free = np.zeros(num_rows, dtype=float)
    for k in range(compute_sorted.shape[1]):
        start = np.maximum(compute_sorted[:, k], link_free)
        link_free = start + transfer_sorted[:, k]
        arrival_sorted[:, k] = link_free
    return arrival_sorted


def count_completion(positions: np.ndarray, required: np.ndarray) -> np.ndarray:
    """Per row, the max arrival rank over the required columns."""
    return positions[:, required].max(axis=1)


def partial_sum_completion(
    positions: np.ndarray, eligible: np.ndarray, needed: int
) -> np.ndarray:
    """Per row, the ``needed``-th smallest arrival rank over eligible columns."""
    return np.sort(positions[:, eligible], axis=1)[:, needed - 1]


def coverage_completion(
    positions: np.ndarray, owners_sorted: np.ndarray, segment_starts: np.ndarray
) -> np.ndarray:
    """Per row, the max over segments of each segment's min arrival rank."""
    num_rows = positions.shape[0]
    rows_per_chunk = max(1, _SEGMENT_CHUNK_CELLS // max(owners_sorted.size, 1))
    completing = np.empty(num_rows, dtype=int)
    for start in range(0, num_rows, rows_per_chunk):
        block = positions[start : start + rows_per_chunk, owners_sorted]
        first_covered = np.minimum.reduceat(block, segment_starts, axis=1)
        completing[start : start + rows_per_chunk] = first_covered.max(axis=1)
    return completing


def group_completion(
    positions: np.ndarray, members: np.ndarray, group_starts: np.ndarray
) -> np.ndarray:
    """Per row, the min over groups of each group's max member arrival rank."""
    num_rows = positions.shape[0]
    rows_per_chunk = max(1, _SEGMENT_CHUNK_CELLS // max(members.size, 1))
    completing = np.empty(num_rows, dtype=int)
    for start in range(0, num_rows, rows_per_chunk):
        block = positions[start : start + rows_per_chunk, members]
        last_member = np.maximum.reduceat(block, group_starts, axis=1)
        completing[start : start + rows_per_chunk] = last_member.min(axis=1)
    return completing
