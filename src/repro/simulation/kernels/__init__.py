"""Compiled completion kernels for the vectorized timing engine.

The vectorized engine's hot path is five tight array kernels — the
serialized-master-link arrival recurrence and the per-scheme completion
searches (fixed-set count, arrival-count selection, coverage
coupon-collector, replication-group completion). This package provides those
kernels behind one call surface (:class:`KernelSuite`) with three
interchangeable backends, selected by the ``kernels=`` knob that
``simulate_job`` / ``simulate_job_batch`` / ``TimingSimBackend`` / the sweep
CLI expose:

``"numpy"``
    The reference implementation (:mod:`~repro.simulation.kernels.numpy_impl`)
    — the exact pre-kernel expressions, always available.
``"numba"``
    ``@njit(cache=True, parallel=True)``-compiled
    :mod:`~repro.simulation.kernels.sources` functions. Numba is a **soft
    dependency**: never required by tier-1 tests, probed at dispatch time.
``"cext"``
    The same kernels translated to C, compiled on first use with the system
    C compiler and called through ctypes
    (:mod:`~repro.simulation.kernels.cext`) — compiled-kernel speed on
    machines with a C toolchain but no numba.
``"auto"``
    ``"numba"`` when importable, else ``"numpy"``. Deliberately *not*
    ``"cext"``: auto must never spend seconds probing a C toolchain (or
    fail on half-working ones) on the default path; the C backend is an
    explicit opt-in.

Every backend is bit-identical to ``"numpy"`` at fixed seeds: the float
kernel replays the reference's per-row op order and the completion kernels
return integer selections. The parity suite
(``tests/simulation/test_kernel_parity.py``) pins this for every available
backend, and the ``KERN001`` lint rule machine-enforces the nopython
contract on the shared sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "KERNELS",
    "KernelSuite",
    "available_kernel_backends",
    "get_suite",
    "kernels_available",
    "resolve_kernels",
    "validate_kernels",
]

#: Recognised values for the ``kernels=`` knob across the stack.
KERNELS = ("auto", "numba", "cext", "numpy")

#: The concrete backends ``resolve_kernels`` can return.
KERNEL_BACKENDS = ("numba", "cext", "numpy")


@dataclass(frozen=True)
class KernelSuite:
    """One backend's implementations of the five hot-path kernels.

    All arrays are row-major with independent rows; every callable
    allocates and returns its output. ``positions`` matrices hold each
    active column's arrival rank; completion kernels return the 0-based
    rank completing each row (callers translate out-of-range sentinels to
    "never completes").
    """

    name: str
    link_recurrence: Callable[[np.ndarray, np.ndarray], np.ndarray]
    count_completion: Callable[[np.ndarray, np.ndarray], np.ndarray]
    partial_sum_completion: Callable[[np.ndarray, np.ndarray, int], np.ndarray]
    coverage_completion: Callable[
        [np.ndarray, np.ndarray, np.ndarray], np.ndarray
    ]
    group_completion: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def validate_kernels(kernels: str) -> str:
    """Validate a ``kernels`` knob value, returning it unchanged.

    The single source of the unknown-backend error for every knob (engine
    entry points, ``TimingSimBackend``, the CLI's argparse choices).
    """
    if kernels not in KERNELS:
        raise ConfigurationError(
            f"unknown kernels backend {kernels!r}; expected one of {list(KERNELS)}"
        )
    return kernels


_suites: Dict[str, KernelSuite] = {}
_probe_errors: Dict[str, str] = {}


def _probe(name: str) -> Optional[KernelSuite]:
    """Load a concrete backend's suite, memoizing success *and* failure."""
    if name in _suites:
        return _suites[name]
    if name in _probe_errors:
        return None
    if name == "numpy":
        from repro.simulation.kernels import numpy_impl as impl

        suite = KernelSuite(
            name="numpy",
            link_recurrence=impl.link_recurrence,
            count_completion=impl.count_completion,
            partial_sum_completion=impl.partial_sum_completion,
            coverage_completion=impl.coverage_completion,
            group_completion=impl.group_completion,
        )
    elif name == "numba":
        try:
            from repro.simulation.kernels import numba_impl
        except ImportError as error:
            _probe_errors[name] = (
                f"numba is not installed ({error}); install numba or use "
                "kernels='auto'/'numpy'"
            )
            return None
        suite = KernelSuite(
            name="numba",
            link_recurrence=numba_impl.link_recurrence,
            count_completion=numba_impl.count_completion,
            partial_sum_completion=numba_impl.partial_sum_completion,
            coverage_completion=numba_impl.coverage_completion,
            group_completion=numba_impl.group_completion,
        )
    else:  # cext
        from repro.simulation.kernels import cext

        try:
            callables = cext.load_suite()
        except ConfigurationError as error:
            _probe_errors[name] = str(error)
            return None
        suite = KernelSuite(name="cext", **callables)
    _suites[name] = suite
    return suite


def kernels_available(name: str) -> bool:
    """Whether a concrete backend (``numba``/``cext``/``numpy``) can run here."""
    if name not in KERNEL_BACKENDS:
        raise ConfigurationError(
            f"unknown kernels backend {name!r}; expected one of "
            f"{list(KERNEL_BACKENDS)}"
        )
    return _probe(name) is not None


def available_kernel_backends() -> tuple:
    """The concrete backends usable in this environment, in dispatch order."""
    return tuple(name for name in KERNEL_BACKENDS if kernels_available(name))


def resolve_kernels(kernels: str) -> str:
    """Resolve a ``kernels`` knob value to a concrete, available backend.

    ``"auto"`` prefers numba and falls back to numpy silently (the soft-
    dependency contract); explicitly requesting an unavailable backend is a
    :class:`~repro.exceptions.ConfigurationError` carrying the probe's
    failure reason.
    """
    validate_kernels(kernels)
    if kernels == "auto":
        return "numba" if kernels_available("numba") else "numpy"
    if not kernels_available(kernels):
        raise ConfigurationError(
            f"kernels={kernels!r} requested but the backend is unavailable: "
            f"{_probe_errors.get(kernels, 'unknown probe failure')}"
        )
    return kernels


def get_suite(kernels: str) -> KernelSuite:
    """Resolve a knob value and return the backing :class:`KernelSuite`."""
    suite = _probe(resolve_kernels(kernels))
    if suite is None:  # pragma: no cover - resolve_kernels guarantees otherwise
        raise ConfigurationError(f"kernels backend {kernels!r} failed to load")
    return suite


def _reset_probe_cache() -> None:
    """Forget memoized probe results (test hook for simulating absence)."""
    _suites.clear()
    _probe_errors.clear()
