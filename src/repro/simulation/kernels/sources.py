"""The compiled kernels' shared source functions (nopython subset).

Every function here is the *single* source of one hot-loop kernel: the
Numba backend compiles these exact functions with ``@njit`` (see
:mod:`repro.simulation.kernels.numba_impl`) and the C backend
(:mod:`repro.simulation.kernels.cext`) is a line-by-line translation that
the parity suite pins against them. They are also runnable as plain Python
— slowly — which is how the logic is unit-tested in environments without a
compiler or Numba.

The contract (machine-enforced by the ``KERN001`` lint rule): functions
marked :func:`jit_source` stay inside the nopython subset — arrays,
scalars, and loops only. No ``dict``/``set`` literals or constructors, no
``raise``/``try``, no string formatting, no ``print``. Infeasibility is
signalled with sentinel values (``n_active`` means "never completes", the
same convention the NumPy kernels use), never with exceptions, so the
compiled and interpreted behaviours cannot diverge on the error paths.

Floating-point bit-identity: the only kernel performing float arithmetic is
:func:`link_recurrence`, and it reproduces the NumPy reference's exact
per-row operation order (compare-select ``max``, then one ``+`` per
column). All other kernels return integer completion positions — selections
and counts — which are order-insensitive. ``inf`` entries (vacant dynamic
workers) flow through the same comparisons NumPy performs, so they
propagate identically.

Rows are independent in every kernel, so the ``prange`` row loops are safe
to parallelise: no two iterations touch the same output element.
"""

from __future__ import annotations

from typing import Callable, TypeVar

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import prange
except ImportError:  # pragma: no cover - the plain-Python / C-source path
    prange = range

_F = TypeVar("_F", bound=Callable)

#: Names of the kernel source functions, in a stable order — the single
#: list the Numba compiler, the C translation, and the KERN001 rule audit.
KERNEL_SOURCE_NAMES = (
    "link_recurrence",
    "count_completion",
    "partial_sum_completion",
    "coverage_completion",
    "group_completion",
)


def jit_source(function: _F) -> _F:
    """Mark a function as a compiled-kernel source (KERN001's scope).

    A no-op at runtime; the Numba backend compiles every marked function
    and the lint rule restricts their bodies to the nopython subset.
    """
    function.__kernel_source__ = True  # type: ignore[attr-defined]
    return function


@jit_source
def link_recurrence(
    compute_sorted: np.ndarray,
    transfer_sorted: np.ndarray,
    arrival_sorted: np.ndarray,
) -> None:
    """The serialized-master-link recurrence ``a_k = max(c_k, a_{k-1}) + t_k``.

    ``compute_sorted``/``transfer_sorted``/``arrival_sorted`` are
    ``(rows, cols)`` float64 matrices, columns already in computation-
    completion order. Each row is walked sequentially — the recurrence is
    inherently serial in ``k`` — with the NumPy reference's exact
    float-op order (compare-select, then add), so results are bit-identical.
    """
    rows, cols = compute_sorted.shape
    for i in prange(rows):
        free_at = 0.0
        for k in range(cols):
            c = compute_sorted[i, k]
            if c > free_at:
                free_at = c
            free_at = free_at + transfer_sorted[i, k]
            arrival_sorted[i, k] = free_at


@jit_source
def count_completion(
    positions: np.ndarray, required: np.ndarray, out: np.ndarray
) -> None:
    """Fixed-worker-set completion: the last required worker's arrival rank.

    ``positions`` is ``(rows, n_active)`` int64 (arrival rank of each active
    column), ``required`` the column indices that must all report; ``out``
    receives each row's max rank over them.
    """
    rows = positions.shape[0]
    k = required.shape[0]
    for i in prange(rows):
        worst = -1
        for j in range(k):
            rank = positions[i, required[j]]
            if rank > worst:
                worst = rank
        out[i] = worst


@jit_source
def partial_sum_completion(
    positions: np.ndarray, eligible: np.ndarray, needed: int, out: np.ndarray
) -> None:
    """Arrival-count completion: the ``needed``-th earliest eligible arrival.

    Selection without a sort: mark the arrival ranks held by eligible
    columns, then scan ranks upward until ``needed`` marks have been seen.
    The result is the ``needed``-th smallest of ``positions[i, eligible]``
    — exactly what the NumPy reference reads off a row sort.
    """
    rows, n_active = positions.shape
    k = eligible.shape[0]
    for i in prange(rows):
        mark = np.zeros(n_active, dtype=np.bool_)
        for j in range(k):
            mark[positions[i, eligible[j]]] = True
        seen = 0
        found = n_active
        for rank in range(n_active):
            if mark[rank]:
                seen += 1
                if seen == needed:
                    found = rank
                    break
        out[i] = found


@jit_source
def coverage_completion(
    positions: np.ndarray,
    owners_sorted: np.ndarray,
    segment_starts: np.ndarray,
    out: np.ndarray,
) -> None:
    """Coupon-collector completion: last item to be covered for the first time.

    ``owners_sorted`` holds the owning column of every (item, owner) pair,
    grouped by item; ``segment_starts`` indexes each item's first pair. Per
    row: the earliest covering arrival of each item (segment minimum), then
    the maximum over items — the rank at which every item is covered.
    """
    rows = positions.shape[0]
    num_segments = segment_starts.shape[0]
    num_pairs = owners_sorted.shape[0]
    for i in prange(rows):
        covered_at = -1
        for s in range(num_segments):
            start = segment_starts[s]
            end = num_pairs if s == num_segments - 1 else segment_starts[s + 1]
            earliest = positions[i, owners_sorted[start]]
            for p in range(start + 1, end):
                rank = positions[i, owners_sorted[p]]
                if rank < earliest:
                    earliest = rank
            if earliest > covered_at:
                covered_at = earliest
        out[i] = covered_at


@jit_source
def group_completion(
    positions: np.ndarray,
    members: np.ndarray,
    group_starts: np.ndarray,
    out: np.ndarray,
) -> None:
    """Replication-group completion: the earliest fully-reported group.

    ``members`` holds every viable group's member columns, grouped;
    ``group_starts`` indexes each group's first member. Per row: each
    group completes at its last member's rank, the iteration at the
    earliest group's.
    """
    rows = positions.shape[0]
    num_groups = group_starts.shape[0]
    num_members = members.shape[0]
    for i in prange(rows):
        best = positions.shape[1]
        for g in range(num_groups):
            start = group_starts[g]
            end = num_members if g == num_groups - 1 else group_starts[g + 1]
            last = positions[i, members[start]]
            for p in range(start + 1, end):
                rank = positions[i, members[p]]
                if rank > last:
                    last = rank
            if last < best:
                best = last
        out[i] = best
