"""The Numba kernel backend: ``@njit``-compiled source kernels.

Importing this module requires numba (a *soft* dependency — the package
dispatcher import-guards it; tier-1 tests never need it). The compiled
callables are the :mod:`~repro.simulation.kernels.sources` functions
verbatim under ``@njit(cache=True, parallel=True)``: on-disk compilation
cache so repeat processes skip the JIT, and parallel ``prange`` row loops —
safe because every kernel's rows are independent and write disjoint output
elements, so threading cannot reorder any row's float ops.

The wrappers below only allocate outputs and coerce dtypes/contiguity; all
logic lives in the shared sources, which is what keeps this backend and the
C backend pinned to the same semantics.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.simulation.kernels import sources

__all__ = [
    "coverage_completion",
    "count_completion",
    "group_completion",
    "link_recurrence",
    "partial_sum_completion",
]

_link_recurrence = njit(cache=True, parallel=True)(sources.link_recurrence)
_count_completion = njit(cache=True, parallel=True)(sources.count_completion)
_partial_sum_completion = njit(cache=True, parallel=True)(
    sources.partial_sum_completion
)
_coverage_completion = njit(cache=True, parallel=True)(sources.coverage_completion)
_group_completion = njit(cache=True, parallel=True)(sources.group_completion)


def _f64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float64)


def _i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


def link_recurrence(
    compute_sorted: np.ndarray, transfer_sorted: np.ndarray
) -> np.ndarray:
    compute_sorted = _f64(compute_sorted)
    arrival_sorted = np.empty_like(compute_sorted)
    _link_recurrence(compute_sorted, _f64(transfer_sorted), arrival_sorted)
    return arrival_sorted


def count_completion(positions: np.ndarray, required: np.ndarray) -> np.ndarray:
    positions = _i64(positions)
    out = np.empty(positions.shape[0], dtype=np.int64)
    _count_completion(positions, _i64(required), out)
    return out


def partial_sum_completion(
    positions: np.ndarray, eligible: np.ndarray, needed: int
) -> np.ndarray:
    positions = _i64(positions)
    out = np.empty(positions.shape[0], dtype=np.int64)
    _partial_sum_completion(positions, _i64(eligible), int(needed), out)
    return out


def coverage_completion(
    positions: np.ndarray, owners_sorted: np.ndarray, segment_starts: np.ndarray
) -> np.ndarray:
    positions = _i64(positions)
    out = np.empty(positions.shape[0], dtype=np.int64)
    _coverage_completion(positions, _i64(owners_sorted), _i64(segment_starts), out)
    return out


def group_completion(
    positions: np.ndarray, members: np.ndarray, group_starts: np.ndarray
) -> np.ndarray:
    positions = _i64(positions)
    out = np.empty(positions.shape[0], dtype=np.int64)
    _group_completion(positions, _i64(members), _i64(group_starts), out)
    return out
