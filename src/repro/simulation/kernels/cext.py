"""The C kernel backend: build-on-first-use native kernels via ctypes.

A line-by-line translation of :mod:`repro.simulation.kernels.sources` to C,
compiled at first use with the system C compiler (``$CC``, else ``cc``,
else ``gcc``) into a shared library cached under a source-hash-keyed
filename, and called through :mod:`ctypes`. This gives environments
*without* numba (no conda, no pip access) the same order-of-magnitude
kernel speedups from nothing but a C toolchain — it is the backend
``benchmarks/bench_compiled.py`` exercises on bare CI runners.

Availability is probed, never assumed: any failure (no compiler, compile
error, unloadable library) surfaces as
:class:`~repro.exceptions.ConfigurationError` from :func:`load_suite`, and
the package dispatcher reports the backend unavailable; ``kernels="auto"``
never lands here, only an explicit ``kernels="cext"`` does.

Bit-identity: the float kernel (``link_recurrence``) performs the exact
per-row op order of the NumPy reference — compare-select then add, one pair
per column — so IEEE-754 semantics make the doubles identical; the integer
kernels return selections. ctypes releases the GIL during calls, so thread
executors overlap native kernel work.

The library cache directory is ``$REPRO_KERNELS_CACHE`` when set, else
``<tempdir>/repro-kernels``; rebuilds are atomic (written to a unique tmp
name, then ``os.replace``), so concurrent first builds race benignly.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Dict

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["load_suite", "library_path"]

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

/* a_k = max(c_k, a_{k-1}) + t_k, walked per row in the reference op order */
void link_recurrence(const double *compute, const double *transfer,
                     double *arrival, int64_t rows, int64_t cols) {
    for (int64_t i = 0; i < rows; ++i) {
        const double *c = compute + i * cols;
        const double *t = transfer + i * cols;
        double *a = arrival + i * cols;
        double free_at = 0.0;
        for (int64_t k = 0; k < cols; ++k) {
            double start = c[k] > free_at ? c[k] : free_at;
            free_at = start + t[k];
            a[k] = free_at;
        }
    }
}

/* max arrival rank over the required columns, per row */
void count_completion(const int64_t *positions, int64_t rows, int64_t n_active,
                      const int64_t *required, int64_t k, int64_t *out) {
    for (int64_t i = 0; i < rows; ++i) {
        const int64_t *p = positions + i * n_active;
        int64_t worst = -1;
        for (int64_t j = 0; j < k; ++j) {
            int64_t rank = p[required[j]];
            if (rank > worst) worst = rank;
        }
        out[i] = worst;
    }
}

/* needed-th smallest arrival rank over the eligible columns, per row;
 * rank-marking selection, O(k) cleanup per row. Returns 1 on alloc failure. */
int partial_sum_completion(const int64_t *positions, int64_t rows,
                           int64_t n_active, const int64_t *eligible,
                           int64_t k, int64_t needed, int64_t *out) {
    unsigned char *mark = (unsigned char *)calloc((size_t)n_active, 1);
    if (mark == NULL) return 1;
    for (int64_t i = 0; i < rows; ++i) {
        const int64_t *p = positions + i * n_active;
        for (int64_t j = 0; j < k; ++j) mark[p[eligible[j]]] = 1;
        int64_t seen = 0;
        int64_t found = n_active;
        for (int64_t rank = 0; rank < n_active; ++rank) {
            if (mark[rank]) {
                ++seen;
                if (seen == needed) { found = rank; break; }
            }
        }
        out[i] = found;
        for (int64_t j = 0; j < k; ++j) mark[p[eligible[j]]] = 0;
    }
    free(mark);
    return 0;
}

/* max over segments of each segment's min arrival rank, per row */
void coverage_completion(const int64_t *positions, int64_t rows,
                         int64_t n_active, const int64_t *owners_sorted,
                         int64_t num_pairs, const int64_t *segment_starts,
                         int64_t num_segments, int64_t *out) {
    for (int64_t i = 0; i < rows; ++i) {
        const int64_t *p = positions + i * n_active;
        int64_t covered_at = -1;
        for (int64_t s = 0; s < num_segments; ++s) {
            int64_t start = segment_starts[s];
            int64_t end = (s == num_segments - 1) ? num_pairs
                                                  : segment_starts[s + 1];
            int64_t earliest = p[owners_sorted[start]];
            for (int64_t q = start + 1; q < end; ++q) {
                int64_t rank = p[owners_sorted[q]];
                if (rank < earliest) earliest = rank;
            }
            if (earliest > covered_at) covered_at = earliest;
        }
        out[i] = covered_at;
    }
}

/* min over groups of each group's max member arrival rank, per row */
void group_completion(const int64_t *positions, int64_t rows, int64_t n_active,
                      const int64_t *members, int64_t num_members,
                      const int64_t *group_starts, int64_t num_groups,
                      int64_t *out) {
    for (int64_t i = 0; i < rows; ++i) {
        const int64_t *p = positions + i * n_active;
        int64_t best = n_active;
        for (int64_t g = 0; g < num_groups; ++g) {
            int64_t start = group_starts[g];
            int64_t end = (g == num_groups - 1) ? num_members
                                                : group_starts[g + 1];
            int64_t last = p[members[start]];
            for (int64_t q = start + 1; q < end; ++q) {
                int64_t rank = p[members[q]];
                if (rank > last) last = rank;
            }
            if (last < best) best = last;
        }
        out[i] = best;
    }
}
"""

_F64 = ctypes.POINTER(ctypes.c_double)
_I64 = ctypes.POINTER(ctypes.c_int64)

_library: ctypes.CDLL | None = None


def _cache_dir() -> Path:
    configured = os.environ.get("REPRO_KERNELS_CACHE")
    if configured:
        return Path(configured)
    return Path(tempfile.gettempdir()) / "repro-kernels"


def library_path() -> Path:
    """Where the compiled kernel library lives (keyed by the C source hash)."""
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    return _cache_dir() / f"repro_kernels_{digest}.so"


def _compile_library(target: Path) -> None:
    compiler = (
        os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    )
    if compiler is None:
        raise ConfigurationError(
            "the cext kernel backend needs a C compiler (cc/gcc or $CC) "
            "on PATH; install one or use kernels='numpy'"
        )
    target.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=target.parent) as build_dir:
        source = Path(build_dir) / "repro_kernels.c"
        source.write_text(_C_SOURCE, encoding="utf-8")
        built = Path(build_dir) / "repro_kernels.so"
        completed = subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", "-o", str(built), str(source)],
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            raise ConfigurationError(
                f"compiling the cext kernels with {compiler!r} failed "
                f"(exit {completed.returncode}): {completed.stderr.strip()}"
            )
        # Atomic publish: concurrent first builds race benignly.
        os.replace(built, target)


def _load_library() -> ctypes.CDLL:
    global _library
    if _library is not None:
        return _library
    target = library_path()
    if not target.exists():
        _compile_library(target)
    try:
        library = ctypes.CDLL(str(target))
    except OSError as error:
        raise ConfigurationError(
            f"loading the compiled kernel library {target} failed: {error}"
        ) from error
    library.link_recurrence.argtypes = [
        _F64, _F64, _F64, ctypes.c_int64, ctypes.c_int64,
    ]
    library.link_recurrence.restype = None
    library.count_completion.argtypes = [
        _I64, ctypes.c_int64, ctypes.c_int64, _I64, ctypes.c_int64, _I64,
    ]
    library.count_completion.restype = None
    library.partial_sum_completion.argtypes = [
        _I64, ctypes.c_int64, ctypes.c_int64, _I64,
        ctypes.c_int64, ctypes.c_int64, _I64,
    ]
    library.partial_sum_completion.restype = ctypes.c_int
    library.coverage_completion.argtypes = [
        _I64, ctypes.c_int64, ctypes.c_int64, _I64, ctypes.c_int64,
        _I64, ctypes.c_int64, _I64,
    ]
    library.coverage_completion.restype = None
    library.group_completion.argtypes = [
        _I64, ctypes.c_int64, ctypes.c_int64, _I64, ctypes.c_int64,
        _I64, ctypes.c_int64, _I64,
    ]
    library.group_completion.restype = None
    _library = library
    return library


def _f64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float64)


def _i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


def _f64_ptr(array: np.ndarray):
    return array.ctypes.data_as(_F64)


def _i64_ptr(array: np.ndarray):
    return array.ctypes.data_as(_I64)


def load_suite() -> Dict[str, Callable]:
    """Build/load the library and return the kernel callables by name.

    Raises :class:`~repro.exceptions.ConfigurationError` when the backend
    cannot be provided (no compiler, build or load failure) — the signal
    the package dispatcher turns into "cext unavailable".
    """
    library = _load_library()

    def link_recurrence(
        compute_sorted: np.ndarray, transfer_sorted: np.ndarray
    ) -> np.ndarray:
        compute_sorted = _f64(compute_sorted)
        transfer_sorted = _f64(transfer_sorted)
        arrival_sorted = np.empty_like(compute_sorted)
        rows, cols = compute_sorted.shape
        library.link_recurrence(
            _f64_ptr(compute_sorted),
            _f64_ptr(transfer_sorted),
            _f64_ptr(arrival_sorted),
            rows,
            cols,
        )
        return arrival_sorted

    def count_completion(
        positions: np.ndarray, required: np.ndarray
    ) -> np.ndarray:
        positions = _i64(positions)
        required = _i64(required)
        rows, n_active = positions.shape
        out = np.empty(rows, dtype=np.int64)
        library.count_completion(
            _i64_ptr(positions), rows, n_active,
            _i64_ptr(required), required.size, _i64_ptr(out),
        )
        return out

    def partial_sum_completion(
        positions: np.ndarray, eligible: np.ndarray, needed: int
    ) -> np.ndarray:
        positions = _i64(positions)
        eligible = _i64(eligible)
        rows, n_active = positions.shape
        out = np.empty(rows, dtype=np.int64)
        status = library.partial_sum_completion(
            _i64_ptr(positions), rows, n_active,
            _i64_ptr(eligible), eligible.size, int(needed), _i64_ptr(out),
        )
        if status != 0:
            raise MemoryError(
                "the cext partial-sum kernel could not allocate its "
                f"{n_active}-byte rank-mark scratch buffer"
            )
        return out

    def coverage_completion(
        positions: np.ndarray,
        owners_sorted: np.ndarray,
        segment_starts: np.ndarray,
    ) -> np.ndarray:
        positions = _i64(positions)
        owners_sorted = _i64(owners_sorted)
        segment_starts = _i64(segment_starts)
        rows, n_active = positions.shape
        out = np.empty(rows, dtype=np.int64)
        library.coverage_completion(
            _i64_ptr(positions), rows, n_active,
            _i64_ptr(owners_sorted), owners_sorted.size,
            _i64_ptr(segment_starts), segment_starts.size, _i64_ptr(out),
        )
        return out

    def group_completion(
        positions: np.ndarray, members: np.ndarray, group_starts: np.ndarray
    ) -> np.ndarray:
        positions = _i64(positions)
        members = _i64(members)
        group_starts = _i64(group_starts)
        rows, n_active = positions.shape
        out = np.empty(rows, dtype=np.int64)
        library.group_completion(
            _i64_ptr(positions), rows, n_active,
            _i64_ptr(members), members.size,
            _i64_ptr(group_starts), group_starts.size, _i64_ptr(out),
        )
        return out

    return {
        "link_recurrence": link_recurrence,
        "count_completion": count_completion,
        "partial_sum_completion": partial_sum_completion,
        "coverage_completion": coverage_completion,
        "group_completion": group_completion,
    }
