"""Vectorized batch timing engine.

:func:`simulate_job_vectorized` produces the *same* :class:`JobResult` as the
per-iteration loop engine (:func:`repro.simulation.job.simulate_job`) but
simulates all iterations of a job in NumPy: one ``(iterations, workers)``
matrix of computation-time draws, a vectorized serialized-master-link
recurrence, and per-scheme completion kernels that locate each iteration's
finishing arrival without instantiating an aggregator. On cluster-scale jobs
(thousands of workers x thousands of iterations) this is one to two orders of
magnitude faster than the loop.

The RNG draw-order contract
---------------------------
The loop engine consumes the job's random stream in this order:

1. per iteration, one computation-time draw per *active* worker (load > 0),
   in worker-index order;
2. then, still inside the iteration, one transfer-time draw per active worker
   in computation-completion order (stable sort).

The vectorized engine is bit-identical to the loop at a fixed seed because it
replays exactly that consumption order:

* Computation times are drawn through
  :meth:`~repro.stragglers.base.DelayModel.sample_grid`, whose contract is a
  row-major (iteration-major, worker-minor) fill that consumes the stream
  like the scalar loop. NumPy's broadcast samplers fill C-order element by
  element, so a single batched call preserves the stream.
* A **deterministic** communication model (``is_deterministic`` true, e.g.
  jitter-free :class:`~repro.stragglers.communication.LinearCommunicationModel`
  or :class:`~repro.stragglers.communication.ZeroCommunicationModel`) draws
  nothing in either engine, so the whole compute matrix can be drawn in one
  call: the stream holds nothing but compute draws, iteration-major, in both
  engines.
* A **stochastic** communication model interleaves transfer draws between
  iterations, so the engine switches to a per-iteration draw schedule (one
  ``sample_grid`` row, then one batched transfer draw in completion order)
  that reproduces the interleaving; everything downstream of the draws
  (arrival recurrence, completion search, metrics) stays batched.
* The serialized-link recurrence and all completion kernels are pure
  computation: they consume no randomness and reproduce the loop's
  floating-point operation order (``max`` then ``+``, metric reductions over
  identically ordered gathers), so the resulting summaries match byte for
  byte — the property the equivalence suite pins down.

Completion kernels exist for every built-in aggregator: fixed worker set
(uncoded, load-balanced), arrival count (ignore-stragglers), batch
coupon-collector coverage (BCC), unit coverage (randomized,
generalized-BCC), replication-group completion (fractional repetition), and
a prefix-decodability walk replicating :class:`CodedAggregator`'s
``check_every`` cadence (cyclic repetition, Reed-Solomon). Schemes with a
custom aggregator fall back to a scalar completion scan that feeds the
plan's own aggregator — draws and arrival times stay vectorized, so the
fallback is still far faster than the loop engine.

Trial batching
--------------
:func:`simulate_job_batch` adds a third axis: it simulates ``T`` independent
Monte-Carlo *trials* of the same job in one engine entry. The plan is
resolved once, one ``(trials x iterations x workers)`` tensor of computation
draws is produced through :meth:`~repro.stragglers.base.DelayModel.sample_trials`,
and the arrival recurrence + completion kernels run over the stacked
``(trials * iterations, workers)`` row matrix — rows are independent, so the
per-row machinery of :func:`_complete_batch` applies unchanged. The **RNG
contract** extends the solo engine's:

* ``seeds[t]`` drives trial ``t`` and only trial ``t``. When a
  :class:`~repro.schemes.base.Scheme` (not a plan) is passed, the plan is
  resolved from ``seeds[0]``'s generator first — exactly where a solo run at
  ``seeds[0]`` would resolve it — and then *shared* by every trial.
* Consequently trial ``0`` is bit-identical to
  ``simulate_job_vectorized(scheme, ..., rng=seeds[0])`` and every trial
  ``t`` is bit-identical to ``simulate_job_vectorized(plan, ...,
  rng=seeds[t])`` with the shared plan passed in (plan resolution consumes
  no randomness then). For schemes whose placement is deterministic the two
  statements coincide: every trial matches a solo *scheme* run at its seed.

Memory stays bounded: trials are processed in chunks so the stacked row
matrices never exceed ``_BATCH_CELL_BUDGET`` cells, whatever the trial
count.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.cluster.dynamic import DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.coding.fractional import FractionalRepetitionCode
from repro.coding.linear_code import LinearGradientCode
from repro.exceptions import ConfigurationError, SimulationError
from repro.schemes.approximate import PartialSumAggregator
from repro.schemes.base import (
    BatchCoverageAggregator,
    CodedAggregator,
    CountAggregator,
    ExecutionPlan,
    Scheme,
    UnitCoverageAggregator,
)
from repro.simulation.iteration import IterationOutcome, incomplete_iteration_error
from repro.simulation.job import JobResult, _resolve_plan
from repro.simulation.kernels import KernelSuite, get_suite
from repro.stragglers.base import DelayModel
from repro.stragglers.dynamics import UnavailableDelay, memoize_by_id
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "ENGINES",
    "resolve_engine",
    "simulate_job_batch",
    "simulate_job_vectorized",
    "validate_engine",
]

#: Recognised engine names for the ``engine=`` knobs across the stack.
ENGINES = ("loop", "vectorized", "auto")

#: ``auto`` picks the vectorized engine once the job is at least this many
#: (trial, iteration, worker) cells; below it the loop's lower setup cost
#: wins. Calibrated against ``benchmarks/bench_kernels.py`` engine-crossover
#: measurements (the loop only wins below ~8-16 cells — the old 256 predated
#: trial batching and left small trial-batched cells on the slow path). The
#: two engines produce identical results either way, so the constant only
#: moves the speed crossover, never a result.
_AUTO_THRESHOLD = 16

#: A completion kernel maps (positions, arrival order) matrices to the
#: 0-based arrival position that completes each iteration; the sentinel
#: value ``n_active`` means "never completes".
_Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Trial-batched runs chunk the trial axis so the stacked
#: ``(trials * iterations, workers)`` row matrices stay below this many
#: cells (~128 MiB of float64 per matrix at the default): a sweep cell with
#: thousands of trials streams through in bounded memory. Chunk boundaries
#: fall between whole trials and rows are independent, so chunking cannot
#: change any result.
_BATCH_CELL_BUDGET = 1 << 24


def validate_engine(engine: str) -> str:
    """Validate an ``engine`` knob value, returning it unchanged.

    The single source of the unknown-engine error for every knob
    (``simulate_job``, ``TimingSimBackend``, the CLI's argparse choices).
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {list(ENGINES)}"
        )
    return engine


def resolve_engine(
    engine: str, *, num_iterations: int, num_workers: int, num_trials: int = 1
) -> str:
    """Resolve an ``engine`` knob value to ``"loop"`` or ``"vectorized"``.

    ``num_trials`` sizes the cutover for trial-batched execution: a batched
    cell amortises the vectorized engine's setup over every trial, so
    ``auto`` decides on the full ``trials x iterations x workers`` volume,
    not the solo job size.
    """
    validate_engine(engine)
    if engine == "auto":
        if num_iterations * num_workers * max(int(num_trials), 1) >= _AUTO_THRESHOLD:
            return "vectorized"
        return "loop"
    return engine


def simulate_job_vectorized(
    scheme_or_plan: Scheme | ExecutionPlan,
    cluster: ClusterSpec,
    num_units: int,
    num_iterations: int,
    rng: RandomState = None,
    *,
    unit_size: int = 1,
    serialize_master_link: bool = True,
    kernels: str = "auto",
) -> JobResult:
    """Batch-simulate ``num_iterations`` timing-only iterations in NumPy.

    Drop-in replacement for :func:`repro.simulation.job.simulate_job` with
    ``engine="loop"``: same signature, same random-stream consumption, and a
    bit-identical :class:`JobResult` at a fixed seed (see the module
    docstring for the draw-order contract the guarantee rests on).
    ``kernels`` selects the hot-loop backend (see
    :mod:`repro.simulation.kernels`); every backend is bit-identical, so the
    knob only changes speed.
    """
    check_positive_int(num_iterations, "num_iterations")
    suite = get_suite(kernels)
    generator = as_generator(rng)
    plan = _resolve_plan(scheme_or_plan, num_units, cluster.num_workers, generator)
    if isinstance(cluster, DynamicClusterSpec):
        outcomes = _simulate_dynamic_batch(
            plan,
            cluster,
            generator,
            num_iterations=num_iterations,
            unit_size=unit_size,
            serialize_master_link=serialize_master_link,
            suite=suite,
        )
    else:
        outcomes = _simulate_plan_batch(
            plan,
            cluster,
            generator,
            num_iterations=num_iterations,
            unit_size=unit_size,
            serialize_master_link=serialize_master_link,
            suite=suite,
        )
    result = JobResult(scheme_name=plan.scheme_name)
    result.iterations.extend(outcomes)
    return result


def simulate_job_batch(
    scheme_or_plan: Scheme | ExecutionPlan,
    cluster: ClusterSpec,
    num_units: int,
    num_iterations: int,
    seeds: Sequence[RandomState],
    *,
    unit_size: int = 1,
    serialize_master_link: bool = True,
    kernels: str = "auto",
) -> List[JobResult]:
    """Simulate ``len(seeds)`` independent Monte-Carlo trials of one job.

    The trial-batched engine entry point (see the module docstring's "Trial
    batching" section): the plan is resolved **once** — from ``seeds[0]``'s
    generator, exactly where a solo run at ``seeds[0]`` would resolve it —
    and shared by every trial; each trial ``t`` then consumes its own
    ``seeds[t]`` stream precisely like :func:`simulate_job_vectorized` with
    the shared plan passed in, which makes every returned
    :class:`~repro.simulation.job.JobResult` bit-identical to the
    corresponding solo run. The arrival recurrence and completion kernels
    run once over the stacked ``(trials * iterations, workers)`` rows (in
    memory-bounded trial chunks), so per-trial Python and planning overhead
    — the cost that dominates short Monte-Carlo replications — is paid once
    per *cell* instead of once per trial.

    Note the shared-plan semantics: a scheme with a *random* placement
    (e.g. BCC) freezes one placement for all trials here, whereas a loop of
    solo scheme runs would re-draw it per trial. Callers that need to
    average over placements (not just over completion-time draws) should
    keep per-trial runs; :func:`repro.api.sweep.run_sweep`'s ``"auto"``
    trial-batching mode makes exactly that distinction.

    Parameters
    ----------
    seeds:
        One seed-like value (int, ``SeedSequence``, ``Generator``) per
        trial. An empty sequence is a configuration error.

    Raises
    ------
    SimulationError
        If *any* trial contains an iteration that cannot complete; the whole
        batch fails, like the failing solo run would.
    """
    check_positive_int(num_iterations, "num_iterations")
    if len(seeds) == 0:
        raise ConfigurationError("simulate_job_batch needs at least one trial seed")
    suite = get_suite(kernels)
    generators = [as_generator(seed) for seed in seeds]
    plan = _resolve_plan(
        scheme_or_plan, num_units, cluster.num_workers, generators[0]
    )
    active, active_loads, message_sizes, active_sizes = _active_arrays(
        plan, cluster, unit_size
    )
    dynamic = isinstance(cluster, DynamicClusterSpec)
    if not dynamic:
        models = cluster.delay_models()
        active_models = [models[int(worker)] for worker in active]
        communication = cluster.communication
    n_active = int(active.size)

    # Chunk the trial axis so the stacked row matrices stay memory-bounded;
    # chunk boundaries fall between whole trials and every row is
    # independent, so the chunking is invisible in the results.
    trials_per_chunk = max(1, _BATCH_CELL_BUDGET // max(num_iterations * n_active, 1))
    results: List[JobResult] = []
    for start in range(0, len(generators), trials_per_chunk):
        chunk = generators[start : start + trials_per_chunk]
        if not dynamic and communication.is_deterministic:
            # The 3-D fast path: one tensor through sample_trials (trial-
            # major, so the C-order reshape keeps each trial's rows intact).
            compute = type(active_models[0]).sample_trials(
                active_models, active_loads, chunk, num_iterations
            ).reshape(len(chunk) * num_iterations, n_active)
            transfer = np.broadcast_to(
                communication.sample_batch(active_sizes), compute.shape
            )
        else:
            compute = np.empty((len(chunk) * num_iterations, n_active), dtype=float)
            transfer = np.empty_like(compute)
            for t, generator in enumerate(chunk):
                rows = slice(t * num_iterations, (t + 1) * num_iterations)
                if dynamic:
                    compute[rows], transfer[rows] = _draw_dynamic_matrices(
                        cluster,
                        plan,
                        active,
                        active_loads,
                        active_sizes,
                        generator,
                        num_iterations,
                    )
                else:
                    compute[rows], transfer[rows] = _draw_stationary_matrices(
                        active_models,
                        active_loads,
                        active_sizes,
                        communication,
                        generator,
                        num_iterations,
                    )
        outcomes = _complete_batch(
            plan, active, message_sizes, compute, transfer, serialize_master_link,
            suite,
        )
        for t in range(len(chunk)):
            result = JobResult(scheme_name=plan.scheme_name)
            result.iterations.extend(
                outcomes[t * num_iterations : (t + 1) * num_iterations]
            )
            results.append(result)
    return results


# --------------------------------------------------------------------------- #
# Engine core
# --------------------------------------------------------------------------- #
def _active_arrays(plan: ExecutionPlan, cluster, unit_size: int):
    """Per-plan invariants shared by every iteration (and every trial).

    Returns ``(active, active_loads, message_sizes, active_sizes)`` where
    ``active`` indexes the workers with a positive example load; raises when
    the plan/cluster sizes disagree or no worker computes anything.
    """
    if cluster.num_workers != plan.num_workers:
        raise SimulationError(
            f"the plan has {plan.num_workers} workers but the cluster has "
            f"{cluster.num_workers}"
        )
    check_positive_int(unit_size, "unit_size")
    loads_examples = plan.unit_assignment.loads * unit_size
    active = np.flatnonzero(loads_examples > 0)
    if active.size == 0:
        raise _infeasible(plan)
    message_sizes = np.asarray(plan.message_sizes, dtype=float)
    return active, loads_examples[active], message_sizes, message_sizes[active]


def _draw_stationary_matrices(
    active_models: List[DelayModel],
    active_loads: np.ndarray,
    active_sizes: np.ndarray,
    communication,
    generator: np.random.Generator,
    num_iterations: int,
) -> tuple:
    """One trial's ``(num_iterations, n_active)`` compute/transfer matrices.

    The single shared implementation of the stationary draw schedule (see
    the module docstring): one batched grid draw under a deterministic
    communication model, the per-iteration compute/transfer interleave under
    a stochastic one.
    """
    if communication.is_deterministic:
        compute = _draw_compute_grid(
            active_models, active_loads, generator, num_iterations
        )
        transfer = np.broadcast_to(
            communication.sample_batch(active_sizes), compute.shape
        )
    else:
        # Stochastic transfers interleave with compute draws iteration by
        # iteration; reproduce the loop's schedule (see module docstring).
        n_active = int(active_loads.size)
        compute = np.empty((num_iterations, n_active), dtype=float)
        transfer = np.empty((num_iterations, n_active), dtype=float)
        for i in range(num_iterations):
            row = _draw_compute_grid(active_models, active_loads, generator, 1)[0]
            compute[i] = row
            order = np.argsort(row, kind="stable")
            transfer[i, order] = communication.sample_batch(
                active_sizes[order], generator
            )
    return compute, transfer


def _draw_dynamic_matrices(
    cluster: DynamicClusterSpec,
    plan: ExecutionPlan,
    active: np.ndarray,
    active_loads: np.ndarray,
    active_sizes: np.ndarray,
    generator: np.random.Generator,
    num_iterations: int,
) -> tuple:
    """One trial's compute/transfer matrices on a dynamic cluster.

    The draw schedule mirrors the loop engine's exactly: the timeline is
    materialised first (one draw when the spec derives its dynamics seed
    from the job stream), then each iteration draws compute times for its
    *available* workers in worker order — vacant slots consume nothing —
    followed, for stochastic communication models, by that iteration's
    transfer draws in completion order over the workers that finished.
    """
    timeline = cluster.materialize(num_iterations, generator)
    communication = cluster.communication
    n_active = int(active.size)

    if n_active == plan.num_workers:
        model_rows = timeline.models  # every worker active: no reshaping
    else:
        model_rows = [
            [timeline.models[t][int(worker)] for worker in active]
            for t in range(num_iterations)
        ]
    if communication.is_deterministic:
        compute = _draw_timeline_compute(model_rows, active_loads, generator)
        transfer = np.broadcast_to(
            communication.sample_batch(active_sizes), compute.shape
        )
    else:
        # Stochastic transfers interleave with compute draws iteration by
        # iteration; vacant slots (infinite compute) draw no transfer, like
        # the loop engine's finite-compute check.
        compute = np.empty((num_iterations, n_active), dtype=float)
        transfer = np.zeros((num_iterations, n_active), dtype=float)
        is_down = memoize_by_id(_is_vacant)
        for i in range(num_iterations):
            row = _draw_timeline_row(
                model_rows[i], active_loads, generator, is_down
            )
            compute[i] = row
            order = np.argsort(row, kind="stable")
            finished = order[np.isfinite(row[order])]
            if finished.size:
                transfer[i, finished] = communication.sample_batch(
                    active_sizes[finished], generator
                )
    return compute, transfer


def _simulate_plan_batch(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    rng: RandomState,
    *,
    num_iterations: int,
    unit_size: int,
    serialize_master_link: bool,
    suite: KernelSuite,
) -> List[IterationOutcome]:
    generator = as_generator(rng)
    active, active_loads, message_sizes, active_sizes = _active_arrays(
        plan, cluster, unit_size
    )
    models = cluster.delay_models()
    active_models = [models[int(worker)] for worker in active]
    compute, transfer = _draw_stationary_matrices(
        active_models,
        active_loads,
        active_sizes,
        cluster.communication,
        generator,
        num_iterations,
    )
    return _complete_batch(
        plan, active, message_sizes, compute, transfer, serialize_master_link, suite
    )


def _simulate_dynamic_batch(
    plan: ExecutionPlan,
    cluster: DynamicClusterSpec,
    rng: RandomState,
    *,
    num_iterations: int,
    unit_size: int,
    serialize_master_link: bool,
    suite: KernelSuite,
) -> List[IterationOutcome]:
    """Batch-simulate a job on a :class:`DynamicClusterSpec`.

    Everything downstream of the draws (arrival recurrence, completion
    kernels, metric assembly) is the same batched code the stationary path
    runs, so the bit-identity guarantee carries over; see
    :func:`_draw_dynamic_matrices` for the draw schedule.
    """
    generator = as_generator(rng)
    active, active_loads, message_sizes, active_sizes = _active_arrays(
        plan, cluster, unit_size
    )
    compute, transfer = _draw_dynamic_matrices(
        cluster, plan, active, active_loads, active_sizes, generator, num_iterations
    )
    return _complete_batch(
        plan, active, message_sizes, compute, transfer, serialize_master_link, suite
    )


def _complete_batch(
    plan: ExecutionPlan,
    active: np.ndarray,
    message_sizes: np.ndarray,
    compute: np.ndarray,
    transfer: np.ndarray,
    serialize_master_link: bool,
    suite: KernelSuite,
) -> List[IterationOutcome]:
    """Completion search + metric assembly over drawn timing matrices.

    Shared tail of the stationary and dynamic paths. ``compute`` may hold
    ``inf`` for workers that are vacant in an iteration (dynamic clusters):
    infinite entries sort after every finite arrival, the serialized-link
    recurrence propagates them unchanged, and an iteration whose completing
    arrival is infinite is infeasible — exactly the loop engine's behaviour.
    The arrival recurrence and per-scheme completion searches run on
    ``suite``'s backend (:mod:`repro.simulation.kernels`); every backend is
    bit-identical, so the choice is invisible in the results.
    """
    num_iterations, n_active = compute.shape

    # 2. Arrival times at the master: the link recurrence
    #    a_k = max(c_k, a_{k-1}) + t_k over completion-sorted columns. Every
    #    backend evaluates it in the loop engine's exact per-row float-op
    #    order (a cumsum/running-max rewrite would be algebraically equal
    #    but rounded differently).
    if serialize_master_link:
        order = np.argsort(compute, axis=1, kind="stable")
        compute_sorted = np.take_along_axis(compute, order, axis=1)
        transfer_sorted = np.take_along_axis(transfer, order, axis=1)
        arrival_sorted = suite.link_recurrence(compute_sorted, transfer_sorted)
        arrivals = np.empty_like(arrival_sorted)
        np.put_along_axis(arrivals, order, arrival_sorted, axis=1)
    else:
        arrivals = compute + transfer

    # 3. Per-iteration completion position (rank of the finishing arrival).
    arrival_order = np.argsort(arrivals, axis=1, kind="stable")
    positions = np.empty_like(arrival_order)
    np.put_along_axis(
        positions,
        arrival_order,
        np.broadcast_to(np.arange(n_active), arrival_order.shape),
        axis=1,
    )
    kernel = _build_kernel(plan, active, suite)
    if kernel is None:
        completing = _fallback_positions(plan, active, arrival_order)
    else:
        completing = kernel(positions, arrival_order)
    if np.any(completing >= n_active):
        raise _infeasible(plan)

    # 4. Assemble outcomes. Every batched reduction below is order-exact
    #    (max is a selection, counting sums are integer), so the metrics
    #    carry the same floats as the loop engine's expressions; the
    #    communication load is reduced per row over the identically ordered
    #    gather the loop engine sums.
    rows = np.arange(num_iterations)
    arrival_ranked = np.take_along_axis(arrivals, arrival_order, axis=1)
    compute_ranked = np.take_along_axis(compute, arrival_order, axis=1)
    total_times = arrival_ranked[rows, completing]
    if not np.all(np.isfinite(total_times)):
        # The completing arrival is a vacant slot's: the aggregator can only
        # finish on workers that left/were preempted, i.e. coverage is lost
        # for that iteration (dynamic clusters only). Report the first
        # failing iteration's vacancy count, like the loop engine would.
        first_bad = int(np.argmin(np.isfinite(total_times)))
        raise _infeasible(plan, int(np.sum(~np.isfinite(compute[first_bad]))))
    computation_times = np.maximum.accumulate(compute_ranked, axis=1)[rows, completing]
    workers_finished = np.sum(compute <= total_times[:, None], axis=1)
    heard_matrix = active[arrival_order]

    outcomes: List[IterationOutcome] = []
    for i in range(num_iterations):
        heard = heard_matrix[i, : int(completing[i]) + 1]
        total_time = float(total_times[i])
        computation_time = float(computation_times[i])
        outcomes.append(
            IterationOutcome(
                total_time=total_time,
                computation_time=computation_time,
                communication_time=max(total_time - computation_time, 0.0),
                workers_heard=heard.size,
                communication_load=float(np.sum(message_sizes[heard])),
                workers_finished_compute=int(workers_finished[i]),
                heard_workers=tuple(heard.tolist()),
            )
        )
    return outcomes


def _is_vacant(model: DelayModel) -> bool:
    return isinstance(model, UnavailableDelay)


def _draw_timeline_row(
    row: Sequence[DelayModel],
    loads: np.ndarray,
    rng: RandomState,
    is_down: Optional[Callable[[DelayModel], bool]] = None,
) -> np.ndarray:
    """One iteration's compute draws over a time-varying model row.

    Vacant slots (:class:`~repro.stragglers.dynamics.UnavailableDelay`) get
    ``inf`` without touching the generator; the available workers draw in
    worker-index order through their most specific :meth:`sample_grid` —
    the loop engine's exact consumption order for that iteration.
    ``is_down`` (a :func:`~repro.stragglers.dynamics.memoize_by_id`-wrapped
    vacancy check shared across a job's rows) avoids re-classifying the few
    distinct model instances a timeline repeats.
    """
    if is_down is None:
        is_down = _is_vacant
    up = [j for j, model in enumerate(row) if not is_down(model)]
    out = np.full(len(row), np.inf, dtype=float)
    if up:
        models = [row[j] for j in up]
        up_loads = [int(loads[j]) for j in up]
        out[up] = type(models[0]).sample_grid(models, up_loads, rng, 1)[0]
    return out


def _draw_timeline_compute(
    model_rows: List[List[DelayModel]], loads: np.ndarray, rng: RandomState
) -> np.ndarray:
    """All iterations' compute draws over a time-varying model grid.

    Contiguous runs of iterations whose rows are *all native* under the run's
    leading model class are drawn with one :meth:`sample_timeline` call (for
    shift-exponential timelines — the Markov/drift regimes — that is a single
    batched NumPy draw); rows containing vacant slots or mixed classes fall
    back to :func:`_draw_timeline_row`. Either way the stream is consumed
    iteration-major, worker-minor, matching the loop engine.
    """
    generator = as_generator(rng)
    num_rows = len(model_rows)
    out = np.empty((num_rows, len(loads)), dtype=float)
    # Timelines repeat few distinct model objects, so the per-cell
    # native-sampler and vacancy checks are memoized on object identity
    # (one memo per lead class) — block detection costs O(cells) dict hits
    # instead of O(cells) abc instance checks.
    native_memos: dict = {}
    is_down = memoize_by_id(_is_vacant)

    def row_native(lead: type, row: Sequence[DelayModel]) -> bool:
        memo = native_memos.get(lead)
        if memo is None:
            memo = memoize_by_id(
                lambda model: isinstance(model, lead)
                and type(model).sample is lead.sample
            )
            native_memos[lead] = memo
        return all(memo(model) for model in row)

    start = 0
    while start < num_rows:
        lead = type(model_rows[start][0])
        end = start
        while end < num_rows and row_native(lead, model_rows[end]):
            end += 1
        if end > start:
            out[start:end] = lead.sample_timeline(
                model_rows[start:end], loads, generator
            )
            start = end
        else:
            out[start] = _draw_timeline_row(
                model_rows[start], loads, generator, is_down
            )
            start += 1
    return out


def _infeasible(plan: ExecutionPlan, vacant_workers: int = 0) -> SimulationError:
    return incomplete_iteration_error(plan.scheme_name, vacant_workers)


def _draw_compute_grid(
    models: Sequence, loads: np.ndarray, rng: RandomState, num_draws: int
) -> np.ndarray:
    """Dispatch the grid draw to the models' most specific ``sample_grid``."""
    return type(models[0]).sample_grid(models, loads, rng, num_draws)


# --------------------------------------------------------------------------- #
# Completion kernels
# --------------------------------------------------------------------------- #
def _build_kernel(
    plan: ExecutionPlan, active: np.ndarray, suite: KernelSuite
) -> Optional[_Kernel]:
    """Vectorized completion kernel for the plan's aggregator, or ``None``.

    Dispatch is on the *exact* aggregator type produced by a probe
    instantiation — subclasses may change the stopping rule, so they take
    the scalar fallback. The aggregator-specific preprocessing (index
    translation, feasibility screens, segment layout) happens here, once per
    batch and backend-independently; the per-row searches run on ``suite``'s
    kernels.
    """
    probe = plan.new_aggregator()
    n_active = int(active.size)
    position_of_worker = np.full(plan.num_workers, -1, dtype=int)
    position_of_worker[active] = np.arange(n_active)

    if type(probe) is CountAggregator:
        required = position_of_worker[np.asarray(probe.required_workers, dtype=int)]
        if np.any(required < 0):
            # A required worker never computes, so no iteration completes.
            return lambda positions, order: np.full(
                positions.shape[0], n_active, dtype=int
            )
        return lambda positions, order: suite.count_completion(positions, required)

    if type(probe) is PartialSumAggregator:
        eligible = position_of_worker[np.flatnonzero(probe.example_counts > 0)]
        eligible = eligible[eligible >= 0]
        needed = probe.required_count
        if needed > eligible.size:
            return lambda positions, order: np.full(
                positions.shape[0], n_active, dtype=int
            )
        return lambda positions, order: suite.partial_sum_completion(
            positions, eligible, needed
        )

    if type(probe) is BatchCoverageAggregator:
        batches = np.asarray(probe.worker_batches, dtype=int)[active]
        return _coverage_kernel(
            batches, np.arange(n_active), probe.num_batches, suite
        )

    if type(probe) is UnitCoverageAggregator:
        assignment = probe.assignment
        units: List[np.ndarray] = []
        owners: List[np.ndarray] = []
        for j, worker in enumerate(active):
            indices = assignment.worker_indices(int(worker))
            units.append(indices)
            owners.append(np.full(indices.size, j, dtype=int))
        return _coverage_kernel(
            np.concatenate(units) if units else np.empty(0, dtype=int),
            np.concatenate(owners) if owners else np.empty(0, dtype=int),
            probe.num_units,
            suite,
        )

    if type(probe) is CodedAggregator:
        return _coded_kernel(probe, active, position_of_worker, suite)

    return None


def _coverage_kernel(
    items: np.ndarray,
    owner_positions: np.ndarray,
    num_items: int,
    suite: KernelSuite,
) -> _Kernel:
    """Coupon-collector completion: last item to be covered for the first time.

    ``items[p]`` is covered whenever the active worker at column
    ``owner_positions[p]`` arrives; an iteration completes at the maximum
    over items of the earliest covering arrival. The (item, owner) pairs are
    sorted by item once here; each row then reduces to a segment minimum
    followed by a row maximum on the suite's coverage kernel.
    """
    if items.size == 0 or np.unique(items).size < num_items:
        # Some item has no owner: no amount of waiting covers it.
        return lambda positions, order: np.full(
            positions.shape[0], positions.shape[1], dtype=int
        )
    by_item = np.argsort(items, kind="stable")
    owners_sorted = owner_positions[by_item]
    segment_starts = np.flatnonzero(
        np.concatenate(([True], np.diff(items[by_item]) > 0))
    )
    return lambda positions, order: suite.coverage_completion(
        positions, owners_sorted, segment_starts
    )


def _coded_kernel(
    probe: CodedAggregator,
    active: np.ndarray,
    position_of_worker: np.ndarray,
    suite: KernelSuite,
) -> _Kernel:
    code = probe.code
    n_active = int(active.size)

    opportunistic_fractional = (
        isinstance(code, FractionalRepetitionCode)
        and type(code).is_decodable is FractionalRepetitionCode.is_decodable
    )
    if opportunistic_fractional:
        # Decodable exactly when one replication group has fully reported,
        # checked on every arrival: completion is the earliest group's last
        # member. Groups containing a worker that never computes are out.
        member_positions = [
            position_of_worker[np.asarray(group, dtype=int)] for group in code.groups
        ]
        viable = [members for members in member_positions if np.all(members >= 0)]
        if not viable:
            return lambda positions, order: np.full(
                positions.shape[0], n_active, dtype=int
            )
        members = np.concatenate(viable)
        group_starts = np.cumsum([0] + [m.size for m in viable[:-1]])
        return lambda positions, order: suite.group_completion(
            positions, members, group_starts
        )

    # Generic linear code: find each iteration's first decodable arrival
    # prefix among the checkpoints of CodedAggregator's decodability-check
    # cadence (first plausible completion at the worst-case threshold, then
    # every ``check_every`` arrivals, unconditionally on the last worker;
    # opportunistic codes are checked on every arrival). The cadence
    # parameters are read off the probe aggregator so the two code paths
    # cannot drift apart.
    check_every = probe.check_every
    opportunistic = probe.opportunistic
    minimum_needed = probe.minimum_needed

    def due_ranks() -> List[int]:
        ranks = []
        for rank in range(n_active):
            count = rank + 1
            if opportunistic:
                due = True
            elif count < minimum_needed:
                due = False
            else:
                due = (
                    (count - minimum_needed) % check_every == 0
                    or count >= code.num_workers
                )
            if due:
                ranks.append(rank)
        return ranks

    if type(code).is_decodable is LinearGradientCode.is_decodable:
        # For an unmodified linear code, decodability is monotone in the
        # worker set (appending rows can only grow the row space), so the
        # first decodable checkpoint can be bisected instead of walked:
        # O(log checkpoints) decodability tests per iteration instead of
        # O(checkpoints). Subclasses overriding ``is_decodable`` may break
        # monotonicity and keep the sequential walk below.
        checkpoints = due_ranks()

        def bisect_kernel(positions: np.ndarray, order: np.ndarray) -> np.ndarray:
            completing = np.full(positions.shape[0], n_active, dtype=int)
            for i in range(positions.shape[0]):
                row_workers = active[order[i]]
                lo, hi = 0, len(checkpoints)
                while lo < hi:
                    mid = (lo + hi) // 2
                    prefix = row_workers[: checkpoints[mid] + 1]
                    if code.is_decodable(prefix.tolist()):
                        hi = mid
                    else:
                        lo = mid + 1
                if lo < len(checkpoints):
                    completing[i] = checkpoints[lo]
            return completing

        return bisect_kernel

    def walk_kernel(positions: np.ndarray, order: np.ndarray) -> np.ndarray:
        completing = np.full(positions.shape[0], n_active, dtype=int)
        for i in range(positions.shape[0]):
            workers: List[int] = []
            for rank in range(n_active):
                workers.append(int(active[order[i, rank]]))
                count = rank + 1
                if opportunistic:
                    due = True
                elif count < minimum_needed:
                    due = False
                else:
                    due = (
                        (count - minimum_needed) % check_every == 0
                        or count >= code.num_workers
                    )
                if due and code.is_decodable(workers):
                    completing[i] = rank
                    break
        return completing

    return walk_kernel


def _fallback_positions(
    plan: ExecutionPlan, active: np.ndarray, arrival_order: np.ndarray
) -> np.ndarray:
    """Scalar completion scan for schemes without a vectorized kernel.

    Feeds each iteration's arrival sequence to a fresh instance of the
    plan's own aggregator — exactly what the loop engine does — so custom
    aggregators behave identically; only the timing draws stay vectorized.
    """
    num_rows, n_active = arrival_order.shape
    completing = np.full(num_rows, n_active, dtype=int)
    for i in range(num_rows):
        aggregator = plan.new_aggregator()
        for rank in range(n_active):
            if aggregator.receive(int(active[arrival_order[i, rank]]), None):
                completing[i] = rank
                break
    return completing
