"""Multi-iteration job simulation.

:func:`simulate_job` runs a timing-only job — the mode used by every
figure/table benchmark — while :func:`simulate_training_run` executes the
same job *semantically*: each simulated iteration's responding workers supply
real encoded gradients that drive an optimizer, so the run produces both
timing metrics and an actual trained model under simulated time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cluster.dynamic import ClusterTimeline, DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.datasets.base import Dataset
from repro.datasets.batching import BatchSpec
from repro.exceptions import SimulationError
from repro.gradients.base import GradientModel
from repro.optim.base import Optimizer
from repro.optim.trainer import IterationRecord, TrainingResult
from repro.schemes.base import ExecutionPlan, Scheme
from repro.simulation.execution import worker_message
from repro.simulation.iteration import IterationOutcome, simulate_iteration
from repro.utils.counting import CountingList
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["JobResult", "RepeatedOutcomeLog", "simulate_job", "simulate_training_run"]


@dataclass(frozen=True)
class _JobAggregates:
    """Single-traversal aggregate metrics over a job's iterations."""

    total_time: float
    total_computation_time: float
    total_communication_time: float
    average_recovery_threshold: Optional[float]
    average_communication_load: Optional[float]


class _IterationLog(CountingList):
    """A list of outcomes that counts its mutations.

    :class:`JobResult` keys its aggregate cache on
    :attr:`~repro.utils.counting.CountingList.version`, so *any* mutation —
    including replacing an outcome at an unchanged length, which a pure
    ``len()`` key would miss — invalidates the cached totals.
    """


class RepeatedOutcomeLog(_IterationLog):
    """One expected outcome standing in for ``repetitions`` identical iterations.

    The analytic backend's per-iteration estimate is the same for every
    iteration, so materialising one list entry per iteration would make an
    O(1) estimate O(num_iterations) in memory. This log reports
    ``repetitions`` iterations while storing the outcome once (the read-side
    sequence protocol — iteration, indexing, membership, equality — is
    overridden accordingly, since the inherited list storage stays empty),
    and :meth:`JobResult._aggregates` recognises it and computes the totals
    in O(1) as well. The log is immutable — an analytic result is a
    closed-form value, not a trace to append to.
    """

    def __init__(self, outcome: "IterationOutcome", repetitions: int) -> None:
        super().__init__()
        self.outcome = outcome
        self.repetitions = int(repetitions)

    # -- read-side sequence protocol (the underlying list stays empty) --- #
    def __len__(self) -> int:
        return self.repetitions

    def __bool__(self) -> bool:
        return self.repetitions > 0

    def __iter__(self):
        return itertools.repeat(self.outcome, self.repetitions)

    def __reversed__(self):
        return itertools.repeat(self.outcome, self.repetitions)

    def __contains__(self, item) -> bool:
        return self.repetitions > 0 and (item is self.outcome or item == self.outcome)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.outcome] * len(range(*index.indices(self.repetitions)))
        index = int(index)
        if index < 0:
            index += self.repetitions
        if not 0 <= index < self.repetitions:
            raise IndexError("iteration index out of range")
        return self.outcome

    def count(self, value: object) -> int:
        return self.repetitions if value in self else 0

    def index(self, value: object, *args: int) -> int:
        if value in self:
            return 0
        # reprolint: allow[EXC001] reason=mirrors list.index, which raises bare ValueError; the sequence protocol contract wins here
        raise ValueError(f"{value!r} is not in the log")

    def __eq__(self, other) -> bool:
        try:
            if len(other) != self.repetitions:
                return False
            return all(entry == self.outcome for entry in other)
        except TypeError:
            return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # mirrors list: logs are unhashable

    def __add__(self, other):
        return list(self) + list(other)

    def __radd__(self, other):
        return list(other) + list(self)

    def __mul__(self, times):
        return list(self) * times

    __rmul__ = __mul__

    def __reduce__(self):
        return (type(self), (self.outcome, self.repetitions))

    def _immutable(self, *args, **kwargs):
        # reprolint: allow[EXC001] reason=mutating an immutable sequence is a programming error; TypeError matches tuple/str semantics
        raise TypeError(
            "a repeated-outcome log is immutable; analytic results cannot be "
            "appended to"
        )


for _name in (
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "sort",
    "reverse",
    "__setitem__",
    "__delitem__",
    "__iadd__",
    "__imul__",
):
    setattr(RepeatedOutcomeLog, _name, RepeatedOutcomeLog._immutable)
del _name


@dataclass
class JobResult:
    """Aggregate timing metrics of a simulated multi-iteration job.

    The attributes mirror the rows of the paper's Tables I and II. The
    aggregate properties are computed in one pass over the iterations and
    cached, keyed on the iteration list's mutation counter — any change to
    the list (appends, but also in-place replacements) invalidates the
    cache, which ``summary()`` and the sweep tables read repeatedly.
    """

    scheme_name: str
    iterations: List[IterationOutcome] = field(default_factory=list)
    training: Optional[TrainingResult] = None
    _aggregate_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.iterations, _IterationLog):
            self.iterations = _IterationLog(self.iterations)

    def __getstate__(self) -> dict:
        # The cache key pairs the log's mutation counter with its length;
        # unpickling rebuilds the log with a fresh counter, so a carried
        # cache could collide with a different mutation history. Drop it —
        # it is a cache, recomputing is always safe.
        state = self.__dict__.copy()
        state["_aggregate_cache"] = None
        return state

    def _aggregates(self) -> _JobAggregates:
        # A plain list (someone reassigned the attribute) has no version
        # counter; disable caching rather than risk serving stale totals.
        version = getattr(self.iterations, "version", None)
        cached = self._aggregate_cache
        if (
            version is not None
            and cached is not None
            and cached[0] == version
        ):
            return cached[1]
        if isinstance(self.iterations, RepeatedOutcomeLog):
            # Every entry is the same expected outcome: the totals are plain
            # multiples and the averages are the values themselves, in O(1).
            outcome = self.iterations.outcome
            count = self.iterations.repetitions
            aggregates = _JobAggregates(
                total_time=outcome.total_time * count,
                total_computation_time=outcome.computation_time * count,
                total_communication_time=outcome.communication_time * count,
                average_recovery_threshold=(
                    float(outcome.workers_heard) if count else None
                ),
                average_communication_load=(
                    float(outcome.communication_load) if count else None
                ),
            )
            if version is not None:
                self._aggregate_cache = (version, aggregates)
            return aggregates
        total = []
        computation = []
        communication = []
        workers_heard = []
        communication_load = []
        for outcome in self.iterations:
            total.append(outcome.total_time)
            computation.append(outcome.computation_time)
            communication.append(outcome.communication_time)
            workers_heard.append(outcome.workers_heard)
            communication_load.append(outcome.communication_load)
        aggregates = _JobAggregates(
            total_time=float(sum(total)),
            total_computation_time=float(sum(computation)),
            total_communication_time=float(sum(communication)),
            average_recovery_threshold=(
                float(np.mean(workers_heard)) if workers_heard else None
            ),
            average_communication_load=(
                float(np.mean(communication_load)) if communication_load else None
            ),
        )
        if version is not None:
            self._aggregate_cache = (version, aggregates)
        return aggregates

    @property
    def num_iterations(self) -> int:
        """Number of simulated iterations."""
        return len(self.iterations)

    @property
    def total_time(self) -> float:
        """Total running time (sum over iterations)."""
        return self._aggregates().total_time

    @property
    def total_computation_time(self) -> float:
        """Sum of per-iteration computation times (paper's accounting)."""
        return self._aggregates().total_computation_time

    @property
    def total_communication_time(self) -> float:
        """Total running time minus total computation time."""
        return self._aggregates().total_communication_time

    @property
    def average_recovery_threshold(self) -> float:
        """Average number of workers the master waited for per iteration."""
        value = self._aggregates().average_recovery_threshold
        if value is None:
            raise SimulationError("the job has no iterations")
        return value

    @property
    def average_communication_load(self) -> float:
        """Average per-iteration communication load in gradient units."""
        value = self._aggregates().average_communication_load
        if value is None:
            raise SimulationError("the job has no iterations")
        return value

    def summary(self) -> dict:
        """Dictionary of the headline metrics (used by the report tables)."""
        return {
            "scheme": self.scheme_name,
            "iterations": self.num_iterations,
            "recovery_threshold": self.average_recovery_threshold,
            "communication_load": self.average_communication_load,
            "communication_time": self.total_communication_time,
            "computation_time": self.total_computation_time,
            "total_time": self.total_time,
        }


def _resolve_plan(
    scheme_or_plan: Scheme | ExecutionPlan,
    num_units: int,
    num_workers: int,
    rng: np.random.Generator,
) -> ExecutionPlan:
    if isinstance(scheme_or_plan, ExecutionPlan):
        return scheme_or_plan
    if isinstance(scheme_or_plan, Scheme):
        return scheme_or_plan.build_feasible_plan(num_units, num_workers, rng)
    raise SimulationError(
        "expected a Scheme or an ExecutionPlan, got "
        f"{type(scheme_or_plan).__name__}"
    )


def _materialize_timeline(
    cluster: ClusterSpec | DynamicClusterSpec,
    num_iterations: int,
    generator: np.random.Generator,
) -> Optional[ClusterTimeline]:
    """Realise a dynamic cluster's timeline; ``None`` for stationary clusters.

    Called *after* plan resolution in every engine, so the timeline's
    (at most one) seed draw sits at the same point of the job stream
    everywhere — part of the loop==vectorized bit-identity contract.
    """
    if isinstance(cluster, DynamicClusterSpec):
        return cluster.materialize(num_iterations, generator)
    return None


def simulate_job(
    scheme_or_plan: Scheme | ExecutionPlan,
    cluster: ClusterSpec | DynamicClusterSpec,
    num_units: int,
    num_iterations: int,
    rng: RandomState = None,
    *,
    unit_size: int = 1,
    serialize_master_link: bool = True,
    engine: str = "loop",
    kernels: str = "auto",
) -> JobResult:
    """Timing-only simulation of ``num_iterations`` distributed GD iterations.

    The placement is frozen once (as in the paper, data is loaded onto the
    workers before the iterations start). On a stationary
    :class:`~repro.cluster.spec.ClusterSpec` only the per-iteration
    completion times vary across iterations; a
    :class:`~repro.cluster.dynamic.DynamicClusterSpec` additionally varies
    the per-worker delay models themselves (regime switching, drift,
    preemption, churn) while the placement — planned against its base
    cluster — stays frozen.

    Parameters
    ----------
    engine:
        ``"loop"`` (default) iterates :func:`simulate_iteration` in Python;
        ``"vectorized"`` batches every iteration's timing in NumPy
        (:mod:`repro.simulation.vectorized`); ``"auto"`` picks by job size.
        The engines consume the random stream identically — on dynamic
        clusters too — so the result is the same bit for bit; only the
        speed differs.
    kernels:
        Hot-loop backend for the vectorized engine — ``"auto"`` (default,
        numba when installed else numpy), ``"numba"``, ``"cext"``, or
        ``"numpy"``; see :mod:`repro.simulation.kernels`. Every backend is
        bit-identical; the knob is validated (and otherwise ignored) under
        the loop engine.
    """
    check_positive_int(num_iterations, "num_iterations")
    from repro.simulation.kernels import validate_kernels
    from repro.simulation.vectorized import resolve_engine, simulate_job_vectorized

    validate_kernels(kernels)
    if (
        resolve_engine(
            engine, num_iterations=num_iterations, num_workers=cluster.num_workers
        )
        == "vectorized"
    ):
        return simulate_job_vectorized(
            scheme_or_plan,
            cluster,
            num_units,
            num_iterations,
            rng,
            unit_size=unit_size,
            serialize_master_link=serialize_master_link,
            kernels=kernels,
        )
    generator = as_generator(rng)
    plan = _resolve_plan(scheme_or_plan, num_units, cluster.num_workers, generator)
    timeline = _materialize_timeline(cluster, num_iterations, generator)
    result = JobResult(scheme_name=plan.scheme_name)
    for iteration in range(num_iterations):
        outcome = simulate_iteration(
            plan,
            cluster if timeline is None else timeline.cluster_at(iteration),
            rng=generator,
            unit_size=unit_size,
            serialize_master_link=serialize_master_link,
        )
        result.iterations.append(outcome)
    return result


def simulate_training_run(
    scheme_or_plan: Scheme | ExecutionPlan,
    cluster: ClusterSpec | DynamicClusterSpec,
    model: GradientModel,
    dataset: Dataset,
    optimizer: Optimizer,
    num_iterations: int,
    rng: RandomState = None,
    *,
    unit_spec: Optional[BatchSpec] = None,
    serialize_master_link: bool = True,
    initial_weights: Optional[np.ndarray] = None,
) -> JobResult:
    """Semantic simulation: simulated timing *and* real gradient computation.

    Each iteration first runs the timing simulation to determine which
    workers the master hears from (and how long the iteration takes), then
    computes those workers' actual messages, decodes the gradient at the
    master, and applies the optimizer update. The returned
    :class:`JobResult` therefore carries both the timing metrics and a
    :class:`~repro.optim.trainer.TrainingResult` with the loss trajectory.

    Parameters
    ----------
    unit_spec:
        Mapping from data units to example indices. ``None`` means the units
        *are* the examples; otherwise the plan's units index the batches of
        ``unit_spec`` (whose sizes also drive the computation-time draws).
    """
    check_positive_int(num_iterations, "num_iterations")
    generator = as_generator(rng)
    num_units = unit_spec.num_batches if unit_spec is not None else dataset.num_examples
    unit_size = unit_spec.max_batch_size if unit_spec is not None else 1
    plan = _resolve_plan(scheme_or_plan, num_units, cluster.num_workers, generator)
    timeline = _materialize_timeline(cluster, num_iterations, generator)

    if initial_weights is None:
        initial_weights = model.initial_weights(dataset.num_features)
    state = optimizer.initialize(initial_weights)

    result = JobResult(scheme_name=plan.scheme_name)
    history: List[IterationRecord] = []
    for iteration in range(num_iterations):
        outcome = simulate_iteration(
            plan,
            cluster if timeline is None else timeline.cluster_at(iteration),
            rng=generator,
            unit_size=unit_size,
            serialize_master_link=serialize_master_link,
        )
        result.iterations.append(outcome)

        # Re-run the aggregation with real messages from exactly the workers
        # the timing simulation heard from, in the same arrival order.
        query = optimizer.query_point(state)
        aggregator = plan.new_aggregator()
        complete = False
        for worker in outcome.heard_workers:
            message = worker_message(plan, int(worker), model, dataset, query, unit_spec)
            complete = aggregator.receive(int(worker), message)
            if complete:
                break
        if not complete:
            raise SimulationError(
                "internal inconsistency: the timing simulation completed but "
                "the semantic aggregation did not"
            )
        gradient = aggregator.decode() / float(dataset.num_examples)

        loss = model.loss(state.weights, dataset.features, dataset.labels)
        history.append(
            IterationRecord(
                iteration=iteration,
                loss=loss,
                gradient_norm=float(np.linalg.norm(gradient)),
                learning_rate=optimizer.schedule(iteration),
            )
        )
        state = optimizer.step(state, gradient)

    result.training = TrainingResult(
        weights=state.weights, history=history, converged=False
    )
    return result
