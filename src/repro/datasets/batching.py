"""Batch partitioning of a training set, as used by the BCC scheme.

The BCC scheme partitions the ``m`` examples into ``ceil(m/r)`` batches of
``r`` examples each, the last batch being zero-padded in the paper (here:
simply shorter — summing fewer real gradients is numerically identical to
summing zero-padded ones). :class:`BatchSpec` captures such a partition and
is reused by the uncoded scheme (each worker = one batch) and by the
generalized BCC analysis (batch = "super example" when ``m > n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import DataError
from repro.utils.validation import check_positive_int

__all__ = ["BatchSpec", "make_batches", "batch_of_example", "contiguous_partition"]


@dataclass(frozen=True)
class BatchSpec:
    """A disjoint partition of example indices ``0..m-1`` into batches.

    Attributes
    ----------
    num_examples:
        Total number of examples ``m``.
    batches:
        Tuple of index arrays; batch ``b`` holds the example indices assigned
        to it. The arrays are disjoint and their union is ``range(m)``.
    """

    num_examples: int
    batches: tuple

    def __post_init__(self) -> None:
        check_positive_int(self.num_examples, "num_examples")
        if len(self.batches) == 0:
            raise DataError("a BatchSpec needs at least one batch")
        seen = np.zeros(self.num_examples, dtype=bool)
        normalised: List[np.ndarray] = []
        for b, indices in enumerate(self.batches):
            idx = np.asarray(indices, dtype=int)
            if idx.ndim != 1 or idx.size == 0:
                raise DataError(f"batch {b} must be a non-empty 1-D index array")
            if idx.min() < 0 or idx.max() >= self.num_examples:
                raise DataError(
                    f"batch {b} references indices outside [0, {self.num_examples})"
                )
            if np.any(seen[idx]):
                raise DataError(f"batch {b} overlaps a previous batch")
            seen[idx] = True
            normalised.append(idx.copy())
        if not seen.all():
            missing = int(np.flatnonzero(~seen)[0])
            raise DataError(
                f"example {missing} is not assigned to any batch; a BatchSpec "
                "must cover every example"
            )
        object.__setattr__(self, "batches", tuple(normalised))

    @property
    def num_batches(self) -> int:
        """Number of batches (``ceil(m/r)`` for a BCC partition)."""
        return len(self.batches)

    @property
    def batch_sizes(self) -> np.ndarray:
        """Array of per-batch sizes."""
        return np.array([len(b) for b in self.batches], dtype=int)

    @property
    def max_batch_size(self) -> int:
        """Size of the largest batch — the computational load ``r`` it implies."""
        return int(self.batch_sizes.max())

    def batch_indices(self, batch_id: int) -> np.ndarray:
        """Return the example indices of batch ``batch_id``."""
        if not (0 <= batch_id < self.num_batches):
            raise DataError(
                f"batch_id must lie in [0, {self.num_batches}), got {batch_id}"
            )
        return self.batches[batch_id]

    def membership(self) -> np.ndarray:
        """Return an array ``membership[j] = batch containing example j``."""
        member = np.empty(self.num_examples, dtype=int)
        for b, idx in enumerate(self.batches):
            member[idx] = b
        return member


def make_batches(num_examples: int, batch_size: int) -> BatchSpec:
    """Partition ``range(num_examples)`` into contiguous batches of ``batch_size``.

    This is the BCC "batching" step: ``ceil(m/r)`` batches, each of size ``r``
    except possibly the last. The paper zero-pads the last batch; leaving it
    shorter yields the same summed partial gradient.
    """
    m = check_positive_int(num_examples, "num_examples")
    r = check_positive_int(batch_size, "batch_size")
    if r > m:
        raise DataError(
            f"batch_size ({r}) cannot exceed the number of examples ({m})"
        )
    num_batches = -(-m // r)  # ceil(m / r)
    batches = [np.arange(b * r, min((b + 1) * r, m)) for b in range(num_batches)]
    return BatchSpec(num_examples=m, batches=tuple(batches))


def contiguous_partition(num_examples: int, num_parts: int) -> BatchSpec:
    """Split ``range(num_examples)`` into ``num_parts`` nearly equal contiguous parts.

    Used by the uncoded baseline (one part per worker) and by the "super
    example" grouping the paper applies when ``m > n``. Parts differ in size
    by at most one example.
    """
    m = check_positive_int(num_examples, "num_examples")
    parts = check_positive_int(num_parts, "num_parts")
    if parts > m:
        raise DataError(
            f"cannot split {m} examples into {parts} non-empty parts"
        )
    boundaries = np.linspace(0, m, parts + 1, dtype=int)
    batches = [np.arange(boundaries[i], boundaries[i + 1]) for i in range(parts)]
    return BatchSpec(num_examples=m, batches=tuple(batches))


def batch_of_example(spec: BatchSpec, example_index: int) -> int:
    """Return the batch id that contains ``example_index``."""
    if not (0 <= example_index < spec.num_examples):
        raise DataError(
            f"example_index must lie in [0, {spec.num_examples}), got {example_index}"
        )
    return int(spec.membership()[example_index])
