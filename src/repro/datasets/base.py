"""The :class:`Dataset` container used throughout the library.

A dataset is an immutable pair ``(features, labels)`` with ``m`` examples and
``p`` features. The distributed-GD machinery only ever needs row subsets of
the design matrix, so the container exposes cheap row-indexing helpers that
return views where NumPy allows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import DataError

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """An in-memory supervised-learning dataset.

    Attributes
    ----------
    features:
        Design matrix of shape ``(m, p)``; one row per training example.
    labels:
        Target vector of shape ``(m,)``. For binary classification the labels
        are in ``{-1, +1}`` (the convention used by the paper's logistic
        model); for regression they are real-valued.
    name:
        Optional human-readable identifier used in experiment reports.
    """

    features: np.ndarray
    labels: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=float)
        labels = np.asarray(self.labels, dtype=float)
        if features.ndim != 2:
            raise DataError(
                f"features must be a 2-D array, got shape {features.shape}"
            )
        if labels.ndim != 1:
            raise DataError(f"labels must be a 1-D array, got shape {labels.shape}")
        if features.shape[0] != labels.shape[0]:
            raise DataError(
                "features and labels must have the same number of rows: "
                f"{features.shape[0]} != {labels.shape[0]}"
            )
        if features.shape[0] == 0:
            raise DataError("a dataset must contain at least one example")
        # Bypass frozen=True to store the normalised arrays.
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------ #
    # Shape helpers
    # ------------------------------------------------------------------ #
    @property
    def num_examples(self) -> int:
        """Number of training examples ``m``."""
        return int(self.features.shape[0])

    @property
    def num_features(self) -> int:
        """Number of features ``p``."""
        return int(self.features.shape[1])

    def __len__(self) -> int:
        return self.num_examples

    # ------------------------------------------------------------------ #
    # Subsetting
    # ------------------------------------------------------------------ #
    def subset(self, indices: Sequence[int] | np.ndarray) -> "Dataset":
        """Return a new dataset containing the rows ``indices`` (in order).

        Raises
        ------
        DataError
            If any index is out of range or the index list is empty.
        """
        idx = np.asarray(indices, dtype=int)
        if idx.ndim != 1 or idx.size == 0:
            raise DataError("subset indices must be a non-empty 1-D sequence")
        if idx.min() < 0 or idx.max() >= self.num_examples:
            raise DataError(
                f"subset indices must lie in [0, {self.num_examples}), "
                f"got range [{idx.min()}, {idx.max()}]"
            )
        return Dataset(self.features[idx], self.labels[idx], name=f"{self.name}[subset]")

    def rows(self, indices: Sequence[int] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(features[indices], labels[indices])`` without wrapping."""
        idx = np.asarray(indices, dtype=int)
        return self.features[idx], self.labels[idx]

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls, features: Iterable, labels: Iterable, name: str = "dataset"
    ) -> "Dataset":
        """Build a dataset from any array-likes (lists, tuples, ndarrays)."""
        return cls(np.asarray(features, dtype=float), np.asarray(labels, dtype=float), name)

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"Dataset(name={self.name!r}, m={self.num_examples}, "
            f"p={self.num_features})"
        )
