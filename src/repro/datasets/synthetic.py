"""Synthetic data generators.

:func:`make_paper_logistic_data` reproduces the data model of Section III-C-1
of the paper:

* a ground-truth weight vector ``w*`` with coordinates drawn uniformly from
  ``{-1, +1}``,
* inputs ``x ~ 0.5 N(mu1, I) + 0.5 N(mu2, I)`` with ``mu1 = 1.5/p w*`` and
  ``mu2 = -1.5/p w*``,
* labels ``y ~ Ber(kappa)`` mapped to ``{-1, +1}``, with
  ``kappa = 1 / (exp(x^T w*) + 1)``.

The paper uses ``p = 8000`` features and 100 data points per batch; the
generator defaults are smaller so unit tests stay fast, while the benchmark
harness passes the paper's sizes explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int, check_nonnegative

__all__ = [
    "LogisticDataConfig",
    "make_paper_logistic_data",
    "make_linear_regression_data",
    "make_separable_classification_data",
]


@dataclass(frozen=True)
class LogisticDataConfig:
    """Configuration of the paper's synthetic logistic-regression dataset.

    Attributes
    ----------
    num_examples:
        Total number of training examples ``m`` (the paper uses
        ``num_batches * 100``).
    num_features:
        Feature dimension ``p`` (the paper uses 8000).
    mean_scale:
        The ``1.5`` constant in ``mu1 = 1.5/p w*``.
    """

    num_examples: int
    num_features: int
    mean_scale: float = 1.5

    def __post_init__(self) -> None:
        check_positive_int(self.num_examples, "num_examples")
        check_positive_int(self.num_features, "num_features")
        check_nonnegative(self.mean_scale, "mean_scale")


def make_paper_logistic_data(
    config: LogisticDataConfig, seed: RandomState = None
) -> tuple[Dataset, np.ndarray]:
    """Generate the paper's mixture-of-Gaussians logistic dataset.

    Parameters
    ----------
    config:
        Dataset sizes and the mean-scale constant.
    seed:
        Seed-like value; the same seed reproduces the same dataset.

    Returns
    -------
    (dataset, true_weights):
        ``dataset`` holds ``(m, p)`` features and ``{-1, +1}`` labels;
        ``true_weights`` is the ground-truth ``w*`` used to generate it.
    """
    rng = as_generator(seed)
    m, p = config.num_examples, config.num_features

    true_w = rng.choice([-1.0, 1.0], size=p)
    mu1 = (config.mean_scale / p) * true_w
    mu2 = -(config.mean_scale / p) * true_w

    # Mixture component per example, then one Gaussian draw per example.
    component = rng.random(m) < 0.5
    means = np.where(component[:, None], mu1[None, :], mu2[None, :])
    features = means + rng.standard_normal((m, p))

    # kappa = 1 / (exp(x.w*) + 1); y = +1 with probability kappa, else -1.
    logits = features @ true_w
    kappa = 1.0 / (np.exp(np.clip(logits, -30.0, 30.0)) + 1.0)
    labels = np.where(rng.random(m) < kappa, 1.0, -1.0)

    dataset = Dataset(features, labels, name="paper-logistic")
    return dataset, true_w


def make_linear_regression_data(
    num_examples: int,
    num_features: int,
    noise_std: float = 0.1,
    seed: RandomState = None,
) -> tuple[Dataset, np.ndarray]:
    """Generate a standard Gaussian linear-regression dataset.

    ``y = X w* + noise`` with ``X`` i.i.d. standard normal, ``w*`` standard
    normal, and ``noise ~ N(0, noise_std^2)``. Used by the least-squares
    gradient kernels and by examples that are not tied to the paper's exact
    logistic workload.
    """
    check_positive_int(num_examples, "num_examples")
    check_positive_int(num_features, "num_features")
    check_nonnegative(noise_std, "noise_std")
    rng = as_generator(seed)
    features = rng.standard_normal((num_examples, num_features))
    true_w = rng.standard_normal(num_features)
    labels = features @ true_w + noise_std * rng.standard_normal(num_examples)
    return Dataset(features, labels, name="linear-regression"), true_w


def make_separable_classification_data(
    num_examples: int,
    num_features: int,
    margin: float = 1.0,
    seed: RandomState = None,
) -> tuple[Dataset, np.ndarray]:
    """Generate a linearly separable ``{-1,+1}`` classification dataset.

    Each example is drawn standard normal and then shifted by ``margin`` along
    the true separating direction according to its label, guaranteeing a
    positive margin. Useful for tests that need a problem logistic regression
    can drive to near-zero training error.
    """
    check_positive_int(num_examples, "num_examples")
    check_positive_int(num_features, "num_features")
    check_nonnegative(margin, "margin")
    rng = as_generator(seed)
    direction = rng.standard_normal(num_features)
    direction /= np.linalg.norm(direction)
    labels = rng.choice([-1.0, 1.0], size=num_examples)
    features = rng.standard_normal((num_examples, num_features))
    # Remove the component along ``direction`` then add back label * margin.
    projections = features @ direction
    features = features - np.outer(projections, direction)
    features = features + np.outer(labels * margin, direction)
    return Dataset(features, labels, name="separable-classification"), direction
