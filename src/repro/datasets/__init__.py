"""Dataset containers, synthetic generators, and batching utilities."""

from repro.datasets.base import Dataset
from repro.datasets.synthetic import (
    LogisticDataConfig,
    make_paper_logistic_data,
    make_linear_regression_data,
    make_separable_classification_data,
)
from repro.datasets.batching import (
    BatchSpec,
    make_batches,
    batch_of_example,
    contiguous_partition,
)

__all__ = [
    "Dataset",
    "LogisticDataConfig",
    "make_paper_logistic_data",
    "make_linear_regression_data",
    "make_separable_classification_data",
    "BatchSpec",
    "make_batches",
    "batch_of_example",
    "contiguous_partition",
]
