"""Executors: the *how* of sweep execution, one protocol, four strategies.

Every executor consumes the same :class:`~repro.scheduling.core.SweepPlan`
and dispatches each task through the one
:func:`~repro.scheduling.core.execute_task` runner, so the strategies can
only differ in wall-clock, never in results (the executor-equivalence suite
pins serial == thread == process == async bit-identity).

* :class:`SerialExecutor` — in-order, in-thread; the reference.
* :class:`PoolExecutor` — a ``concurrent.futures`` thread or process pool.
  Process pools require picklable tasks; see :doc:`the performance guide
  </performance>` for the constraints.
* :class:`AsyncExecutor` — tasks as awaitables on an asyncio loop (each
  task still runs in a worker thread: the simulators are synchronous,
  CPU-bound code). This is the substrate :class:`repro.service.SweepService`
  schedules on, and it doubles as a plain executor via :meth:`execute`.
* :class:`~repro.scheduling.distributed.DistributedExecutor` — tasks
  sharded across N ``repro serve`` nodes over TCP with pull-based work
  stealing and retry-with-reassignment; resolved by name
  (``"distributed"``) from the ``REPRO_NODES`` environment variable.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.api.result import RunResult
from repro.exceptions import ConfigurationError
from repro.scheduling.core import CellTask, execute_task

__all__ = [
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "AsyncExecutor",
    "resolve_executor",
]


@runtime_checkable
class Executor(Protocol):
    """Anything that can execute a sequence of cell tasks, in order.

    ``execute`` returns one result list per task, positionally aligned with
    the input. ``pickle_safe`` declares whether tasks cross a pickle
    boundary on the way to execution (process pools) — the plan builder
    then keeps specs pickle-clean by skipping plan hoisting.
    ``sequential_safe`` declares that ``execute`` runs the tasks strictly
    one after another, in order, in the calling process — the property a
    sequential :class:`~repro.scheduling.core.SweepPlan` (the ``"shared"``
    seed strategy's single generator threaded through every task) requires;
    ``run_sweep`` refuses to hand such plans to executors without it.
    """

    name: str
    pickle_safe: bool
    sequential_safe: bool

    def execute(self, tasks: Sequence[CellTask]) -> List[List[RunResult]]:
        """Run every task and return their result lists, in task order."""
        ...


class SerialExecutor:
    """In-order execution in the calling thread — the reference strategy."""

    name = "serial"
    pickle_safe = False
    sequential_safe = True

    def execute(self, tasks: Sequence[CellTask]) -> List[List[RunResult]]:
        """Run the tasks one after another, in order."""
        return [execute_task(task) for task in tasks]


class PoolExecutor:
    """A ``concurrent.futures`` pool: ``kind="thread"`` or ``"process"``.

    The simulation backends are CPU-bound Python/NumPy that hold the GIL,
    so real speed-up on a multi-core machine needs ``"process"`` — which
    requires the spec and backend to be picklable (named backends and
    config-mapping schemes are; custom runner closures usually are not).
    Threads still help when the backend itself waits on other processes or
    IO (e.g. :class:`~repro.api.backends.MultiprocessBackend`).

    The underlying pool is created lazily on the first :meth:`execute` and
    **reused across calls** — repeated ``run_sweep`` invocations and
    :class:`repro.service.SweepService` traffic pay worker startup (process
    forking, thread creation) once, not per sweep. Call :meth:`close` (or
    use the executor as a context manager) to release the workers; a closed
    executor transparently builds a fresh pool if executed again.
    """

    def __init__(self, kind: str = "thread", max_workers: Optional[int] = None) -> None:
        if kind not in ("thread", "process"):
            raise ConfigurationError(
                f"pool kind must be 'thread' or 'process', got {kind!r}"
            )
        self.kind = kind
        self.max_workers = max_workers
        self._pool: Optional[Union[ThreadPoolExecutor, ProcessPoolExecutor]] = None
        self._pool_lock = threading.Lock()

    @property
    def name(self) -> str:
        """The pool flavour, usable as a ``run_sweep(executor=...)`` value."""
        return self.kind

    @property
    def pickle_safe(self) -> bool:
        """Process pools pickle every task across the boundary."""
        return self.kind == "process"

    #: Pools dispatch tasks concurrently (and process pools additionally
    #: pickle them, copying any shared generator), so a plan that threads
    #: shared state through its tasks cannot run here — not even with one
    #: worker.
    sequential_safe = False

    def _ensure_pool(self) -> Union[ThreadPoolExecutor, ProcessPoolExecutor]:
        """The live pool, building one under the lock on first use."""
        with self._pool_lock:
            if self._pool is None:
                pool_cls = (
                    ThreadPoolExecutor if self.kind == "thread" else ProcessPoolExecutor
                )
                self._pool = pool_cls(max_workers=self.max_workers)
            return self._pool

    def execute(self, tasks: Sequence[CellTask]) -> List[List[RunResult]]:
        """Fan the tasks out over the (persistent) pool; results stay in task order."""
        return list(self._ensure_pool().map(execute_task, tasks))

    def close(self) -> None:
        """Shut the pool down and release its workers; idempotent."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "PoolExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncExecutor:
    """Task execution as awaitables on an asyncio event loop.

    Each task runs in a worker thread (the simulators are synchronous,
    CPU-bound code), bounded by ``max_workers`` concurrent slots; the event
    loop stays free to accept submissions, stream completions, and
    deduplicate work — which is exactly what
    :class:`repro.service.SweepService` does with it. :meth:`execute` is
    the synchronous wrapper for executor-protocol use.
    """

    name = "async"
    pickle_safe = False
    sequential_safe = False

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._semaphore_loop: Optional[asyncio.AbstractEventLoop] = None

    def _limit(self) -> Optional[asyncio.Semaphore]:
        """The concurrency semaphore for the *running* loop, or ``None``.

        A semaphore is bound to the event loop it is first awaited on, and
        every :meth:`execute` call runs on a fresh ``asyncio.run`` loop —
        so a cached semaphore must be replaced whenever the executor is
        reused on a new loop, or the second use raises ``RuntimeError``.
        """
        if self.max_workers is None or self.max_workers <= 0:
            return None
        loop = asyncio.get_running_loop()
        if self._semaphore is None or self._semaphore_loop is not loop:
            self._semaphore = asyncio.Semaphore(self.max_workers)
            self._semaphore_loop = loop
        return self._semaphore

    async def run_task(self, task: CellTask) -> List[RunResult]:
        """Await one task's results, bounded by the concurrency limit."""
        limit = self._limit()
        if limit is not None:
            async with limit:
                return await asyncio.to_thread(execute_task, task)
        return await asyncio.to_thread(execute_task, task)

    async def execute_async(self, tasks: Sequence[CellTask]) -> List[List[RunResult]]:
        """Await every task concurrently; results stay in task order."""
        return list(await asyncio.gather(*(self.run_task(task) for task in tasks)))

    def execute(self, tasks: Sequence[CellTask]) -> List[List[RunResult]]:
        """Synchronous entry: drive :meth:`execute_async` on a fresh loop."""
        return asyncio.run(self.execute_async(tasks))


def _distributed_from_env(max_workers: Optional[int]) -> object:
    """Build the ``executor="distributed"`` instance from ``REPRO_NODES``.

    The node list cannot be a hard-coded default, so the *name* form reads
    it from the environment: a comma-separated ``HOST:PORT,...`` list of
    running ``repro serve`` nodes. Pass a configured
    :class:`~repro.scheduling.distributed.DistributedExecutor` instance
    instead for lease-size/retry/join control. ``max_workers`` is ignored:
    concurrency is the nodes' affair.
    """
    import os

    from repro.scheduling.distributed import DistributedExecutor

    nodes = os.environ.get("REPRO_NODES", "").strip()
    if not nodes:
        raise ConfigurationError(
            "executor='distributed' reads its node list from the "
            "REPRO_NODES environment variable (comma-separated HOST:PORT "
            "entries of running 'repro serve' nodes); set it, or pass a "
            "DistributedExecutor instance"
        )
    return DistributedExecutor(nodes)


#: ``run_sweep(executor=...)`` string values and their executor factories.
_EXECUTOR_FACTORIES: dict[str, Callable[[Optional[int]], object]] = {
    "serial": lambda max_workers: SerialExecutor(),
    "thread": lambda max_workers: PoolExecutor("thread", max_workers),
    "process": lambda max_workers: PoolExecutor("process", max_workers),
    "async": lambda max_workers: AsyncExecutor(max_workers),
    "distributed": _distributed_from_env,
}


def resolve_executor(
    executor: Union[str, Executor], max_workers: Optional[int] = None
) -> Executor:
    """Resolve an executor name (or pass an instance through) to an Executor.

    Recognised names: ``"serial"``, ``"thread"``, ``"process"``,
    ``"async"``, and ``"distributed"`` (node list from the ``REPRO_NODES``
    environment variable). Instances satisfying the :class:`Executor`
    protocol pass through unchanged (``max_workers`` is ignored for them —
    it is baked into the instance).
    """
    if isinstance(executor, str):
        try:
            factory = _EXECUTOR_FACTORIES[executor]
        except KeyError:
            raise ConfigurationError(
                f"executor must be one of {sorted(_EXECUTOR_FACTORIES)} or an "
                f"Executor instance, got {executor!r}"
            ) from None
        return factory(max_workers)  # type: ignore[return-value]
    if isinstance(executor, Executor):
        return executor
    raise ConfigurationError(
        f"cannot use {executor!r} as an executor; expected a name "
        f"({sorted(_EXECUTOR_FACTORIES)}) or an Executor instance"
    )
