"""The one cell-scheduling core behind every sweep execution mode.

Historically :func:`repro.api.sweep.run_sweep` carried the whole scheduling
story inline — task shaping, trial batching, plan hoisting, record
compaction, error wrapping — which made every new execution mode a
copy-paste hazard. This package extracts that story into two orthogonal
halves:

* :mod:`repro.scheduling.core` — *what* to run: :func:`build_sweep_plan`
  turns a :class:`~repro.api.sweep.Sweep` into an ordered list of
  :class:`CellTask` work items, applying the per-cell decisions (plan
  hoisting, trial batching, record mode, seed strategy) exactly once,
  independent of how the tasks will execute. :func:`execute_task` is the
  single task runner every executor dispatches.
* :mod:`repro.scheduling.executors` — *how* to run it: the
  :class:`Executor` protocol with :class:`SerialExecutor`,
  :class:`PoolExecutor` (thread or process ``concurrent.futures`` pools)
  and :class:`AsyncExecutor` (the asyncio entry the sweep service builds
  on); :mod:`repro.scheduling.distributed` adds
  :class:`DistributedExecutor`, which shards the same plan across N
  ``repro serve`` nodes over TCP with pull-based work stealing. Every
  executor consumes the same plan and produces bit-identical results
  under the spawn seed strategy.

:func:`repro.api.sweep.run_sweep` is now a thin façade over
build-plan → execute → collect; :mod:`repro.service` mounts the same core
behind a content-addressed result cache.
"""

from repro.scheduling.core import (
    CellTask,
    SweepPlan,
    build_sweep_plan,
    describe_task,
    execute_task,
    hoist_cell_plan,
    probe_rng_free_plan,
    should_batch_cell,
)
from repro.scheduling.distributed import (
    DistributedExecutor,
    parse_endpoint,
    parse_nodes,
)
from repro.scheduling.executors import (
    AsyncExecutor,
    Executor,
    PoolExecutor,
    SerialExecutor,
    resolve_executor,
)

__all__ = [
    "CellTask",
    "SweepPlan",
    "build_sweep_plan",
    "describe_task",
    "execute_task",
    "hoist_cell_plan",
    "probe_rng_free_plan",
    "should_batch_cell",
    "DistributedExecutor",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "AsyncExecutor",
    "parse_endpoint",
    "parse_nodes",
    "resolve_executor",
]
