"""Multi-node sharded sweep execution over the service TCP protocol.

:class:`DistributedExecutor` implements the :class:`~repro.scheduling.executors.Executor`
protocol by sharding a plan's :class:`~repro.scheduling.core.CellTask`
items across N ``repro serve`` nodes, speaking the line-delimited JSON
protocol of :mod:`repro.service.server` (the ``"cells"`` request added for
this executor). Scheduling is **pull-based work stealing**: every node
repeatedly *leases* a small batch of task indices from one shared queue,
executes them remotely, and comes back for more — fast nodes automatically
drain the queue while slow ones hold only their current lease.

Fault tolerance is **retry-with-reassignment**: when a node dies mid-lease
(connection reset, EOF, malformed frame) its unfinished indices go back on
the queue for the surviving nodes, up to ``max_attempts`` assignments per
task. Because every node executes tasks through its service's
content-addressed result cache
(:meth:`repro.service.service.SweepService.execute_cell`), a task re-sent
after an ambiguous failure either finds the already-computed result or
recomputes the same deterministic value — at-most-once *per result* even
when the transport delivers the work twice.

Two topologies compose freely:

* **Dial-out** — ``DistributedExecutor(["host:1234", "host:1235"])``
  connects to nodes started with ``repro serve``.
* **Join** — ``DistributedExecutor(listen="127.0.0.1:0")`` binds a
  coordinator socket; workers started with ``repro serve --join HOST:PORT``
  dial in, announce themselves, and start leasing. Workers may join while
  a sweep is already running and stay connected across ``execute`` calls.

The wire format carries pickled tasks and results (base64 inside JSON), so
— like the sweep service itself — this is a trusted-network, laboratory
protocol: bind coordinators and nodes to localhost or a private fabric.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import threading
from collections import deque
from typing import BinaryIO, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import exceptions
from repro.api.result import RunResult
from repro.exceptions import ConfigurationError, ReproError, ServiceError
from repro.scheduling.core import CellTask, describe_task
from repro.utils.timing import WallClock

__all__ = ["DistributedExecutor", "parse_endpoint", "parse_nodes"]


def parse_endpoint(text: str) -> Tuple[str, int]:
    """``"host:port"`` as a ``(host, port)`` pair, validated."""
    host, separator, port_text = str(text).strip().rpartition(":")
    if not separator or not host:
        raise ConfigurationError(
            f"node address {text!r} is not of the form HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"node address {text!r} has a non-integer port {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ConfigurationError(
            f"node address {text!r} has an out-of-range port {port}"
        )
    return host, port


def parse_nodes(
    nodes: Union[str, Sequence[Union[str, Tuple[str, int]]]],
) -> Tuple[Tuple[str, int], ...]:
    """Normalise a node list: a comma-separated string or a sequence.

    Accepts ``"a:1,b:2"``, ``["a:1", "b:2"]``, or ``[("a", 1)]`` and
    returns ``(host, port)`` tuples (duplicates allowed — two entries for
    one node mean two concurrent lease streams to it).
    """
    if isinstance(nodes, str):
        entries: Sequence[Union[str, Tuple[str, int]]] = [
            part for part in nodes.split(",") if part.strip()
        ]
    else:
        entries = nodes
    parsed: List[Tuple[str, int]] = []
    for entry in entries:
        if isinstance(entry, str):
            parsed.append(parse_endpoint(entry))
        else:
            host, port = entry
            parsed.append(parse_endpoint(f"{host}:{port}"))
    return tuple(parsed)


def _node_error(kind: str, message: str) -> ReproError:
    """Rehydrate a node-reported failure into the library hierarchy.

    The wire carries ``(type name, message)``; known
    :mod:`repro.exceptions` types come back as themselves so callers'
    ``except SimulationError`` clauses behave identically to local
    execution, anything else degrades to :class:`ServiceError`.
    """
    candidate = getattr(exceptions, kind, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        try:
            return candidate(message)
        except TypeError:
            # An exception subclass with a non-(message) constructor; fall
            # through to the generic wrapper rather than failing the report.
            pass
    return ServiceError(f"a node reported {kind}: {message}")


#: Transport faults that mean "this node is gone", not "this sweep failed":
#: connection errors, truncated streams, and undecodable frames
#: (``json.JSONDecodeError`` and ``binascii.Error`` are ``ValueError``s).
_NODE_FAULTS = (OSError, EOFError, ValueError, pickle.UnpicklingError)


def _hang_up(conn: socket.socket, stream: Optional[BinaryIO]) -> None:
    """Close a worker connection so the peer actually sees EOF.

    The ``makefile`` stream holds its own reference to the socket, so
    closing ``conn`` alone never sends FIN — the transport must be shut
    down explicitly and both handles closed.
    """
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass  # already disconnected
    if stream is not None:
        try:
            stream.close()
        except OSError:
            pass  # flushing a broken pipe on close is not an event
    conn.close()


class _SweepState:
    """Shared bookkeeping of one distributed ``execute`` call.

    One instance is shared by every node thread; all mutation happens under
    ``condition``. ``slots`` is positionally aligned with ``tasks`` and
    first-result-wins: a slot filled by one node is never overwritten when
    a reassigned duplicate of the same task also reports.
    """

    def __init__(self, tasks: Sequence[CellTask], max_attempts: int) -> None:
        self.tasks = list(tasks)
        self.max_attempts = max_attempts
        self.condition = threading.Condition()
        self.queue: "deque[int]" = deque(range(len(self.tasks)))
        self.slots: List[Optional[List[RunResult]]] = [None] * len(self.tasks)
        self.filled = 0
        self.attempts = [0] * len(self.tasks)
        self.error: Optional[ReproError] = None
        self.node_failures: List[str] = []

    def lease(self, size: int) -> List[int]:
        """Pull up to ``size`` open task indices; empty once done/failed."""
        with self.condition:
            if self.error is not None:
                return []
            lease: List[int] = []
            while self.queue and len(lease) < size:
                index = self.queue.popleft()
                if self.slots[index] is None:
                    lease.append(index)
            return lease

    def complete(self, index: int, results: List[RunResult]) -> None:
        """Record one task's results (first report wins)."""
        with self.condition:
            if self.slots[index] is None:
                self.slots[index] = results
                self.filled += 1
            self.condition.notify_all()

    def fail(self, error: ReproError) -> None:
        """Record a sweep-fatal error (first error wins) and stop leasing."""
        with self.condition:
            if self.error is None:
                self.error = error
            self.condition.notify_all()

    def release(self, node: str, indices: Sequence[int], failure: object) -> None:
        """Return a dead node's unfinished lease to the queue.

        Each returned task charges one attempt; a task that has burned
        ``max_attempts`` assignments turns the node fault into a sweep
        error instead of cycling forever.
        """
        with self.condition:
            self.node_failures.append(f"{node}: {failure}")
            for index in indices:
                if self.slots[index] is not None:
                    continue
                self.attempts[index] += 1
                if self.attempts[index] >= self.max_attempts:
                    if self.error is None:
                        self.error = ServiceError(
                            f"{describe_task(self.tasks[index])} was "
                            f"reassigned {self.attempts[index]} times without "
                            f"completing; last node failure — {node}: {failure}"
                        )
                else:
                    # Front of the queue: a task that already waited through
                    # a failed lease should not also wait behind the backlog.
                    self.queue.appendleft(index)
            self.condition.notify_all()

    def finished(self) -> bool:
        """Whether the sweep is over (every slot filled, or a fatal error)."""
        with self.condition:
            return self.error is not None or self.filled == len(self.tasks)

    def has_queued_work(self) -> bool:
        """Whether an idle node could lease something right now."""
        with self.condition:
            return self.error is None and bool(self.queue)

    def outcome(self) -> List[List[RunResult]]:
        """The ordered results — or raise what stopped the sweep."""
        with self.condition:
            if self.error is not None:
                raise self.error
            missing = sum(1 for slot in self.slots if slot is None)
            if missing:
                detail = "; ".join(self.node_failures) or "no node ever served a lease"
                raise ServiceError(
                    f"{missing} of {len(self.tasks)} distributed tasks never "
                    f"completed — every node failed or disconnected ({detail})"
                )
            return [slot for slot in self.slots if slot is not None]


class DistributedExecutor:
    """Shard cell tasks across ``repro serve`` nodes with work stealing.

    Parameters
    ----------
    nodes:
        Dial-out node addresses — a comma-separated ``"host:port,..."``
        string or a sequence of addresses (see :func:`parse_nodes`).
    listen:
        A ``"host:port"`` endpoint to bind for ``repro serve --join``
        workers (``:0`` picks an ephemeral port; read it back from
        :attr:`listen_address`). At least one of ``nodes``/``listen`` is
        required.
    lease_size:
        Tasks per lease. Small leases steal well (a fast node grabs work
        the moment it is free); large leases amortise round-trips. The
        per-node drain pipeline keeps nodes busy either way.
    max_attempts:
        Node assignments allowed per task before a persistent transport
        fault becomes a sweep error.
    connect_timeout:
        Seconds to wait for each dial-out connection.
    timeout:
        Per-read socket timeout while draining a lease; ``None`` (default)
        waits as long as the node computes. Set it when a hung node must
        not stall the sweep — the timed-out lease is reassigned.
    join_timeout:
        In join topology, seconds to wait for a (first or replacement)
        worker while tasks remain before giving up.
    """

    name = "distributed"
    #: Tasks cross a pickle boundary on their way to the nodes, so plans
    #: destined for this executor must stay pickle-clean (no hoisted
    #: scheme closures) — exactly the process-pool contract.
    pickle_safe = True
    sequential_safe = False

    def __init__(
        self,
        nodes: Union[str, Sequence[Union[str, Tuple[str, int]]]] = (),
        *,
        listen: Optional[str] = None,
        lease_size: int = 4,
        max_attempts: int = 3,
        connect_timeout: float = 10.0,
        timeout: Optional[float] = None,
        join_timeout: float = 60.0,
    ) -> None:
        self.nodes = parse_nodes(nodes)
        if lease_size < 1:
            raise ConfigurationError(f"lease_size must be >= 1, got {lease_size}")
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.lease_size = lease_size
        self.max_attempts = max_attempts
        self.connect_timeout = connect_timeout
        self.timeout = timeout
        self.join_timeout = join_timeout
        self._lock = threading.Lock()
        self._closed = False
        self._joined: "deque[Tuple[socket.socket, BinaryIO, str]]" = deque()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        if listen is not None:
            host, port = parse_endpoint(listen)
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((host, port))
                listener.listen()
            except OSError as error:
                listener.close()
                raise ConfigurationError(
                    f"cannot listen for joining workers on {listen!r}: {error}"
                ) from error
            self._listener = listener
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-dist-accept", daemon=True
            )
            self._accept_thread.start()
        if not self.nodes and self._listener is None:
            raise ConfigurationError(
                "a DistributedExecutor needs node addresses to dial "
                "(nodes='host:port,...') or a listen endpoint for "
                "'repro serve --join' workers (listen='host:port')"
            )

    # ------------------------------------------------------------------ #
    @property
    def listen_address(self) -> Optional[Tuple[str, int]]:
        """The bound ``(host, port)`` workers join, or ``None`` when not listening."""
        if self._listener is None:
            return None
        host, port = self._listener.getsockname()[:2]
        return str(host), int(port)

    def _accept_loop(self) -> None:
        """Park joining workers (after their hello line) for the drain loops."""
        assert self._listener is not None
        while True:
            try:
                conn, address = self._listener.accept()
            except OSError:
                # Listener closed — executor shutdown.
                return
            name = f"{address[0]}:{address[1]}"
            try:
                conn.settimeout(self.connect_timeout)
                stream = conn.makefile("rwb")
                hello = json.loads(stream.readline().decode("utf-8"))
                worker = hello.get("worker") if isinstance(hello, dict) else None
                if worker:
                    name = f"{worker} ({name})"
                conn.settimeout(self.timeout)
            except _NODE_FAULTS:
                conn.close()
                continue
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._joined.append((conn, stream, name))

    # ------------------------------------------------------------------ #
    def execute(self, tasks: Sequence[CellTask]) -> List[List[RunResult]]:
        """Shard the tasks over the nodes; results come back in task order."""
        if self._closed:
            raise ConfigurationError(
                "this DistributedExecutor is closed; build a fresh one"
            )
        ordered = list(tasks)
        if not ordered:
            return []
        state = _SweepState(ordered, self.max_attempts)
        threads: List[threading.Thread] = []
        for host, port in self.nodes:
            thread = threading.Thread(
                target=self._run_dialed,
                args=(host, port, state),
                name=f"repro-dist-{host}:{port}",
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        if self._listener is None:
            for thread in threads:
                thread.join()
            return state.outcome()
        return self._execute_with_joiners(state, threads)

    def _execute_with_joiners(
        self, state: _SweepState, threads: List[threading.Thread]
    ) -> List[List[RunResult]]:
        """Join-topology wait loop: feed parked workers, bound idle time."""
        clock = WallClock()
        idle_since: Optional[float] = None
        while not state.finished():
            spawned = False
            # Feed parked workers only while the queue holds work — a worker
            # whose drain ended (and re-parked itself) must not be respawned
            # into an empty lease, or the pair would cycle forever.
            while state.has_queued_work():
                with self._lock:
                    if not self._joined:
                        break
                    conn, stream, name = self._joined.popleft()
                thread = threading.Thread(
                    target=self._run_joined,
                    args=(conn, stream, name, state),
                    name=f"repro-dist-{name}",
                    daemon=True,
                )
                thread.start()
                threads.append(thread)
                spawned = True
            alive = any(thread.is_alive() for thread in threads)
            if not alive and not spawned:
                # Work remains and nobody is serving it: give replacement
                # workers a bounded window to join, then fail loudly.
                if idle_since is None:
                    idle_since = clock.now()
                elif clock.now() - idle_since >= self.join_timeout:
                    break
            else:
                idle_since = None
            with state.condition:
                state.condition.wait(0.05)
        for thread in threads:
            thread.join()
        return state.outcome()

    # ------------------------------------------------------------------ #
    def _run_dialed(self, host: str, port: int, state: _SweepState) -> None:
        """One dial-out node: connect, drain leases, close."""
        node = f"{host}:{port}"
        try:
            sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout
            )
        except OSError as failure:
            state.release(node, [], failure)
            return
        sock.settimeout(self.timeout)
        stream = sock.makefile("rwb")
        try:
            self._drain(stream, node, state)
        finally:
            sock.close()

    def _run_joined(
        self,
        conn: socket.socket,
        stream: BinaryIO,
        name: str,
        state: _SweepState,
    ) -> None:
        """One joined worker: drain leases, then park it for the next sweep."""
        healthy = self._drain(stream, name, state)
        with self._lock:
            if healthy and not self._closed:
                self._joined.append((conn, stream, name))
                return
        _hang_up(conn, stream)

    def _drain(self, stream: BinaryIO, node: str, state: _SweepState) -> bool:
        """Lease → submit → collect, until the queue runs dry.

        Returns ``True`` when the connection is still healthy (the lease
        loop ended because no work remained), ``False`` after a transport
        fault — whose unfinished lease has been released back to the queue.
        """
        held: List[int] = []
        try:
            while True:
                held = state.lease(self.lease_size)
                if not held:
                    return True
                request = {
                    "request": "cells",
                    "tasks": [
                        base64.b64encode(pickle.dumps(state.tasks[index])).decode(
                            "ascii"
                        )
                        for index in held
                    ],
                }
                stream.write(json.dumps(request).encode("utf-8") + b"\n")
                stream.flush()
                remaining: Set[int] = set(range(len(held)))
                # Read through the "done" frame even once every cell has
                # reported — leaving it unread would desynchronise the next
                # lease on this connection.
                while True:
                    line = stream.readline()
                    if not line:
                        raise EOFError("node closed the connection mid-lease")
                    event = json.loads(line.decode("utf-8"))
                    kind = event.get("event")
                    if kind == "cell_result":
                        local = int(event["index"])
                        results = pickle.loads(
                            base64.b64decode(event["payload"])
                        )
                        state.complete(held[local], results)
                        remaining.discard(local)
                    elif kind == "cell_error":
                        # The task itself failed (infeasible cell, simulation
                        # error) — deterministic, so reassignment cannot help:
                        # surface it exactly like local execution would.
                        remaining.discard(int(event["index"]))
                        state.fail(
                            _node_error(
                                str(event.get("kind", "ReproError")),
                                str(event.get("error", "")),
                            )
                        )
                    elif kind == "done":
                        if remaining:
                            raise EOFError(
                                f"lease finished with {len(remaining)} "
                                "unreported cell(s)"
                            )
                        break
                    elif kind == "error":
                        # Request-level rejection: the node is alive but does
                        # not understand the lease (version skew, bad frame).
                        # Retrying elsewhere would loop, so fail the sweep.
                        state.fail(
                            ServiceError(
                                f"node {node} rejected a lease: "
                                f"{event.get('error', 'unknown error')}"
                            )
                        )
                        return False
                    # Unknown events are ignored — forward-compatible with
                    # chattier future servers.
                held = []
        except _NODE_FAULTS as failure:
            state.release(node, held, failure)
            return False

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop accepting joiners and drop parked worker connections."""
        with self._lock:
            self._closed = True
            listener, self._listener = self._listener, None
            parked = list(self._joined)
            self._joined.clear()
        if listener is not None:
            listener.close()
        for conn, stream, _name in parked:
            _hang_up(conn, stream)

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
