"""Plan building and task execution — the shared cell-scheduling core.

A sweep's execution decomposes into an ordered list of :class:`CellTask`
work items: either one ``(cell, trial)`` run or a whole trial-batched cell.
:func:`build_sweep_plan` makes every per-cell decision — seed derivation,
trial batching, plan hoisting, record mode — exactly once, so serial,
thread-pool, process-pool, and async-service execution cannot drift apart;
:func:`execute_task` is the single runner each of them dispatches.

The scheduler core deliberately contains no execution policy (pools, event
loops, caches): those live in :mod:`repro.scheduling.executors` and
:mod:`repro.service`, all consuming the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Mapping, Optional, Tuple

import numpy as np

from repro.api.backends import Backend, SemanticSimBackend, TimingSimBackend
from repro.api.result import RunResult
from repro.api.spec import JobSpec
from repro.exceptions import (
    AnalyticIntractableError,
    ConfigurationError,
    ReproError,
    SimulationError,
)
from repro.schemes.base import ExecutionPlan
from repro.utils.rng import RandomState, as_generator, random_seed_sequence

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.api.sweep import Sweep

__all__ = [
    "CellTask",
    "SweepPlan",
    "build_sweep_plan",
    "describe_task",
    "execute_task",
    "hoist_cell_plan",
    "probe_rng_free_plan",
    "should_batch_cell",
]


@dataclass(frozen=True)
class CellTask:
    """One schedulable unit of sweep work.

    ``kind="trial"`` executes a single ``(cell, trial)`` run — ``spec``
    already carries the trial's seed; ``kind="cell"`` dispatches the whole
    cell as one trial-batched engine entry over ``seeds``. Either way the
    task is self-contained (backend, spec, record mode), so it can run in
    this thread, a pool worker, or an event-loop executor unchanged.

    Attributes
    ----------
    kind:
        ``"trial"`` or ``"cell"``.
    backend:
        The backend instance executing the task.
    spec:
        The fully derived cell spec (per-trial seed applied for
        ``"trial"`` tasks; seedless cell spec for ``"cell"`` tasks).
    record:
        ``"full"`` or ``"summary"`` (see :mod:`repro.api.result`).
    cell:
        Index of the sweep cell this task belongs to.
    params:
        The cell's swept parameter assignment — carried so failures and
        cache keys can name the configuration without replay.
    trials:
        The trial indices this task produces, in order.
    seeds:
        The spawned per-trial seeds of a ``"cell"`` task; ``None`` for
        ``"trial"`` tasks.
    """

    kind: str
    backend: Backend
    spec: JobSpec
    record: str
    cell: int
    params: Mapping[str, object]
    trials: Tuple[int, ...]
    seeds: Optional[Tuple[RandomState, ...]] = None

    @property
    def entries(self) -> Tuple[Tuple[int, Mapping[str, object], int], ...]:
        """The ``(cell, params, trial)`` layout of the task's results."""
        return tuple((self.cell, self.params, trial) for trial in self.trials)


@dataclass(frozen=True)
class SweepPlan:
    """The complete, execution-independent schedule of one sweep.

    Attributes
    ----------
    tasks:
        The work items, in deterministic cell-then-trial order.
    parameter_names:
        The sweep's axis names (carried into the result).
    trials:
        Monte-Carlo replications per cell.
    sequential:
        ``True`` when the tasks thread shared state (the ``"shared"`` seed
        strategy's single generator) and therefore must execute one after
        another, in order; ``run_sweep`` refuses to hand such plans to any
        executor whose ``sequential_safe`` flag is not ``True``.
    """

    tasks: Tuple[CellTask, ...]
    parameter_names: Tuple[str, ...]
    trials: int
    sequential: bool = False


def describe_task(task: CellTask) -> str:
    """A one-line identification of a task for error messages and logs.

    Names the cell index and the swept parameter values, so a failing cell
    in a large grid is identifiable without replaying the sweep.
    """
    if task.params:
        assignment = ", ".join(
            f"{key}={value!r}" for key, value in task.params.items()
        )
        return f"sweep cell {task.cell} ({assignment})"
    return f"sweep cell {task.cell}"


def probe_rng_free_plan(spec: JobSpec) -> Optional[ExecutionPlan]:
    """The spec's execution plan if planning consumes no randomness, else None.

    Builds the plan with a probe generator and compares the generator's
    state before and after: an unchanged state proves the placement cannot
    depend on the trial's seed, so one plan can stand in for every trial —
    and for every seeding strategy — without changing a single draw. Random
    placements (and anything that fails to plan; the real run will surface
    the error with full context) return ``None``.
    """
    if spec.cluster is None or isinstance(spec.scheme, ExecutionPlan):
        return None
    try:
        scheme = spec.resolve_scheme()
        # reprolint: allow[RNG001] reason=state-probe generator; draws are discarded and the unchanged-state check is the whole point
        probe = np.random.default_rng(0)
        state = probe.bit_generator.state
        plan = scheme.build_feasible_plan(
            spec.resolved_num_units, spec.cluster.num_workers, probe
        )
        if probe.bit_generator.state != state:
            return None
        return plan
    except ReproError:
        # Only the library's own failure hierarchy is a "cannot hoist"
        # signal (infeasible plans, bad configs, allocation failures);
        # programming errors must propagate, not be silently hoover-ed up —
        # EXC002 keeps catch-alls out of this core.
        return None


def hoist_cell_plan(backend: Backend, spec: JobSpec, trials: int) -> JobSpec:
    """Per-cell plan hoisting: re-plan once per cell when provably safe.

    Only the simulation backends understand a plan-carrying spec, and
    hoisting only pays with several trials; beyond that the safety argument
    is :func:`probe_rng_free_plan`'s — draw-free planning means the hoisted
    spec runs bit-identically to the original on both engines, under both
    seeding strategies.
    """
    if trials < 2 or not isinstance(backend, (TimingSimBackend, SemanticSimBackend)):
        return spec
    plan = probe_rng_free_plan(spec)
    if plan is None:
        return spec
    return spec.replace(scheme=plan)


def should_batch_cell(
    backend: Backend, spec: JobSpec, trials: int, trial_batching: str
) -> bool:
    """Whether one cell should run as a single trial-batched task.

    ``"never"`` and single-trial cells keep per-trial tasks; otherwise the
    backend must support trial batching for this spec (a vectorized-engine
    :class:`~repro.api.backends.TimingSimBackend`). ``"always"`` then
    batches unconditionally (one placement per cell for random schemes —
    the documented :func:`~repro.simulation.vectorized.simulate_job_batch`
    semantics) while ``"auto"`` additionally demands draw-free planning, the
    condition under which batching is bit-identical to per-trial execution.
    """
    if trial_batching == "never" or trials < 2:
        return False
    if not isinstance(backend, TimingSimBackend):
        return False
    try:
        if not backend.supports_trial_batching(spec, num_trials=trials):
            return False
    except ConfigurationError:
        return False
    if trial_batching == "always":
        return True
    return probe_rng_free_plan(spec) is not None


def build_sweep_plan(
    sweep: "Sweep",
    *,
    backend: Backend,
    record: str = "full",
    trial_batching: str = "auto",
    pickle_safe: bool = False,
    hoist: Optional[object] = None,
) -> SweepPlan:
    """Expand a sweep into its :class:`CellTask` schedule.

    Every per-cell decision is made here, once, independent of execution:
    seed derivation (spawned children or the shared generator), whether a
    cell dispatches as one trial-batched task, and whether its plan is
    hoisted. ``pickle_safe=True`` disables plan hoisting — a hoisted plan
    carries scheme-defined closures that may not pickle, so plans destined
    for a process pool stay pickle-clean (results are unaffected either
    way: hoisting only happens when it cannot change a draw, and cell tasks
    re-plan inside the worker).

    ``hoist`` is an injection point for the hoisting function (used by
    tests to force hoisting off); ``None`` uses :func:`hoist_cell_plan`.
    """
    hoister = hoist_cell_plan if hoist is None else hoist
    cells = sweep.cells()
    tasks: List[CellTask] = []

    if sweep.seed_strategy == "shared":
        generator = as_generator(sweep.base.seed)
        for index, params in enumerate(cells):
            cell_spec = sweep.base.with_overrides(params)
            if not pickle_safe:
                cell_spec = hoister(backend, cell_spec, sweep.trials)
            for trial in range(sweep.trials):
                tasks.append(
                    CellTask(
                        kind="trial",
                        backend=backend,
                        spec=cell_spec.replace(seed=generator),
                        record=record,
                        cell=index,
                        params=params,
                        trials=(trial,),
                    )
                )
        return SweepPlan(
            tasks=tuple(tasks),
            parameter_names=tuple(sweep.parameters),
            trials=sweep.trials,
            sequential=True,
        )

    root = random_seed_sequence(sweep.base.seed)
    children = root.spawn(len(cells) * sweep.trials)
    for index, params in enumerate(cells):
        cell_spec = sweep.base.with_overrides(params)
        cell_children = children[index * sweep.trials : (index + 1) * sweep.trials]
        if should_batch_cell(backend, cell_spec, sweep.trials, trial_batching):
            tasks.append(
                CellTask(
                    kind="cell",
                    backend=backend,
                    spec=cell_spec,
                    record=record,
                    cell=index,
                    params=params,
                    trials=tuple(range(sweep.trials)),
                    seeds=tuple(cell_children),
                )
            )
            continue
        if not pickle_safe:
            cell_spec = hoister(backend, cell_spec, sweep.trials)
        for trial, child in enumerate(cell_children):
            tasks.append(
                CellTask(
                    kind="trial",
                    backend=backend,
                    spec=cell_spec.replace(seed=child),
                    record=record,
                    cell=index,
                    params=params,
                    trials=(trial,),
                )
            )
    return SweepPlan(
        tasks=tuple(tasks),
        parameter_names=tuple(sweep.parameters),
        trials=sweep.trials,
    )


def execute_task(task: CellTask) -> List[RunResult]:
    """Execute one task — a single (cell, trial) run or a whole cell.

    Either way a list of results comes back (one per trial), compacted when
    ``record="summary"`` so only aggregates cross a process pool's pickle
    boundary. Failures are re-raised with the task's cell index and swept
    parameter values attached (see :func:`describe_task`), so one bad cell
    in a large grid is identifiable without replay.
    """
    spec = task.spec
    try:
        if task.kind == "cell":
            assert task.seeds is not None
            return task.backend.run_batch(  # type: ignore[attr-defined]
                spec, list(task.seeds), record=task.record
            )
        result = task.backend.run(spec)
        if task.record == "summary":
            result = result.compact()
        return [result]
    except AnalyticIntractableError as error:
        # Surface which sweep cell fell outside the closed-form regime —
        # with dozens of cells, "which configuration?" is the question.
        raise AnalyticIntractableError(
            f"{describe_task(task)} (scheme={spec.scheme!r}, "
            f"serialize_master_link={spec.serialize_master_link}) has no "
            f"closed-form runtime: {error}"
        ) from error
    except SimulationError as error:
        # Same courtesy for simulation failures: name the cell. The usual
        # cause is a dynamic cluster whose churn removed the last holders of
        # a data unit; the churn ablation driver (repro.experiments.churn)
        # reports such cells as FAILED instead of aborting.
        raise SimulationError(
            f"{describe_task(task)} (scheme={spec.scheme!r}) could not "
            f"complete: {error}"
        ) from error
