"""``python -m repro`` — the package's front-door command.

Delegates to the experiments CLI, which hosts every sub-command::

    python -m repro lint src/repro --format json
    python -m repro fig2
    python -m repro sweep --scheme bcc --loads 5,10,25
"""

from __future__ import annotations

import sys

from repro.experiments.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
