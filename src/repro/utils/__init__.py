"""Shared utilities: RNG handling, timing, validation, and text tables."""

from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.timing import Timer, WallClock, SimulatedClock
from repro.utils.validation import (
    check_positive_int,
    check_nonnegative,
    check_probability,
    check_in_range,
    check_array_1d,
    check_array_2d,
)
from repro.utils.tables import TextTable, format_seconds

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "Timer",
    "WallClock",
    "SimulatedClock",
    "check_positive_int",
    "check_nonnegative",
    "check_probability",
    "check_in_range",
    "check_array_1d",
    "check_array_2d",
    "TextTable",
    "format_seconds",
]
