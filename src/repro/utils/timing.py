"""Clocks and timers.

Two clock implementations share one tiny interface:

* :class:`WallClock` — real elapsed time via :func:`time.perf_counter`; used by
  the multiprocessing runtime.
* :class:`SimulatedClock` — a manually advanced clock used by the discrete
  event simulator, so simulated experiments are deterministic and run in
  microseconds of real time regardless of the simulated duration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from repro.exceptions import ConfigurationError
from typing import Optional

__all__ = ["Clock", "WallClock", "SimulatedClock", "Timer", "utc_timestamp"]


def utc_timestamp() -> str:
    """The current UTC time as an ISO-8601 ``...Z`` string.

    The one sanctioned wall-clock *date* read: benchmark histories and
    validation records stamp their entries through this helper so the
    simulation and analysis packages themselves never touch the host clock
    (the reprolint TIME001 contract).
    """
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class Clock:
    """Minimal clock interface: :meth:`now` returns seconds as ``float``."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class WallClock(Clock):
    """Real wall-clock time, measured relative to construction."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def now(self) -> float:
        """Seconds elapsed since this clock was created."""
        return time.perf_counter() - self._start


class SimulatedClock(Clock):
    """A clock advanced explicitly by the discrete-event simulator."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError(f"start time must be non-negative, got {start}")
        self._time = float(start)

    def now(self) -> float:
        return self._time

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Moving backwards would corrupt event ordering, so it raises
        :class:`~repro.exceptions.ConfigurationError` (a ``ValueError``)
        instead of proceeding silently.
        """
        if t < self._time:
            raise ConfigurationError(
                f"cannot move simulated clock backwards from {self._time} to {t}"
            )
        self._time = float(t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt >= 0`` seconds."""
        if dt < 0:
            raise ConfigurationError(f"dt must be non-negative, got {dt}")
        self._time += float(dt)


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started: Optional[float] = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._started is not None
        self.elapsed += time.perf_counter() - self._started
        self._started = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._started = None
