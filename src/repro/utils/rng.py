"""Seeded random-number-generator helpers.

Every stochastic component of the library (data generators, straggler delay
models, random data assignments, simulators) accepts a ``seed`` argument that
may be ``None``, an integer, or an existing :class:`numpy.random.Generator`.
This module centralises the conversion so behaviour is reproducible and the
convention is identical everywhere.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.exceptions import ConfigurationError
import numpy as np

__all__ = ["RandomState", "as_generator", "spawn_generators"]

#: The union of accepted "seed-like" values across the library.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so callers can share one
        stream across components).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    # reprolint: allow[EXC001] reason=wrong seed type is a programming error; TypeError propagates unchanged by the hierarchy contract
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator; got {type(seed)!r}"
    )


def spawn_generators(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Used by the multi-process runtime and by Monte-Carlo sweeps so that each
    worker / trial has its own stream while the whole experiment remains
    reproducible from a single integer.

    Parameters
    ----------
    seed:
        Any accepted seed-like value.
    count:
        Number of independent generators to create. Must be positive.
    """
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive child seeds from the generator itself to stay reproducible.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    if isinstance(seed, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in seed.spawn(count)]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]


def random_seed_sequence(seed: RandomState = None) -> np.random.SeedSequence:
    """Return a :class:`numpy.random.SeedSequence` derived from ``seed``."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


def permutation(seed: RandomState, n: int) -> np.ndarray:
    """Return a random permutation of ``range(n)`` drawn from ``seed``."""
    return as_generator(seed).permutation(n)


def choice_without_replacement(
    seed: RandomState, population: int, size: int
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``."""
    if size > population:
        raise ConfigurationError(
            f"cannot draw {size} distinct items from a population of {population}"
        )
    return as_generator(seed).choice(population, size=size, replace=False)
