"""A list that counts its mutations, for version-keyed caches.

Aggregates over a growing list (a job's iteration outcomes, a sweep's
records) are recomputed constantly by report tables. Caching them needs an
invalidation key, and ``len()`` alone is not one: replacing an element at an
unchanged length would serve stale totals. :class:`CountingList` bumps a
``version`` counter on *every* mutating operation, so ``(version, len)`` is
a sound cache key — the pattern :class:`~repro.simulation.job.JobResult` and
:class:`~repro.api.sweep.SweepResult` both build on.
"""

from __future__ import annotations

__all__ = ["CountingList"]


class CountingList(list):
    """A list whose ``version`` attribute counts its mutations."""

    # Class-level default: unpickling rebuilds the list through append()
    # before __init__ runs, so the counter must resolve without an instance
    # attribute.
    version = 0

    def __init__(self, iterable=()) -> None:
        super().__init__(iterable)
        self.version = 0


def _make_counting(name: str):
    method = getattr(list, name)

    def counting(self, *args, **kwargs):
        result = method(self, *args, **kwargs)
        self.version += 1
        return result

    counting.__name__ = name
    return counting


for _name in (
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "sort",
    "reverse",
    "__setitem__",
    "__delitem__",
    "__iadd__",
    "__imul__",
):
    setattr(CountingList, _name, _make_counting(_name))
del _name
