"""Argument-validation helpers.

These helpers keep validation messages consistent across the library and
keep constructors short. Domain failures raise
:class:`~repro.exceptions.ConfigurationError` (which keeps ``ValueError``
as a base for backwards compatibility); a wrong *type* is a caller
programming error and still raises ``TypeError``, which the
:mod:`repro.exceptions` hierarchy deliberately lets propagate unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "check_positive_int",
    "check_nonnegative",
    "check_probability",
    "check_in_range",
    "check_array_1d",
    "check_array_2d",
]


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 1`` and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        # reprolint: allow[EXC001] reason=wrong type is a programming error; TypeError propagates unchanged by the documented hierarchy contract
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def check_nonnegative(value, name: str) -> float:
    """Validate that ``value`` is a finite number ``>= 0`` and return it as ``float``."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ConfigurationError(
            f"{name} must be a finite non-negative number, got {value}"
        )
    return value


def check_probability(value, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in_range(
    value,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    value = float(value)
    if low is not None:
        if inclusive and value < low:
            raise ConfigurationError(f"{name} must be >= {low}, got {value}")
        if not inclusive and value <= low:
            raise ConfigurationError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if inclusive and value > high:
            raise ConfigurationError(f"{name} must be <= {high}, got {value}")
        if not inclusive and value >= high:
            raise ConfigurationError(f"{name} must be < {high}, got {value}")
    return value


def check_array_1d(array, name: str, *, length: Optional[int] = None) -> np.ndarray:
    """Coerce ``array`` to a 1-D float ndarray, optionally checking its length."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if length is not None and arr.shape[0] != length:
        raise ConfigurationError(
            f"{name} must have length {length}, got {arr.shape[0]}"
        )
    return arr


def check_array_2d(
    array,
    name: str,
    *,
    rows: Optional[int] = None,
    cols: Optional[int] = None,
) -> np.ndarray:
    """Coerce ``array`` to a 2-D float ndarray, optionally checking its shape."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if rows is not None and arr.shape[0] != rows:
        raise ConfigurationError(f"{name} must have {rows} rows, got {arr.shape[0]}")
    if cols is not None and arr.shape[1] != cols:
        raise ConfigurationError(
            f"{name} must have {cols} columns, got {arr.shape[1]}"
        )
    return arr
