"""Plain-text table rendering for experiment reports.

The experiment harness reproduces the paper's Tables I and II and prints the
series behind Figures 2, 4 and 5. This module renders those results as
aligned monospace tables without any third-party dependency so that bench
output is readable directly in a terminal or a CI log.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from typing import Iterable, List, Sequence, Union

__all__ = ["TextTable", "format_seconds", "format_float"]

Cell = Union[str, int, float]


def format_float(value: float, digits: int = 3) -> str:
    """Format a float with a fixed number of decimal digits."""
    return f"{value:.{digits}f}"


def format_seconds(value: float, digits: int = 3) -> str:
    """Format a duration in seconds, e.g. ``'4.205 s'``."""
    return f"{value:.{digits}f} s"


class TextTable:
    """A minimal monospace table builder.

    Example
    -------
    >>> table = TextTable(["scheme", "K", "total (s)"])
    >>> table.add_row(["BCC", 11, 4.205])
    >>> table.add_row(["uncoded", 50, 28.786])
    >>> print(table.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], *, title: str = "") -> None:
        if not headers:
            raise ConfigurationError("a table needs at least one column")
        self.title = title
        self.headers: List[str] = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append one row; numeric cells are formatted with 3 decimals."""
        formatted: List[str] = []
        for cell in cells:
            if isinstance(cell, bool):
                formatted.append(str(cell))
            elif isinstance(cell, float):
                formatted.append(format_float(cell))
            else:
                formatted.append(str(cell))
        if len(formatted) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(formatted)} cells but the table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(formatted)

    def _widths(self) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render the table (title, header, separator, rows) as a string."""
        widths = self._widths()
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
