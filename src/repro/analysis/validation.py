"""Cross-validation of the real runtime against the simulators.

The closed loop the paper implies but never automates: run **real** coded
gradient descent (one OS process per worker) under an injected straggler
scenario, replay the *identical* scenario through the discrete-event
simulator, and compare the runtimes the two substrates report. The scenario
is a :class:`~repro.cluster.dynamic.DynamicClusterSpec` with a **pinned**
scenario seed, so its materialised timeline (regimes, preemptions, churn) is
bit-identical on every substrate; only the realised completion-time draws
differ, and with a few dozen iterations their means concentrate enough to
gate on a ratio tolerance.

What is compared
----------------
Per scheme, the **observed** wall-clock seconds of the multiprocess run
(injected sleeps dominating; loopback IPC adds small overhead) against the
**predicted** seconds from :class:`~repro.api.backends.TimingSimBackend`
averaged over a handful of trials. The closed-form
:class:`~repro.api.backends.AnalyticBackend` supplies a third column where
tractable — evaluated on the scenario's *stationary base cluster*, since the
closed forms do not cover non-stationary dynamics — as a sanity anchor, not
a gated quantity.

Tolerance
---------
The gate is ``|observed/predicted - 1| <= tolerance`` with a default
tolerance of **0.35** (35%), documented in ``docs/validation.rst``. The
budget decomposes as roughly 3-5x the standard error of the two run means
(each a mean over ``num_iterations`` order-statistic maxima with standard
deviation of a few percent) plus a few percent of systematic overhead bias
(process scheduling, queue hops) on the real side. Scenarios are calibrated
so the injected delays sit in the tens of milliseconds — far above the IPC
overhead, far below anything that would make the suite slow.

Timestamps come from :func:`repro.utils.timing.utc_timestamp` at the CLI
boundary; this module never reads the host clock (the TIME001 contract),
so every function here is a pure function of its inputs.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.dynamic import ChurnEvent, DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.exceptions import AnalyticIntractableError, ConfigurationError
from repro.runtime.faults import build_fault_schedule
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import ShiftedExponentialDelay
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive_int

__all__ = [
    "DEFAULT_TOLERANCE",
    "SchemeValidation",
    "ValidationReport",
    "ValidationScenario",
    "append_validation_record",
    "golden_scenarios",
    "load_benchmark_history",
    "golden_trace",
    "validate_scenario",
]

#: Documented observed-vs-predicted ratio tolerance (see module docstring
#: and ``docs/validation.rst``).
DEFAULT_TOLERANCE = 0.35


@dataclass(frozen=True)
class ValidationScenario:
    """One pinned cross-validation scenario: cluster, faults, and schemes.

    Everything is plain data (process configs, not process objects), so a
    scenario is JSON-serialisable and the golden fixtures can pin its exact
    identity alongside its outputs.

    Attributes
    ----------
    name, description:
        Identity for reports and benchmark records.
    num_workers, num_units, unit_size, num_features:
        Job geometry; the workload is a seeded synthetic least-squares
        problem with ``num_units * unit_size`` examples.
    num_iterations:
        GD iterations per run (the averaging horizon of the ratio gate).
    sim_trials:
        Timing-simulation trials averaged into the predicted seconds.
    real_trials:
        Multiprocess runs (at derived seeds) averaged into the observed
        seconds; a single realisation of a bursty scenario carries ~10%
        draw noise over two dozen iterations, so both sides of the ratio
        are means.
    schemes:
        Scheme configs (registry mappings) validated in order.
    seconds_per_example, straggling:
        Shift-exponential computation calibration (shift per example and
        the straggling rate ``mu``; the tail over ``k`` examples has mean
        ``k / mu`` seconds).
    comm_latency, comm_seconds_per_unit, comm_jitter:
        Linear communication calibration (see
        :class:`~repro.stragglers.communication.LinearCommunicationModel`).
    dynamics:
        Optional registered worker-process config applied to every worker
        (e.g. ``{"name": "markov", "slowdown": 4.0}``).
    events, initially_absent:
        Scripted churn, as :class:`~repro.cluster.dynamic.ChurnEvent`
        mappings and initially-vacant slots.
    scenario_seed:
        The **pinned** dynamics seed: with it set, materialising the
        cluster draws nothing from the job RNG, so the real run and every
        simulation trial replay the identical timeline.
    seed:
        Base spec seed (plan placement and the real run's schedule draws).
    fault_mode:
        How the real workers realise vacant cells (``"mute"``/``"respawn"``).
    tolerance:
        Ratio gate for this scenario.
    """

    name: str
    description: str = ""
    num_workers: int = 4
    num_units: int = 4
    unit_size: int = 3
    num_features: int = 4
    num_iterations: int = 24
    sim_trials: int = 6
    real_trials: int = 3
    schemes: Tuple[Mapping[str, object], ...] = (
        {"name": "uncoded"},
        {"name": "cyclic-repetition", "load": 3},
    )
    seconds_per_example: float = 2.0e-3
    straggling: float = 600.0
    comm_latency: float = 1.0e-3
    comm_seconds_per_unit: float = 2.0e-3
    comm_jitter: float = 2.0e-2
    dynamics: Optional[Mapping[str, object]] = None
    events: Tuple[Mapping[str, object], ...] = ()
    initially_absent: Tuple[int, ...] = ()
    scenario_seed: int = 0
    seed: int = 0
    fault_mode: str = "mute"
    tolerance: float = DEFAULT_TOLERANCE

    def __post_init__(self) -> None:
        check_positive_int(self.num_iterations, "num_iterations")
        check_positive_int(self.sim_trials, "sim_trials")
        check_positive_int(self.real_trials, "real_trials")
        if not self.schemes:
            raise ConfigurationError(f"scenario {self.name!r} lists no schemes")
        if self.tolerance <= 0:
            raise ConfigurationError(
                f"tolerance must be positive, got {self.tolerance}"
            )

    # ------------------------------------------------------------------ #
    @property
    def num_examples(self) -> int:
        """Total synthetic training examples."""
        return self.num_units * self.unit_size

    def base_cluster(self) -> ClusterSpec:
        """The stationary base cluster (also the analytic anchor's input)."""
        compute = ShiftedExponentialDelay(
            straggling=self.straggling,
            shift=self.seconds_per_example,
        )
        communication = LinearCommunicationModel(
            latency=self.comm_latency,
            seconds_per_unit=self.comm_seconds_per_unit,
            jitter=self.comm_jitter,
        )
        return ClusterSpec.homogeneous(self.num_workers, compute, communication)

    def build_cluster(self) -> DynamicClusterSpec:
        """The scenario's dynamic cluster with its pinned timeline seed."""
        events = tuple(ChurnEvent(**dict(event)) for event in self.events)
        return DynamicClusterSpec(
            self.base_cluster(),
            dynamics=dict(self.dynamics) if self.dynamics is not None else None,
            events=events,
            initially_absent=self.initially_absent,
            seed=self.scenario_seed,
        )

    def quick(self) -> "ValidationScenario":
        """A scaled-down copy for smoke runs (fewer iterations and trials).

        The shorter averaging horizon roughly doubles the standard error of
        the run means, so the gate widens to twice the scenario tolerance —
        the smoke run checks the loop end-to-end, not the calibration.
        """
        return replace(
            self,
            num_iterations=max(6, self.num_iterations // 4),
            sim_trials=max(2, self.sim_trials // 3),
            real_trials=1,
            tolerance=2.0 * self.tolerance,
        )

    def to_config(self) -> Dict[str, object]:
        """This scenario as plain JSON data (golden-fixture identity)."""
        return {
            "name": self.name,
            "num_workers": self.num_workers,
            "num_units": self.num_units,
            "unit_size": self.unit_size,
            "num_iterations": self.num_iterations,
            "schemes": [dict(scheme) for scheme in self.schemes],
            "dynamics": dict(self.dynamics) if self.dynamics else None,
            "events": [dict(event) for event in self.events],
            "initially_absent": list(self.initially_absent),
            "scenario_seed": self.scenario_seed,
            "seed": self.seed,
            "fault_mode": self.fault_mode,
        }


def golden_scenarios() -> Tuple[ValidationScenario, ValidationScenario]:
    """The two pinned scenarios the validation gate (and fixtures) use.

    ``markov-bursts``
        Every worker's computation is modulated by a two-state Markov chain
        (bursty slowdowns, never vacant), so every scheme — including
        uncoded, which tolerates no absence — runs to completion.
    ``preempt-respawn``
        Spot-instance-style preemptions plus a scripted delayed join, run in
        ``"respawn"`` mode (killed workers exit; the master respawns the
        slot at rejoin). Schemes are the deterministically straggler-tolerant
        ones (cyclic repetition at load 3 tolerates any 2 absences), and the
        pinned scenario seed keeps at least ``n - 2`` slots active in every
        iteration — asserted by the golden fixture's availability trace.
    """
    markov = ValidationScenario(
        name="markov-bursts",
        description="bursty Markov-modulated slowdowns, no vacancies",
        num_workers=4,
        num_units=4,
        unit_size=3,
        num_iterations=24,
        sim_trials=6,
        schemes=(
            {"name": "uncoded"},
            {"name": "cyclic-repetition", "load": 3},
            {"name": "bcc", "load": 3},
        ),
        dynamics={"name": "markov", "slowdown": 5.0, "p_slow": 0.2, "p_recover": 0.5},
        scenario_seed=2,
        seed=5,
        fault_mode="mute",
    )
    preempt = ValidationScenario(
        name="preempt-respawn",
        description="spot-style preemptions with kill-and-respawn recovery",
        num_workers=5,
        num_units=5,
        unit_size=3,
        num_iterations=24,
        sim_trials=6,
        schemes=(
            {"name": "cyclic-repetition", "load": 3},
            {"name": "reed-solomon", "load": 3},
        ),
        dynamics={
            "name": "preempt",
            "preempt_probability": 0.12,
            "recovery_iterations": 2,
        },
        events=({"kind": "join", "worker": 4, "iteration": 4},),
        initially_absent=(4,),
        # Pinned so the availability trace keeps >= n - 2 = 3 slots active in
        # every iteration (cyclic/RS load 3 tolerate exactly 2 absences)
        # while still preempting 24 of the 120 cells.
        scenario_seed=9,
        seed=9,
        fault_mode="respawn",
    )
    return markov, preempt


# --------------------------------------------------------------------------- #
@dataclass
class SchemeValidation:
    """Observed-vs-predicted comparison for one scheme in one scenario."""

    scheme_name: str
    observed_seconds: float
    predicted_seconds: float
    tolerance: float
    analytic_seconds: Optional[float] = None
    fault_fingerprint: str = ""
    scheduled_workers: List[int] = field(default_factory=list)
    observed_iteration_seconds: List[float] = field(default_factory=list)
    predicted_iteration_seconds: float = 0.0

    @property
    def ratio(self) -> float:
        """Observed wall-clock over simulator-predicted seconds."""
        if self.predicted_seconds <= 0:
            raise ConfigurationError(
                f"scheme {self.scheme_name!r} predicted non-positive seconds"
            )
        return self.observed_seconds / self.predicted_seconds

    @property
    def ratio_error(self) -> float:
        """``|ratio - 1|`` — the gated quantity."""
        return abs(self.ratio - 1.0)

    @property
    def within_tolerance(self) -> bool:
        """Whether this scheme passes the scenario's ratio gate."""
        return self.ratio_error <= self.tolerance

    def to_record(self) -> Dict[str, object]:
        """Machine-readable summary for the benchmark history."""
        record: Dict[str, object] = {
            "scheme": self.scheme_name,
            "observed_seconds": float(self.observed_seconds),
            "predicted_seconds": float(self.predicted_seconds),
            "ratio": float(self.ratio),
            "within_tolerance": bool(self.within_tolerance),
        }
        if self.analytic_seconds is not None:
            record["analytic_seconds"] = float(self.analytic_seconds)
        if self.fault_fingerprint:
            record["fault_fingerprint"] = self.fault_fingerprint
        return record


@dataclass
class ValidationReport:
    """Every scheme's comparison for one scenario, plus the gate verdict."""

    scenario: ValidationScenario
    results: List[SchemeValidation] = field(default_factory=list)

    @property
    def all_within_tolerance(self) -> bool:
        """Whether every scheme passed the ratio gate."""
        return all(result.within_tolerance for result in self.results)

    @property
    def worst_ratio_error(self) -> float:
        """The largest ``|ratio - 1|`` across schemes."""
        if not self.results:
            raise ConfigurationError("the report holds no results")
        return max(result.ratio_error for result in self.results)

    def to_record(self) -> Dict[str, object]:
        """Machine-readable record (appended to the benchmark history)."""
        return {
            "test": f"validate:{self.scenario.name}",
            "tolerance": float(self.scenario.tolerance),
            "num_iterations": self.scenario.num_iterations,
            "sim_trials": self.scenario.sim_trials,
            "fault_mode": self.scenario.fault_mode,
            "all_within_tolerance": bool(self.all_within_tolerance),
            "schemes": [result.to_record() for result in self.results],
        }

    def to_table(self) -> TextTable:
        """Human-readable comparison table."""
        table = TextTable(
            ["scheme", "observed (s)", "sim predicted (s)", "analytic (s)",
             "ratio", "gate"],
            title=(
                f"Cross-validation — {self.scenario.name}: "
                f"{self.scenario.description} "
                f"({self.scenario.num_iterations} iterations, "
                f"tolerance {self.scenario.tolerance:.0%})"
            ),
        )
        for result in self.results:
            table.add_row(
                [
                    result.scheme_name,
                    f"{result.observed_seconds:.3f}",
                    f"{result.predicted_seconds:.3f}",
                    "-"
                    if result.analytic_seconds is None
                    else f"{result.analytic_seconds:.3f}",
                    f"{result.ratio:.3f}",
                    "ok" if result.within_tolerance else "FAIL",
                ]
            )
        return table


# --------------------------------------------------------------------------- #
def _build_workload(scenario: ValidationScenario):
    """The seeded synthetic least-squares workload the real run trains."""
    from repro.api import Workload
    from repro.datasets.batching import make_batches
    from repro.datasets.synthetic import make_linear_regression_data
    from repro.gradients.least_squares import LeastSquaresLoss
    from repro.optim.gradient_descent import GradientDescent

    dataset, _ = make_linear_regression_data(
        scenario.num_examples, scenario.num_features, seed=scenario.seed
    )
    return Workload(
        model=LeastSquaresLoss(),
        dataset=dataset,
        optimizer=GradientDescent(0.05),
        unit_spec=make_batches(scenario.num_examples, scenario.unit_size),
    )


def validate_scenario(scenario: ValidationScenario) -> ValidationReport:
    """Run one scenario on real workers and through the simulators.

    For each scheme: ``scenario.real_trials`` multiprocess runs under the
    scenario's injected fault schedule (observed seconds, averaged),
    ``scenario.sim_trials`` timing simulations of the identical pinned
    timeline at derived seeds (predicted seconds, averaged), and — where the
    closed forms are tractable — the analytic expectation on the stationary
    base cluster. The availability timeline is bit-identical on every run of
    both substrates (the scenario seed pins it); only the completion-time
    draws vary, which is exactly what the means wash out.
    """
    # Function-level API imports: repro.api.backends imports repro.analysis,
    # so the module level would be a cycle.
    from repro.api import JobSpec, run

    cluster = scenario.build_cluster()
    workload = _build_workload(scenario)
    report = ValidationReport(scenario=scenario)
    for scheme in scenario.schemes:
        observed_totals = []
        observed = None
        for trial in range(scenario.real_trials):
            spec = JobSpec(
                scheme=dict(scheme),
                cluster=cluster,
                num_iterations=scenario.num_iterations,
                serialize_master_link=False,
                seed=scenario.seed + 1000 * trial,
                workload=workload,
                backend_options={"fault_mode": scenario.fault_mode},
            )
            result = run(spec, backend="multiprocess")
            observed = observed if observed is not None else result
            observed_totals.append(result.total_seconds)

        predicted_totals = []
        for trial in range(scenario.sim_trials):
            sim_spec = JobSpec(
                scheme=dict(scheme),
                cluster=cluster,
                num_units=scenario.num_units,
                unit_size=scenario.unit_size,
                num_iterations=scenario.num_iterations,
                serialize_master_link=False,
                seed=scenario.seed + 1 + trial,
            )
            predicted_totals.append(run(sim_spec, backend="timing").total_time)
        predicted = float(np.mean(predicted_totals))

        analytic_seconds: Optional[float] = None
        try:
            analytic_spec = JobSpec(
                scheme=dict(scheme),
                cluster=scenario.base_cluster(),
                num_units=scenario.num_units,
                unit_size=scenario.unit_size,
                num_iterations=scenario.num_iterations,
                serialize_master_link=False,
                seed=scenario.seed,
            )
            analytic_seconds = float(
                run(analytic_spec, backend="analytic").total_time
            )
        except AnalyticIntractableError:
            analytic_seconds = None

        assert observed is not None
        report.results.append(
            SchemeValidation(
                scheme_name=str(scheme.get("name", "?")),
                observed_seconds=float(np.mean(observed_totals)),
                predicted_seconds=predicted,
                tolerance=scenario.tolerance,
                analytic_seconds=analytic_seconds,
                fault_fingerprint=str(observed.extras.get("fault_fingerprint", "")),
                scheduled_workers=list(observed.extras.get("scheduled_workers", [])),
                observed_iteration_seconds=list(observed.iteration_times),
                predicted_iteration_seconds=predicted / scenario.num_iterations,
            )
        )
    return report


# --------------------------------------------------------------------------- #
def golden_trace(scenario: ValidationScenario) -> Dict[str, object]:
    """The deterministic trace of a scenario — the golden-fixture payload.

    Everything here is a pure function of the scenario's pinned seeds, so the
    golden diff test can require exact (or ``1e-9``-relative) agreement:

    * the scenario config (identity: a drifted scenario fails loudly, it
      does not silently re-baseline);
    * the canonical fault-schedule fingerprint and the availability trace
      (which slots are vacant when, and the per-iteration active counts);
    * per scheme, the simulator-predicted seconds (the denominator of the
      validation ratio) and the analytic anchor where tractable, plus each
      scheme's predicted runtime relative to the first scheme.

    Observed wall-clock seconds are deliberately **absent**: they vary run
    to run and are gated by the ratio tolerance in :func:`validate_scenario`
    instead.
    """
    from repro.api import JobSpec, run

    cluster = scenario.build_cluster()
    schedule = build_fault_schedule(
        cluster,
        scenario.num_iterations,
        loads=[scenario.unit_size] * scenario.num_workers,
        include_communication=False,
        rng=scenario.seed,
    )
    trace: Dict[str, object] = {
        "config": scenario.to_config(),
        "fault_fingerprint": schedule.fingerprint(),
        "availability": schedule.availability.astype(int).tolist(),
        "active_counts": [int(count) for count in schedule.active_counts],
        "min_active": int(schedule.active_counts.min()),
    }
    schemes: List[Dict[str, object]] = []
    baseline: Optional[float] = None
    for scheme in scenario.schemes:
        predicted_totals = []
        for trial in range(scenario.sim_trials):
            sim_spec = JobSpec(
                scheme=dict(scheme),
                cluster=cluster,
                num_units=scenario.num_units,
                unit_size=scenario.unit_size,
                num_iterations=scenario.num_iterations,
                serialize_master_link=False,
                seed=scenario.seed + 1 + trial,
            )
            predicted_totals.append(run(sim_spec, backend="timing").total_time)
        predicted = float(np.mean(predicted_totals))
        baseline = predicted if baseline is None else baseline
        entry: Dict[str, object] = {
            "scheme": dict(scheme),
            "predicted_seconds": predicted,
            "predicted_ratio_vs_first": predicted / baseline,
        }
        try:
            analytic_spec = JobSpec(
                scheme=dict(scheme),
                cluster=scenario.base_cluster(),
                num_units=scenario.num_units,
                unit_size=scenario.unit_size,
                num_iterations=scenario.num_iterations,
                serialize_master_link=False,
                seed=scenario.seed,
            )
            entry["analytic_seconds"] = float(
                run(analytic_spec, backend="analytic").total_time
            )
        except AnalyticIntractableError:
            entry["analytic_seconds"] = None
        schemes.append(entry)
    trace["schemes"] = schemes
    return trace


# --------------------------------------------------------------------------- #
def load_benchmark_history(
    path: Union[str, Path], *, benchmark: str = "bench_sweep"
) -> Dict[str, object]:
    """Load a benchmark history JSON, preserving evidence of corruption.

    Returns the ``{"benchmark": ..., "runs": [...]}`` mapping at ``path``,
    or a fresh empty history when the file does not exist. A file that
    exists but cannot be parsed (or parses to the wrong shape) is **not**
    silently discarded: it is renamed to ``<name>.corrupt`` next to the
    original — overwriting at most one previous backup — and a
    :class:`UserWarning` names both paths, so a perf trajectory damaged by
    a crashed or interrupted writer can still be recovered by hand. Every
    appender of ``BENCH_sweep.json`` (``append_validation_record``,
    ``benchmarks/bench_sweep.py``, ``benchmarks/bench_tune.py``) shares
    this guard.
    """
    path = Path(path)
    fresh: Dict[str, object] = {"benchmark": benchmark, "runs": []}
    if not path.exists():
        return fresh
    try:
        loaded = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        reason = str(error)
        loaded = None
    else:
        if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
            return loaded
        reason = "not a {'runs': [...]} mapping"
        loaded = None
    backup = path.with_name(path.name + ".corrupt")
    try:
        path.replace(backup)
    except OSError:
        backup = path  # rename failed; at least point the warning somewhere
    warnings.warn(
        f"benchmark history {path} is corrupt ({reason}); saved the old "
        f"file to {backup} and starting a fresh history",
        stacklevel=2,
    )
    return fresh


def append_validation_record(
    report: ValidationReport,
    path: Union[str, Path],
    *,
    timestamp: str,
    quick: bool = False,
) -> Dict[str, object]:
    """Append ``report`` to the benchmark history JSON at ``path``.

    Shares the schema of ``benchmarks/BENCH_sweep.json``:
    ``{"benchmark": ..., "runs": [...]}``. Missing files start a fresh
    history; a corrupt file is backed up to ``*.corrupt`` with a warning
    (see :func:`load_benchmark_history`) instead of being silently erased.
    The ``timestamp`` comes from the caller (use
    :func:`repro.utils.timing.utc_timestamp` at the CLI boundary) so this
    module stays clock-free. Returns the record that was appended.
    """
    path = Path(path)
    record: Dict[str, object] = {"timestamp": timestamp, "quick": bool(quick)}
    record.update(report.to_record())
    history = load_benchmark_history(path)
    runs = history.setdefault("runs", [])
    assert isinstance(runs, list)
    runs.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return record
