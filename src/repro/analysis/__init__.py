"""Analytical results: the paper's closed forms and their estimators.

The package collects coupon-collector mathematics (:mod:`~repro.analysis.coupon`),
recovery-threshold and communication-load formulas for every scheme
(:mod:`~repro.analysis.thresholds`), order statistics of worker completion
times (:mod:`~repro.analysis.order_statistics`), the Theorem 1 / Theorem 2
bound evaluators used by the benchmark harness (:mod:`~repro.analysis.bounds`),
the homogeneous-cluster run-time predictor
(:mod:`~repro.analysis.runtime_prediction`), and the per-scheme closed-form
runtime estimators behind the analytic backend
(:mod:`~repro.analysis.analytic`).
"""

from repro.analysis.coupon import (
    harmonic_number,
    expected_coupon_draws,
    coupon_draw_variance,
    coupon_tail_bound,
    coverage_probability_after_draws,
    simulate_coupon_draws,
)
from repro.analysis.thresholds import (
    SchemeFormulas,
    lower_bound_recovery_threshold,
    bcc_recovery_threshold,
    bcc_communication_load,
    uncoded_recovery_threshold,
    uncoded_communication_load,
    cyclic_repetition_recovery_threshold,
    cyclic_repetition_communication_load,
    randomized_recovery_threshold,
    randomized_communication_load,
    scheme_formula_registry,
)
from repro.analysis.bounds import (
    Theorem1Bounds,
    theorem1_bounds,
    Theorem2Bounds,
    theorem2_bounds,
    theorem2_constant,
)
from repro.analysis.tradeoff import TradeoffPoint, tradeoff_curves
from repro.analysis.order_statistics import (
    expected_kth_exponential_order_statistic,
    expected_kth_shift_exponential_completion,
    expected_maximum_shift_exponential_completion,
    monte_carlo_kth_completion,
)
from repro.analysis.runtime_prediction import IterationPrediction, predict_iteration_time
from repro.analysis.analytic import (
    DEFAULT_QUANTILES,
    AnalyticIteration,
    coupon_threshold_pmf,
    coverage_runtime,
    expected_arrivals_until_group_complete,
    fractional_group_runtime,
    homogeneous_compute_parameters,
    maximum_runtime,
    normal_quantile,
    order_statistic_runtime,
    randomized_threshold_pmf,
    transfer_parameters,
    worker_compute_parameters,
)

__all__ = [
    "harmonic_number",
    "expected_coupon_draws",
    "coupon_draw_variance",
    "coupon_tail_bound",
    "coverage_probability_after_draws",
    "simulate_coupon_draws",
    "SchemeFormulas",
    "lower_bound_recovery_threshold",
    "bcc_recovery_threshold",
    "bcc_communication_load",
    "uncoded_recovery_threshold",
    "uncoded_communication_load",
    "cyclic_repetition_recovery_threshold",
    "cyclic_repetition_communication_load",
    "randomized_recovery_threshold",
    "randomized_communication_load",
    "scheme_formula_registry",
    "Theorem1Bounds",
    "theorem1_bounds",
    "Theorem2Bounds",
    "theorem2_bounds",
    "theorem2_constant",
    "TradeoffPoint",
    "tradeoff_curves",
    "expected_kth_exponential_order_statistic",
    "expected_kth_shift_exponential_completion",
    "expected_maximum_shift_exponential_completion",
    "monte_carlo_kth_completion",
    "IterationPrediction",
    "predict_iteration_time",
    "DEFAULT_QUANTILES",
    "AnalyticIteration",
    "coupon_threshold_pmf",
    "coverage_runtime",
    "expected_arrivals_until_group_complete",
    "fractional_group_runtime",
    "homogeneous_compute_parameters",
    "maximum_runtime",
    "normal_quantile",
    "order_statistic_runtime",
    "randomized_threshold_pmf",
    "transfer_parameters",
    "worker_compute_parameters",
]
