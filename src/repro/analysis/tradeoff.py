"""Computational-load vs recovery-threshold tradeoff curves (paper Fig. 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.thresholds import (
    bcc_recovery_threshold,
    cyclic_repetition_recovery_threshold,
    lower_bound_recovery_threshold,
    randomized_recovery_threshold,
)
from repro.utils.validation import check_positive_int

__all__ = ["TradeoffPoint", "tradeoff_curves"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the Fig. 2 tradeoff: a scheme's ``K`` at computational load ``r``."""

    scheme: str
    load: int
    recovery_threshold: float


def tradeoff_curves(
    num_examples: int,
    num_workers: int,
    loads: Optional[Sequence[int]] = None,
    *,
    exact_randomized: bool = True,
) -> Dict[str, List[TradeoffPoint]]:
    """Compute the four curves of the paper's Fig. 2.

    Parameters
    ----------
    num_examples, num_workers:
        The figure uses ``m = n = 100``.
    loads:
        Computational loads ``r`` to evaluate; defaults to every ``r`` from
        ``1`` (``m/n`` when ``m = n``) to ``m // 2`` as in the figure's x-axis
        range (5..50 shown, computed here from 1 for completeness).
    exact_randomized:
        Whether the simple-randomized curve uses the numerically exact
        expectation (default) or the paper's ``(m/r) log m`` approximation.

    Returns
    -------
    dict mapping scheme name -> list of :class:`TradeoffPoint`.
    """
    m = check_positive_int(num_examples, "num_examples")
    n = check_positive_int(num_workers, "num_workers")
    if loads is None:
        loads = list(range(1, m // 2 + 1))
    loads = [check_positive_int(int(r), "load") for r in loads]

    curves: Dict[str, List[TradeoffPoint]] = {
        "lower-bound": [],
        "bcc": [],
        "randomized": [],
        "cyclic-repetition": [],
    }
    for r in loads:
        curves["lower-bound"].append(
            TradeoffPoint("lower-bound", r, lower_bound_recovery_threshold(m, r))
        )
        curves["bcc"].append(TradeoffPoint("bcc", r, bcc_recovery_threshold(m, r)))
        curves["randomized"].append(
            TradeoffPoint(
                "randomized", r, randomized_recovery_threshold(m, r, exact=exact_randomized)
            )
        )
        curves["cyclic-repetition"].append(
            TradeoffPoint(
                "cyclic-repetition", r, cyclic_repetition_recovery_threshold(m, r)
            )
        )
    # The recovery threshold can never exceed the number of workers; clip the
    # analytic curves the way the paper's figure does implicitly.
    for name, points in curves.items():
        curves[name] = [
            TradeoffPoint(p.scheme, p.load, min(p.recovery_threshold, float(n)))
            for p in points
        ]
    return curves
