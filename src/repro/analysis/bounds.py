"""Evaluators for the paper's Theorem 1 and Theorem 2 bounds."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.coupon import harmonic_number
from repro.analysis.thresholds import bcc_recovery_threshold, lower_bound_recovery_threshold
from repro.cluster.allocation import solve_p2_allocation
from repro.cluster.spec import ClusterSpec
from repro.cluster.waiting_time import estimate_expected_threshold_time
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int

__all__ = [
    "Theorem1Bounds",
    "theorem1_bounds",
    "Theorem2Bounds",
    "theorem2_bounds",
    "theorem2_constant",
]


@dataclass(frozen=True)
class Theorem1Bounds:
    """The sandwich ``m/r <= K*(r) <= K_BCC(r)`` of Theorem 1 for one ``(m, r)``.

    The same numbers bound the minimum communication load ``L*(r)``.
    """

    num_examples: int
    load: int
    lower: float
    upper: float

    @property
    def logarithmic_gap(self) -> float:
        """``upper / lower`` — the paper shows this is ``~ H_ceil(m/r)``."""
        return self.upper / self.lower


def theorem1_bounds(num_examples: int, load: int) -> Theorem1Bounds:
    """Evaluate the Theorem 1 lower and upper bounds for ``(m, r)``."""
    lower = lower_bound_recovery_threshold(num_examples, load)
    upper = bcc_recovery_threshold(num_examples, load)
    return Theorem1Bounds(
        num_examples=int(num_examples), load=int(load), lower=lower, upper=upper
    )


def theorem2_constant(
    num_examples: int, num_workers: int, max_shift: float, min_straggling: float
) -> float:
    """The constant ``c = 2 + log(a + H_n / mu) / log m`` of Theorem 2.

    ``a`` is the largest shift parameter, ``mu`` the smallest straggling
    parameter across workers.
    """
    m = check_positive_int(num_examples, "num_examples")
    n = check_positive_int(num_workers, "num_workers")
    if m < 2:
        raise ConfigurationError("Theorem 2's constant requires m >= 2 (log m > 0)")
    if min_straggling <= 0:
        raise ConfigurationError("the minimum straggling parameter must be positive")
    if max_shift < 0:
        raise ConfigurationError("the maximum shift parameter must be non-negative")
    inner = max_shift + harmonic_number(n) / min_straggling
    return 2.0 + math.log(inner) / math.log(m)


@dataclass(frozen=True)
class Theorem2Bounds:
    """Bounds on the minimum expected coverage time of a heterogeneous cluster.

    Attributes
    ----------
    lower:
        ``min_{r} E[T-hat(m)]`` evaluated at the P2-optimal loads for ``s = m``.
    upper:
        ``min_{r} E[T-hat(floor(c m log m))] + 1`` at the P2-optimal loads for
        the inflated target.
    constant:
        The ``c`` used for the upper bound.
    lower_loads, upper_loads:
        The loads realising each bound.
    """

    num_examples: int
    lower: float
    upper: float
    constant: float
    lower_loads: np.ndarray
    upper_loads: np.ndarray


def theorem2_bounds(
    cluster: ClusterSpec,
    num_examples: int,
    *,
    rng: RandomState = None,
    num_trials: int = 200,
    constant: Optional[float] = None,
) -> Theorem2Bounds:
    """Evaluate both Theorem 2 bounds by Monte-Carlo over the cluster's delay models.

    Parameters
    ----------
    cluster:
        Heterogeneous shift-exponential cluster.
    num_examples:
        Dataset size ``m``.
    num_trials:
        Monte-Carlo trials per expectation.
    constant:
        Override for ``c`` (defaults to the paper's expression).
    """
    m = check_positive_int(num_examples, "num_examples")
    if constant is None:
        constant = theorem2_constant(
            m,
            cluster.num_workers,
            max_shift=float(cluster.shift_parameters().max()),
            min_straggling=float(cluster.straggling_parameters().min()),
        )
    lower_allocation = solve_p2_allocation(cluster, target=m)
    lower = estimate_expected_threshold_time(
        cluster, lower_allocation.loads, target=m, rng=rng, num_trials=num_trials
    )

    inflated_target = int(math.floor(constant * m * math.log(m)))
    inflated_target = max(inflated_target, m)
    upper_allocation = solve_p2_allocation(cluster, target=inflated_target)
    upper = (
        estimate_expected_threshold_time(
            cluster,
            upper_allocation.loads,
            target=inflated_target,
            rng=rng,
            num_trials=num_trials,
        )
        + 1.0
    )
    return Theorem2Bounds(
        num_examples=m,
        lower=float(lower),
        upper=float(upper),
        constant=float(constant),
        lower_loads=lower_allocation.loads,
        upper_loads=upper_allocation.loads,
    )
