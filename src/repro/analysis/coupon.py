"""Coupon-collector mathematics.

The BCC scheme's recovery threshold is exactly the classical coupon
collector's stopping time with ``N = ceil(m/r)`` coupon types: every worker
message is a uniformly random batch id, and the master stops when all batch
ids have been seen. This module provides the closed-form expectation
(``N * H_N``), the variance, the tail bound the paper cites as Lemma 2, the
exact coverage probability after a given number of draws, and a Monte-Carlo
sampler used by the validation benchmarks.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_nonnegative, check_positive_int

__all__ = [
    "harmonic_number",
    "expected_coupon_draws",
    "coupon_draw_variance",
    "coupon_tail_bound",
    "coverage_probability_after_draws",
    "simulate_coupon_draws",
]


def harmonic_number(n: int) -> float:
    """The ``n``-th harmonic number ``H_n = sum_{k=1..n} 1/k`` (``H_0 = 0``)."""
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if n == 0:
        return 0.0
    return float(np.sum(1.0 / np.arange(1, n + 1)))


def expected_coupon_draws(num_types: int) -> float:
    """Expected draws to collect all ``num_types`` coupon types: ``N * H_N``."""
    n = check_positive_int(num_types, "num_types")
    return n * harmonic_number(n)


def coupon_draw_variance(num_types: int) -> float:
    """Variance of the coupon-collector stopping time.

    ``Var = sum_{i=1}^{N-1} (1 - p_i) / p_i^2`` with ``p_i = (N - i) / N``:
    each phase with ``i`` coupons already collected is geometric with success
    probability ``p_i``.
    """
    n = check_positive_int(num_types, "num_types")
    if n == 1:
        return 0.0
    collected = np.arange(0, n)
    probabilities = (n - collected) / n
    variances = (1.0 - probabilities) / probabilities**2
    return float(np.sum(variances))


def coupon_tail_bound(num_types: int, epsilon: float) -> float:
    """The paper's Lemma 2 tail bound.

    ``Pr[M >= (1 + eps) N log N] <= N^{-eps}`` for any ``eps >= 0``, where
    ``M`` is the number of draws needed to collect all ``N`` types.
    """
    n = check_positive_int(num_types, "num_types")
    epsilon = check_nonnegative(epsilon, "epsilon")
    return float(n ** (-epsilon))


def coverage_probability_after_draws(num_types: int, num_draws: int) -> float:
    """Exact probability that ``num_draws`` uniform draws cover all ``num_types`` types.

    By inclusion–exclusion:
    ``P = sum_{k=0}^{N} (-1)^k C(N, k) ((N - k) / N)^D``.
    Computed in log-space per term to stay stable for the sizes used in the
    paper's figures (``N`` up to a few hundred).
    """
    n = check_positive_int(num_types, "num_types")
    if num_draws < 0:
        raise ConfigurationError(f"num_draws must be non-negative, got {num_draws}")
    if num_draws < n:
        return 0.0
    # Inclusion-exclusion: P = sum_k (-1)^k C(N, k) ((N - k)/N)^D. The
    # alternating binomial terms cancel almost exactly, so the sum is
    # evaluated with exact rational arithmetic to avoid float cancellation.
    import math
    from fractions import Fraction

    total = Fraction(0)
    for k in range(0, n + 1):
        term = Fraction(math.comb(n, k)) * Fraction(n - k, n) ** num_draws
        total += term if (k % 2 == 0) else -term
    probability = float(total)
    return float(min(max(probability, 0.0), 1.0))


def simulate_coupon_draws(
    num_types: int,
    rng: RandomState = None,
    num_trials: int = 1,
    max_draws: Optional[int] = None,
) -> np.ndarray:
    """Monte-Carlo sample of the coupon-collector stopping time.

    Parameters
    ----------
    num_types:
        Number of coupon types ``N``.
    num_trials:
        Number of independent repetitions.
    max_draws:
        Safety cap per trial; if the cap is reached before coverage the trial
        reports ``max_draws`` (only relevant for adversarially small caps).
        Defaults to ``50 * N * log(N + 1) + 100`` which is effectively never
        reached.

    Returns
    -------
    ndarray of shape ``(num_trials,)`` with the number of draws per trial.
    """
    n = check_positive_int(num_types, "num_types")
    check_positive_int(num_trials, "num_trials")
    generator = as_generator(rng)
    if max_draws is None:
        max_draws = int(50 * n * np.log(n + 1) + 100)
    check_positive_int(max_draws, "max_draws")

    results = np.empty(num_trials, dtype=int)
    # Draw in blocks to stay vectorised: the expected stopping time is
    # N * H_N ~= N log N, so a block of that size usually finishes a trial.
    block = max(int(np.ceil(n * (harmonic_number(n) + 2))), 4)
    for trial in range(num_trials):
        seen = np.zeros(n, dtype=bool)
        collected = 0
        draws = 0
        while collected < n and draws < max_draws:
            batch = generator.integers(0, n, size=min(block, max_draws - draws))
            for value in batch:
                draws += 1
                if not seen[value]:
                    seen[value] = True
                    collected += 1
                    if collected == n:
                        break
        results[trial] = draws
    return results
