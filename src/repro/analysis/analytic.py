"""Closed-form per-iteration runtime estimates behind the analytic backend.

The discrete-event simulator *measures* iteration times; this module
*predicts* them without simulating a single arrival, which is what makes the
:class:`~repro.api.backends.AnalyticBackend` O(1) in the iteration count.
Every estimator reduces an iteration to the same decomposition the simulator
uses — per-worker completion times fed to the scheme's stopping rule — and
evaluates the expectation of the stopping time in closed form (order
statistics of shift-exponential arrivals, coupon-collector stopping indices,
group-wise maxima) or, for the heterogeneous coverage rules, by deterministic
quadrature of an exact product-of-CDFs survival function.

Modelling assumptions (the "tractable regime")
----------------------------------------------
* Worker completion times are shift-exponential
  (:class:`~repro.stragglers.models.ShiftedExponentialDelay`, the paper's
  Eq. 15 family) or deterministic. Other delay models raise
  :class:`~repro.exceptions.AnalyticIntractableError`.
* Transfer times are linear-plus-exponential-jitter
  (:class:`~repro.stragglers.communication.LinearCommunicationModel`) or zero.
* A worker's arrival time ``compute + transfer`` is a deterministic part plus
  the *sum* of two exponentials; the estimators approximate that
  hypoexponential tail by a single exponential matched by its mean — the same
  documented ~15 % approximation :mod:`repro.analysis.runtime_prediction`
  uses, exact whenever one of the two tails vanishes.
* With a serialised master link the expected ``k``-th arrival is estimated by
  the mean-field recurrence ``A_k = max(E[C_(k)], A_{k-1}) + E[X]`` over the
  compute order statistics — a lower-biased (Jensen) but tight approximation
  in the communication-dominated regimes of the paper.

Quantiles are derived from the order-statistic CDF (a binomial tail of the
underlying arrival CDF) or the quadrature survival function, so they carry
the same approximations as the means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.coupon import harmonic_number
from repro.exceptions import AnalyticIntractableError, ConfigurationError
from repro.stragglers.base import DelayModel
from repro.stragglers.communication import (
    CommunicationModel,
    LinearCommunicationModel,
    ZeroCommunicationModel,
)
from repro.stragglers.models import DeterministicDelay, ShiftedExponentialDelay

__all__ = [
    "DEFAULT_QUANTILES",
    "AnalyticIteration",
    "worker_compute_parameters",
    "homogeneous_compute_parameters",
    "transfer_parameters",
    "normal_quantile",
    "coupon_threshold_pmf",
    "randomized_threshold_pmf",
    "expected_arrivals_until_group_complete",
    "order_statistic_runtime",
    "fractional_group_runtime",
    "maximum_runtime",
    "coverage_runtime",
]

#: Quantile levels reported by default (median, and the straggler tail).
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

# numpy renamed trapz -> trapezoid in 2.0; support both.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz

#: Largest ``num_types * num_workers`` for which the exact stopping-index
#: distribution is evaluated (an O(N * n) dynamic program); bigger problems
#: fall back to the point-mass-at-the-mean approximation, which concentrates
#: anyway.
_EXACT_PMF_MAX_STATES = 20_000_000


@dataclass(frozen=True)
class AnalyticIteration:
    """Closed-form timing estimate of one distributed-GD iteration.

    The fields mirror :class:`~repro.simulation.iteration.IterationOutcome`
    so analytic results tabulate next to simulated ones, but every quantity
    is an *expectation* (and therefore a float even where the simulator
    reports integers).

    Attributes
    ----------
    scheme:
        Name of the scheme the estimate describes.
    total_time:
        Expected wall-clock time of one iteration.
    computation_time:
        Expected slowest computation among the workers the master hears.
    communication_time:
        ``total_time - computation_time`` (the paper's accounting), clipped
        at zero.
    recovery_threshold:
        Expected number of workers the master waits for.
    communication_load:
        Expected total size (gradient units) of the messages received.
    workers_finished_compute:
        Expected number of workers that finished computing by ``total_time``.
    variance:
        Approximate variance of the per-iteration time (used for the
        normal-approximation total-runtime quantiles).
    quantiles:
        Mapping quantile level -> per-iteration time.
    mode:
        ``"parallel"`` or ``"serialized"`` master link.
    details:
        Scheme-specific intermediate numbers surfaced for inspection.
    """

    scheme: str
    total_time: float
    computation_time: float
    communication_time: float
    recovery_threshold: float
    communication_load: float
    workers_finished_compute: float
    variance: float
    quantiles: Mapping[float, float]
    mode: str
    details: Mapping[str, float] = field(default_factory=dict)

    def total_runtime_mean(self, num_iterations: int) -> float:
        """Expected total running time of ``num_iterations`` iterations."""
        return self.total_time * int(num_iterations)

    def total_runtime_quantiles(self, num_iterations: int) -> Dict[float, float]:
        """Normal-approximation quantiles of the ``num_iterations``-sum.

        Iterations are i.i.d., so the total is asymptotically normal with
        mean ``k * E[T]`` and variance ``k * Var[T]``; for a single iteration
        the per-iteration quantiles are returned unchanged.
        """
        k = int(num_iterations)
        if k <= 1:
            return dict(self.quantiles)
        sigma = math.sqrt(max(self.variance, 0.0) * k)
        return {
            q: k * self.total_time + normal_quantile(q) * sigma
            for q in self.quantiles
        }


# --------------------------------------------------------------------------- #
# Model-parameter extraction (the tractability gate)
# --------------------------------------------------------------------------- #
def worker_compute_parameters(model: DelayModel) -> Tuple[float, float]:
    """Per-*example* ``(deterministic, exponential-tail-mean)`` of a delay model.

    A task over ``e`` examples then takes ``deterministic * e`` seconds plus
    an exponential tail of mean ``tail * e`` — exactly how the two supported
    families scale.

    Raises
    ------
    AnalyticIntractableError
        For delay models outside the shift-exponential / deterministic
        families, or subclasses that override :meth:`sample` (their
        distribution is unknown to the closed forms).
    """
    if isinstance(model, ShiftedExponentialDelay):
        if type(model).sample is not ShiftedExponentialDelay.sample:
            raise AnalyticIntractableError(
                f"{type(model).__name__} overrides sample(); its distribution "
                "is unknown to the closed-form analysis"
            )
        return float(model.shift), 1.0 / float(model.straggling)
    if isinstance(model, DeterministicDelay):
        if type(model).sample is not DeterministicDelay.sample:
            raise AnalyticIntractableError(
                f"{type(model).__name__} overrides sample(); its distribution "
                "is unknown to the closed-form analysis"
            )
        return float(model.seconds_per_example), 0.0
    raise AnalyticIntractableError(
        f"no closed-form runtime model covers {type(model).__name__} workers; "
        "the analytic backend supports shift-exponential and deterministic "
        "delay models (use a simulation backend for anything else)"
    )


def homogeneous_compute_parameters(cluster) -> Tuple[float, float]:
    """Shared per-example compute parameters of a homogeneous cluster.

    Raises :class:`AnalyticIntractableError` when workers differ — the
    order-statistic formulas need exchangeable workers; heterogeneous schemes
    go through :func:`maximum_runtime` / :func:`coverage_runtime` instead.
    """
    params = [worker_compute_parameters(model) for model in cluster.delay_models()]
    first = params[0]
    if any(p != first for p in params[1:]):
        raise AnalyticIntractableError(
            "this scheme's closed form needs a homogeneous cluster "
            "(identical delay models on every worker)"
        )
    return first


def transfer_parameters(
    communication: CommunicationModel, message_size: float
) -> Tuple[float, float]:
    """``(fixed, jitter-mean)`` seconds to transfer one ``message_size`` message.

    Raises :class:`AnalyticIntractableError` for communication models outside
    the linear / zero families.
    """
    if isinstance(communication, ZeroCommunicationModel):
        if type(communication).sample is ZeroCommunicationModel.sample:
            return 0.0, 0.0
    if isinstance(communication, LinearCommunicationModel):
        if type(communication).sample is LinearCommunicationModel.sample:
            fixed = communication.latency + communication.seconds_per_unit * float(
                message_size
            )
            return float(fixed), float(communication.jitter)
    raise AnalyticIntractableError(
        f"no closed-form transfer model covers {type(communication).__name__}; "
        "the analytic backend supports LinearCommunicationModel and "
        "ZeroCommunicationModel"
    )


# --------------------------------------------------------------------------- #
# Scalar probability helpers
# --------------------------------------------------------------------------- #
def normal_quantile(q: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation, ~1e-9)."""
    if not 0.0 < q < 1.0:
        raise ConfigurationError(f"quantile level must lie in (0, 1), got {q}")
    # Coefficients of Peter Acklam's approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if q < p_low:
        t = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * t + c[1]) * t + c[2]) * t + c[3]) * t + c[4]) * t + c[5]) / (
            (((d[0] * t + d[1]) * t + d[2]) * t + d[3]) * t + 1.0
        )
    if q > p_high:
        t = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((c[0] * t + c[1]) * t + c[2]) * t + c[3]) * t + c[4]) * t + c[5]) / (
            (((d[0] * t + d[1]) * t + d[2]) * t + d[3]) * t + 1.0
        )
    t = q - 0.5
    r = t * t
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * t / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


_HARMONIC_CACHE: Dict[int, np.ndarray] = {}


def _harmonic_array(n: int) -> np.ndarray:
    """``[H_0, H_1, ..., H_n]`` as one cached prefix-sum array."""
    cached = _HARMONIC_CACHE.get(n)
    if cached is None:
        cached = np.concatenate(
            [[0.0], np.cumsum(1.0 / np.arange(1, n + 1, dtype=float))]
        )
        if len(_HARMONIC_CACHE) > 64:
            _HARMONIC_CACHE.clear()
        _HARMONIC_CACHE[n] = cached
    return cached


_LOG_COMB_CACHE: Dict[int, np.ndarray] = {}


def _log_binomials(n: int) -> np.ndarray:
    """``log C(n, j)`` for ``j = 0..n``, cached per ``n``."""
    cached = _LOG_COMB_CACHE.get(n)
    if cached is None:
        lgamma = np.vectorize(math.lgamma)
        j = np.arange(n + 1, dtype=float)
        cached = math.lgamma(n + 1) - lgamma(j + 1) - lgamma(n - j + 1)
        if len(_LOG_COMB_CACHE) > 64:
            _LOG_COMB_CACHE.clear()
        _LOG_COMB_CACHE[n] = cached
    return cached


def _binomial_tail(n: int, k: int, p: float) -> float:
    """``P(Binomial(n, p) >= k)`` evaluated stably in log space."""
    if k <= 0:
        return 1.0
    if k > n or p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    j = np.arange(k, n + 1, dtype=float)
    log_terms = _log_binomials(n)[k:] + j * math.log(p) + (n - j) * math.log1p(-p)
    peak = float(log_terms.max())
    total = float(np.exp(log_terms - peak).sum())
    return float(min(max(math.exp(peak) * total, 0.0), 1.0))


def _partial_harmonic(n: int, k: float) -> float:
    """``H_n - H_{n-k}`` with linear interpolation for fractional ``k``."""
    harmonic = _harmonic_array(n)
    k = min(max(float(k), 0.0), float(n))
    lower = int(math.floor(k))
    h_low = harmonic[n] - harmonic[n - lower]
    if lower == k or lower >= n:
        return float(h_low)
    h_high = harmonic[n] - harmonic[n - lower - 1]
    return float(h_low + (k - lower) * (h_high - h_low))


def _order_stat_tail_variance(n: int, k: int, tail_mean: float) -> float:
    """Variance of the ``k``-th order statistic of ``n`` i.i.d. exponentials."""
    if tail_mean <= 0.0 or k <= 0:
        return 0.0
    k = min(int(k), n)
    indices = np.arange(n - k + 1, n + 1, dtype=float)
    return float(tail_mean**2 * np.sum(1.0 / indices**2))


def _bisect_quantile(
    cdf: Callable[[float], float], q: float, lower: float, upper_hint: float
) -> float:
    """Solve ``cdf(t) = q`` for a monotone CDF by doubling + bisection."""
    hi = max(upper_hint, lower + 1e-12)
    for _ in range(200):
        if cdf(hi) >= q:
            break
        hi = lower + 2.0 * (hi - lower)
    lo = lower
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(hi, 1.0):
            break
    return 0.5 * (lo + hi)


def _exp_cdf(t: float, deterministic: float, tail_mean: float) -> float:
    """CDF of ``deterministic + Exp(mean=tail_mean)`` (a step when the tail is 0)."""
    if t < deterministic:
        return 0.0
    if tail_mean <= 0.0:
        return 1.0
    return 1.0 - math.exp(-(t - deterministic) / tail_mean)


# --------------------------------------------------------------------------- #
# Stopping-index distributions
# --------------------------------------------------------------------------- #
def coupon_threshold_pmf(
    num_types: int, num_workers: int
) -> Optional[Dict[int, float]]:
    """Distribution of the coupon-collector stopping index, truncated at ``n``.

    Returns ``P(K = d | K <= n)`` for ``d = N .. n`` — the recovery-threshold
    distribution of the BCC stopping rule conditioned on the job being
    feasible with ``n`` workers (the simulator re-draws infeasible placements,
    which conditions on the same event). Returns ``None`` when the O(N * n)
    dynamic program would be too large; callers then fall back to the
    unconditional mean ``N * H_N`` capped at ``n``.
    """
    n_types = int(num_types)
    n = int(num_workers)
    if n_types * n > _EXACT_PMF_MAX_STATES:
        return None
    if n_types > n:
        raise AnalyticIntractableError(
            f"coverage of {n_types} batches is impossible with {n} workers"
        )
    # Collected-types Markov chain: after each draw the count stays with
    # probability j/N or advances with probability (N - j)/N. All terms are
    # nonnegative, so the float evaluation is stable (unlike the alternating
    # inclusion-exclusion sum, which needs rational arithmetic).
    state = np.zeros(n_types + 1)
    state[0] = 1.0
    ratios = np.arange(n_types + 1) / n_types
    pmf: Dict[int, float] = {}
    for draws in range(1, n + 1):
        advanced = np.empty_like(state)
        advanced[0] = 0.0
        advanced[1:] = state[1:] * ratios[1:] + state[:-1] * (1.0 - ratios[:-1])
        mass = advanced[n_types] - state[n_types]
        state = advanced
        if mass > 0.0:
            pmf[draws] = float(mass)
    total = sum(pmf.values())
    if total <= 0.0:
        return None
    return {k: v / total for k, v in pmf.items()}


def randomized_threshold_pmf(
    num_units: int, load: int, num_workers: int
) -> Optional[Dict[int, float]]:
    """Stopping-index distribution of the simple randomized coverage rule.

    Each arriving worker reveals a uniform ``load``-subset of the ``m``
    units; the master stops at full coverage. The covered-units count is a
    Markov chain with hypergeometric increments, evaluated as a stable
    all-positive dynamic program and conditioned on coverage within ``n``
    workers (the feasibility event the simulator's placement re-draws
    enforce). Returns ``None`` when the O(m * n * r) program would be too
    large; callers then fall back to the unconditional mean capped at ``n``.
    """
    m = int(num_units)
    r = int(load)
    n = int(num_workers)
    if m * n * (r + 1) > _EXACT_PMF_MAX_STATES:
        return None
    # bands[i, j]: probability a worker adds i new units when j are already
    # covered — hypergeometric C(m-j, i) C(j, r-i) / C(m, r). The chain only
    # moves 0..r states forward, so the step is a banded (O(m r)) update, not
    # a dense matrix product — matching the size guard above.
    log_fact = np.cumsum(
        np.concatenate([[0.0], np.log(np.arange(1, m + 1, dtype=float))])
    )

    def log_binom(a: int, b: int) -> float:
        return float(log_fact[a] - log_fact[b] - log_fact[a - b])

    log_total = log_binom(m, r)
    bands = np.zeros((r + 1, m + 1))
    for j in range(m + 1):
        for i in range(max(r - j, 0), min(r, m - j) + 1):
            log_p = log_binom(m - j, i) + log_binom(j, r - i) - log_total
            bands[i, j] = math.exp(log_p)
    bands[0, m] = 1.0  # coverage is absorbing
    state = np.zeros(m + 1)
    state[0] = 1.0
    pmf: Dict[int, float] = {}
    for draws in range(1, n + 1):
        covered_before = state[m]
        advanced = state * bands[0]
        for i in range(1, r + 1):
            advanced[i:] += (state * bands[i])[: m + 1 - i]
        state = advanced
        mass = state[m] - covered_before
        if mass > 0.0:
            pmf[draws] = float(mass)
    total = sum(pmf.values())
    if total <= 0.0:
        return None
    return {k: v / total for k, v in pmf.items()}


def expected_arrivals_until_group_complete(num_groups: int, group_size: int) -> float:
    """Expected draws (without replacement) until some group is fully drawn.

    Workers are partitioned into ``num_groups`` groups of ``group_size``; the
    draw order is a uniform random permutation of all ``n = groups * size``
    workers. This is the fractional-repetition scheme's stopping index: the
    master decodes as soon as one replication group has fully reported.
    ``E[K] = sum_t P(K > t)`` with the survival evaluated by
    inclusion–exclusion over which groups are complete after ``t`` draws.
    """
    groups = int(num_groups)
    size = int(group_size)
    n = groups * size
    expectation = 0.0
    for drawn in range(0, n):
        total_subsets = math.comb(n, drawn)
        survival = 0.0
        for complete in range(0, min(groups, drawn // size) + 1):
            ways = (
                math.comb(groups, complete)
                * math.comb(n - complete * size, drawn - complete * size)
            )
            term = ways / total_subsets
            survival += term if complete % 2 == 0 else -term
        expectation += max(survival, 0.0)
    return float(expectation)


# --------------------------------------------------------------------------- #
# The i.i.d. order-statistic engine (homogeneous schemes)
# --------------------------------------------------------------------------- #
def _serialized_arrival_means(
    num_workers: int,
    max_k: int,
    compute_deterministic: float,
    compute_tail_mean: float,
    transfer_mean: float,
) -> List[float]:
    """Mean-field ``E[A_k]`` for ``k = 1 .. max_k`` under a serialised link.

    The master's single link serialises the transfers, so the ``k``-th
    arrival obeys ``A_k = max(C_(k), A_{k-1}) + X_k``; the recurrence below
    propagates expectations (a Jensen lower bound on the true mean).
    """
    harmonic = _harmonic_array(num_workers)
    h_n = harmonic[num_workers]
    arrivals: List[float] = []
    link_free = 0.0
    for j in range(1, max_k + 1):
        compute_j = compute_deterministic + compute_tail_mean * (
            h_n - harmonic[num_workers - j]
        )
        link_free = max(compute_j, link_free) + transfer_mean
        arrivals.append(link_free)
    return arrivals


def order_statistic_runtime(
    *,
    scheme: str,
    num_workers: int,
    threshold,
    compute_deterministic: float,
    compute_tail_mean: float,
    transfer_fixed: float,
    transfer_jitter_mean: float,
    message_size: float,
    serialize_master_link: bool,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    details: Optional[Mapping[str, float]] = None,
) -> AnalyticIteration:
    """Estimate for schemes that stop at the ``K``-th arrival of i.i.d. workers.

    Parameters
    ----------
    threshold:
        The stopping index ``K``: a number (possibly fractional — the
        expectation of a random threshold) or an exact pmf mapping integer
        arrival counts to probabilities (e.g. from
        :func:`coupon_threshold_pmf`), in which case the mean is the exact
        mixture over the order statistics.
    compute_deterministic, compute_tail_mean:
        Per-*task* seconds: the deterministic compute part and the mean of
        its exponential tail (already scaled by the worker's example count).
    transfer_fixed, transfer_jitter_mean:
        Per-message transfer seconds (deterministic part, exponential-jitter
        mean) for this scheme's ``message_size``.
    serialize_master_link:
        Whether master-side receptions are serialised over one link.
    """
    n = int(num_workers)
    if isinstance(threshold, Mapping):
        pmf: Optional[Dict[int, float]] = {
            int(k): float(p) for k, p in threshold.items()
        }
        mean_k = float(sum(k * p for k, p in pmf.items()))
    else:
        pmf = None
        mean_k = float(min(max(float(threshold), 1.0), n))
    k_round = int(min(max(round(mean_k), 1), n))
    levels = tuple(quantiles)

    if serialize_master_link:
        transfer_mean = transfer_fixed + transfer_jitter_mean
        max_k = max(pmf.keys()) if pmf else int(math.ceil(mean_k))
        arrivals = _serialized_arrival_means(
            n, min(max_k, n), compute_deterministic, compute_tail_mean, transfer_mean
        )

        def arrival_at(k: float) -> float:
            lower = int(min(max(math.floor(k), 1), len(arrivals)))
            upper = int(min(lower + 1, len(arrivals)))
            frac = min(max(k - lower, 0.0), 1.0)
            return arrivals[lower - 1] + frac * (
                arrivals[upper - 1] - arrivals[lower - 1]
            )

        if pmf:
            mean_total = sum(p * arrivals[min(k, n) - 1] for k, p in pmf.items())
        else:
            mean_total = arrival_at(mean_k)
        computation = compute_deterministic + compute_tail_mean * _partial_harmonic(
            n, mean_k
        )
        # Spread approximation: the compute order statistic's dispersion plus
        # the last transfer's jitter.
        variance = (
            _order_stat_tail_variance(n, k_round, compute_tail_mean)
            + transfer_jitter_mean**2
        )
        if pmf:
            variance += sum(
                p * (arrivals[min(k, n) - 1] - mean_total) ** 2 for k, p in pmf.items()
            )
        compute_kth_mean = computation
        sigma = math.sqrt(max(variance, 0.0))
        quantile_map = {}
        for q in levels:
            if sigma == 0.0:
                quantile_map[q] = mean_total
            else:
                quantile_map[q] = max(
                    mean_total + normal_quantile(q) * sigma, transfer_mean
                )
        mode = "serialized"
    else:
        deterministic = compute_deterministic + transfer_fixed
        tail_mean = compute_tail_mean + transfer_jitter_mean

        def mixture_mean(partial: Callable[[float], float]) -> float:
            if pmf:
                return sum(p * partial(min(k, n)) for k, p in pmf.items())
            return partial(mean_k)

        mean_total = mixture_mean(
            lambda k: deterministic + tail_mean * _partial_harmonic(n, k)
        )
        computation = compute_deterministic + compute_tail_mean * _partial_harmonic(
            n, mean_k
        )
        variance = _order_stat_tail_variance(n, k_round, tail_mean)
        if pmf:
            variance += sum(
                p
                * (
                    deterministic
                    + tail_mean * _partial_harmonic(n, min(k, n))
                    - mean_total
                )
                ** 2
                for k, p in pmf.items()
            )

        def order_stat_cdf(t: float) -> float:
            return _binomial_tail(n, k_round, _exp_cdf(t, deterministic, tail_mean))

        quantile_map = {}
        for q in levels:
            if tail_mean <= 0.0:
                quantile_map[q] = deterministic
            else:
                quantile_map[q] = _bisect_quantile(
                    order_stat_cdf, q, deterministic, mean_total + tail_mean
                )
        mode = "parallel"

    finished = n * _exp_cdf(mean_total, compute_deterministic, compute_tail_mean)
    extra = dict(details or {})
    extra.setdefault("expected_stopping_index", mean_k)
    return AnalyticIteration(
        scheme=scheme,
        total_time=float(mean_total),
        computation_time=float(computation),
        communication_time=float(max(mean_total - computation, 0.0)),
        recovery_threshold=mean_k,
        communication_load=mean_k * float(message_size),
        workers_finished_compute=float(finished),
        variance=float(max(variance, 0.0)),
        quantiles=quantile_map,
        mode=mode,
        details=extra,
    )


# --------------------------------------------------------------------------- #
# Fractional repetition: min over groups of group maxima
# --------------------------------------------------------------------------- #
def fractional_group_runtime(
    *,
    scheme: str,
    num_groups: int,
    group_size: int,
    compute_deterministic: float,
    compute_tail_mean: float,
    transfer_fixed: float,
    transfer_jitter_mean: float,
    message_size: float,
    serialize_master_link: bool,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> AnalyticIteration:
    """Estimate for the fractional-repetition stopping rule.

    The master decodes when the first replication group has fully reported,
    so the iteration time is the minimum over ``num_groups`` i.i.d. group
    maxima. For i.i.d. exponential tails the expectation has the closed form

    .. math::

        E[T] = D + \\tau \\sum_{j=1}^{G} (-1)^{j+1} \\binom{G}{j} H_{gj},

    obtained by binomial expansion of the survival function
    ``(1 - F(t)^g)^G``. With a serialised link the expected stopping *index*
    (draws without replacement until a full group,
    :func:`expected_arrivals_until_group_complete`) feeds the serialised
    order-statistic recurrence instead.
    """
    groups = int(num_groups)
    size = int(group_size)
    n = groups * size
    expected_k = expected_arrivals_until_group_complete(groups, size)
    if serialize_master_link:
        estimate = order_statistic_runtime(
            scheme=scheme,
            num_workers=n,
            threshold=expected_k,
            compute_deterministic=compute_deterministic,
            compute_tail_mean=compute_tail_mean,
            transfer_fixed=transfer_fixed,
            transfer_jitter_mean=transfer_jitter_mean,
            message_size=message_size,
            serialize_master_link=True,
            quantiles=quantiles,
            details={"num_groups": float(groups), "group_size": float(size)},
        )
        return estimate

    deterministic = compute_deterministic + transfer_fixed
    tail_mean = compute_tail_mean + transfer_jitter_mean
    if tail_mean <= 0.0:
        mean_total = deterministic
        variance = 0.0
        quantile_map = {q: deterministic for q in quantiles}
    else:
        # Alternating-binomial harmonic sum; fsum keeps the cancellation tame.
        terms = [
            (-1.0) ** (j + 1) * math.comb(groups, j) * harmonic_number(size * j)
            for j in range(1, groups + 1)
        ]
        mean_total = deterministic + tail_mean * math.fsum(terms)

        def min_of_maxima_cdf(t: float) -> float:
            base = _exp_cdf(t, deterministic, tail_mean)
            return 1.0 - (1.0 - base**size) ** groups

        second_terms = [
            (-1.0) ** (j + 1)
            * math.comb(groups, j)
            * _squared_maximum_moment(size * j)
            for j in range(1, groups + 1)
        ]
        second_moment_tail = math.fsum(second_terms)  # E[(T - D)^2] / tail^2
        variance = max(
            tail_mean**2 * (second_moment_tail - math.fsum(terms) ** 2), 0.0
        )
        quantile_map = {
            q: _bisect_quantile(
                min_of_maxima_cdf, q, deterministic, mean_total + tail_mean
            )
            for q in quantiles
        }

    computation = compute_deterministic + (
        (mean_total - deterministic)
        * (compute_tail_mean / tail_mean if tail_mean > 0 else 0.0)
    )
    finished = n * _exp_cdf(mean_total, compute_deterministic, compute_tail_mean)
    return AnalyticIteration(
        scheme=scheme,
        total_time=float(mean_total),
        computation_time=float(computation),
        communication_time=float(max(mean_total - computation, 0.0)),
        recovery_threshold=float(expected_k),
        communication_load=float(expected_k) * float(message_size),
        workers_finished_compute=float(finished),
        variance=float(variance),
        quantiles=quantile_map,
        mode="parallel",
        details={
            "num_groups": float(groups),
            "group_size": float(size),
            "expected_stopping_index": float(expected_k),
        },
    )


def _squared_maximum_moment(a: int) -> float:
    """``E[max(E_1..E_a)^2]`` for unit-mean exponentials: ``H_a^2 + H_a^(2)``."""
    if a <= 0:
        return 0.0
    indices = np.arange(1, a + 1, dtype=float)
    h1 = float(np.sum(1.0 / indices))
    h2 = float(np.sum(1.0 / indices**2))
    return h1 * h1 + h2


# --------------------------------------------------------------------------- #
# Quadrature engines (heterogeneous schemes, parallel link)
# --------------------------------------------------------------------------- #
def _survival_moments(
    survival: Callable[[np.ndarray], np.ndarray],
    *,
    start: float,
    scale_hint: float,
    grid_points: int = 4097,
) -> Tuple[float, float, np.ndarray, np.ndarray]:
    """Mean and variance of a nonnegative rv from its survival function.

    Uses ``E[T] = ∫ S(t) dt`` and ``E[T^2] = 2 ∫ t S(t) dt`` on a trapezoid
    grid whose upper end is doubled until the survival is negligible.
    """
    upper = max(start + 8.0 * max(scale_hint, 1e-12), start * 1.5 + 1e-9)
    for _ in range(80):
        if float(survival(np.array([upper]))[0]) < 1e-12:
            break
        upper = start + 2.0 * (upper - start)
    grid = np.linspace(0.0, upper, int(grid_points))
    values = np.clip(survival(grid), 0.0, 1.0)
    mean = float(_trapezoid(values, grid))
    second = float(_trapezoid(2.0 * grid * values, grid))
    variance = max(second - mean * mean, 0.0)
    return mean, variance, grid, values


def _vector_exp_cdf(
    t: np.ndarray, deterministic: np.ndarray, tail_mean: np.ndarray
) -> np.ndarray:
    """Vectorised arrival CDF grid: shape ``(len(t), len(deterministic))``."""
    shifted = t[:, None] - deterministic[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        rates = np.where(tail_mean > 0.0, 1.0 / np.maximum(tail_mean, 1e-300), np.inf)
    cdf = np.where(
        shifted >= 0.0,
        np.where(
            np.isinf(rates)[None, :],
            1.0,
            -np.expm1(-np.maximum(shifted, 0.0) * rates[None, :]),
        ),
        0.0,
    )
    return cdf


def maximum_runtime(
    *,
    scheme: str,
    arrival_parameters: Sequence[Tuple[float, float]],
    compute_parameters: Sequence[Tuple[float, float]],
    communication_load: float,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    details: Optional[Mapping[str, float]] = None,
) -> AnalyticIteration:
    """Estimate for wait-for-every-active-worker stopping rules.

    ``arrival_parameters`` holds one ``(deterministic, tail-mean)`` pair per
    *active* worker (idle workers excluded); the iteration ends at the
    maximum of the independent arrivals, whose survival function
    ``1 - prod_i F_i(t)`` is integrated exactly (group-wise identical workers
    simply contribute a power of their shared CDF).
    """
    det = np.array([p[0] for p in arrival_parameters], dtype=float)
    tail = np.array([p[1] for p in arrival_parameters], dtype=float)
    det_c = np.array([p[0] for p in compute_parameters], dtype=float)
    tail_c = np.array([p[1] for p in compute_parameters], dtype=float)

    def survival(t: np.ndarray) -> np.ndarray:
        return 1.0 - np.prod(_vector_exp_cdf(t, det, tail), axis=1)

    start = float(det.max(initial=0.0))
    scale = float(np.sum(tail) + 1.0e-12)
    mean, variance, _grid, _values = _survival_moments(
        survival, start=start, scale_hint=scale
    )

    def compute_survival(t: np.ndarray) -> np.ndarray:
        return 1.0 - np.prod(_vector_exp_cdf(t, det_c, tail_c), axis=1)

    computation, _cvar, _g, _v = _survival_moments(
        compute_survival, start=float(det_c.max(initial=0.0)), scale_hint=scale
    )

    def cdf(t: float) -> float:
        return float(np.prod(_vector_exp_cdf(np.array([t]), det, tail), axis=1)[0])

    quantile_map = {
        q: _bisect_quantile(cdf, q, start, mean + scale) for q in quantiles
    }
    finished = float(
        np.sum(_vector_exp_cdf(np.array([mean]), det_c, tail_c), axis=1)[0]
    )
    return AnalyticIteration(
        scheme=scheme,
        total_time=float(mean),
        computation_time=float(min(computation, mean)),
        communication_time=float(max(mean - computation, 0.0)),
        recovery_threshold=float(len(arrival_parameters)),
        communication_load=float(communication_load),
        workers_finished_compute=finished,
        variance=float(variance),
        quantiles=quantile_map,
        mode="parallel",
        details=dict(details or {}),
    )


def coverage_runtime(
    *,
    scheme: str,
    num_units: int,
    worker_loads: Sequence[int],
    arrival_parameters: Sequence[Tuple[float, float]],
    compute_parameters: Sequence[Tuple[float, float]],
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    details: Optional[Mapping[str, float]] = None,
) -> AnalyticIteration:
    """Estimate for heterogeneous random-coverage stopping rules.

    Worker ``i`` holds ``worker_loads[i]`` units drawn uniformly at random;
    the master stops at coverage of all ``m`` units. A unit is uncovered at
    time ``t`` with probability ``rho(t) = prod_i (1 - (l_i / m) F_i(t))``;
    treating units as independent (the Poissonisation the paper's Theorem 2
    analysis also leans on) gives completion CDF ``(1 - rho(t))^m``. A random
    placement covers every unit only with probability ``(1 - rho(inf))^m``,
    and the simulator re-draws placements until coverage is achievable
    (:meth:`~repro.schemes.base.Scheme.build_feasible_plan`), so the CDF is
    conditioned on that event before the quadrature. Entries with zero load
    contribute nothing.
    """
    m = int(num_units)
    loads = np.asarray(worker_loads, dtype=float)
    det = np.array([p[0] for p in arrival_parameters], dtype=float)
    tail = np.array([p[1] for p in arrival_parameters], dtype=float)
    det_c = np.array([p[0] for p in compute_parameters], dtype=float)
    tail_c = np.array([p[1] for p in compute_parameters], dtype=float)
    active = loads > 0
    if not np.any(active) or float(loads.sum()) < m:
        raise AnalyticIntractableError(
            "the workers jointly hold fewer unit selections than there are "
            "units; coverage can never complete"
        )
    fractions = loads[active] / float(m)
    # Probability the placement covers everything once every worker reported;
    # the simulator conditions on this event by re-drawing placements.
    rho_infinity = float(np.prod(1.0 - fractions))
    feasible = (1.0 - rho_infinity) ** m
    if feasible < 1e-6:
        raise AnalyticIntractableError(
            "a random placement with these loads almost never covers all "
            f"{m} units (coverage probability {feasible:.2e}); increase the "
            "loads or use a simulation backend"
        )

    def completion_cdf_grid(t: np.ndarray) -> np.ndarray:
        arrived = _vector_exp_cdf(t, det[active], tail[active])
        rho = np.prod(1.0 - fractions[None, :] * arrived, axis=1)
        return np.minimum((1.0 - rho) ** m / feasible, 1.0)

    def survival(t: np.ndarray) -> np.ndarray:
        return 1.0 - completion_cdf_grid(t)

    start = float(det[active].min(initial=0.0))
    scale = float(np.max(tail[active], initial=0.0) * (1.0 + math.log(max(m, 2))))
    mean, variance, _grid, _values = _survival_moments(
        survival, start=start, scale_hint=max(scale, 1e-12)
    )

    def compute_completion(t: np.ndarray) -> np.ndarray:
        arrived = _vector_exp_cdf(t, det_c[active], tail_c[active])
        rho = np.prod(1.0 - fractions[None, :] * arrived, axis=1)
        return np.minimum((1.0 - rho) ** m / feasible, 1.0)

    computation, _cv, _g, _v = _survival_moments(
        lambda t: 1.0 - compute_completion(t),
        start=float(det_c[active].min(initial=0.0)),
        scale_hint=max(scale, 1e-12),
    )

    quantile_map = {
        q: _bisect_quantile(
            lambda t: float(completion_cdf_grid(np.array([t]))[0]),
            q,
            start,
            mean + max(scale, 1e-12),
        )
        for q in quantiles
    }
    arrived_at_mean = _vector_exp_cdf(np.array([mean]), det, tail)[0]
    expected_heard = float(np.sum(arrived_at_mean[active]))
    expected_load = float(np.sum(loads[active] * arrived_at_mean[active]))
    finished = float(np.sum(_vector_exp_cdf(np.array([mean]), det_c, tail_c)[0]))
    return AnalyticIteration(
        scheme=scheme,
        total_time=float(mean),
        computation_time=float(min(computation, mean)),
        communication_time=float(max(mean - computation, 0.0)),
        recovery_threshold=expected_heard,
        communication_load=expected_load,
        workers_finished_compute=finished,
        variance=float(variance),
        quantiles=quantile_map,
        mode="parallel",
        details=dict(details or {}),
    )
