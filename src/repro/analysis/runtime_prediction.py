"""Closed-form run-time predictions for the homogeneous schemes.

The discrete-event simulator (:mod:`repro.simulation`) *measures* per-iteration
run times; this module *predicts* them analytically for homogeneous clusters
of shift-exponential workers with a parallel (non-serialised) master link —
the regime of the paper's EC2 experiments. The prediction decomposes an
iteration exactly the way the simulator does:

* every active worker's message becomes available at
  ``compute_time + transfer_time``;
* the scheme finishes at (approximately) the ``K``-th smallest of those
  arrival times, where ``K`` is the scheme's recovery threshold.

For i.i.d. shift-exponential compute times and exponential-jitter transfer
times the arrival time is a shifted sum of two exponentials; the prediction
approximates its ``K``-th order statistic by adding the deterministic parts to
the order statistic of the combined exponential tail matched by its mean.
The tests check the prediction against the simulator to ~15 % accuracy over
the paper's parameter range — good enough to reason about parameter choices
(e.g. the best computational load) without running a sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.order_statistics import expected_kth_exponential_order_statistic
from repro.analysis.thresholds import (
    bcc_recovery_threshold,
    cyclic_repetition_recovery_threshold,
    randomized_recovery_threshold,
)
from repro.exceptions import ConfigurationError
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import ShiftedExponentialDelay
from repro.utils.validation import check_positive_int

__all__ = ["IterationPrediction", "predict_iteration_time"]


@dataclass(frozen=True)
class IterationPrediction:
    """Predicted per-iteration timing for one scheme.

    Attributes
    ----------
    scheme:
        Scheme name (``"bcc"``, ``"uncoded"``, ``"cyclic-repetition"``,
        ``"randomized"``).
    recovery_threshold:
        The expected number of workers the master waits for.
    total_time:
        Predicted iteration wall-clock time (seconds).
    compute_component, communication_component:
        The deterministic-plus-tail split used to build the prediction.
    """

    scheme: str
    recovery_threshold: float
    total_time: float
    compute_component: float
    communication_component: float


def predict_iteration_time(
    scheme: str,
    num_units: int,
    num_workers: int,
    load: int,
    unit_size: int,
    compute: ShiftedExponentialDelay,
    communication: LinearCommunicationModel,
) -> IterationPrediction:
    """Predict one iteration's run time for a homogeneous cluster.

    Parameters
    ----------
    scheme:
        ``"uncoded"``, ``"bcc"``, ``"cyclic-repetition"`` or ``"randomized"``.
    num_units, num_workers, load:
        Problem dimensions: data units ``m``, workers ``n`` and computational
        load ``r`` (units per worker; ignored for the uncoded scheme, which
        uses ``m / n``).
    unit_size:
        Examples per data unit (the paper's batches hold 100 examples).
    compute, communication:
        The per-worker computation model and the master-side transfer model
        (the EC2-like calibration of :mod:`repro.experiments.ec2` uses these
        exact classes).
    """
    m = check_positive_int(num_units, "num_units")
    n = check_positive_int(num_workers, "num_workers")
    check_positive_int(unit_size, "unit_size")

    if scheme == "uncoded":
        threshold = float(n)
        per_worker_units = max(m // n, 1)
        message_size = 1.0
    elif scheme == "bcc":
        threshold = min(bcc_recovery_threshold(m, load), float(n))
        per_worker_units = load
        message_size = 1.0
    elif scheme == "cyclic-repetition":
        threshold = min(cyclic_repetition_recovery_threshold(m, load), float(n))
        per_worker_units = load
        message_size = 1.0
    elif scheme == "randomized":
        threshold = min(randomized_recovery_threshold(m, load), float(n))
        per_worker_units = load
        message_size = float(load)
    else:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; expected uncoded, bcc, "
            "cyclic-repetition or randomized"
        )

    examples_per_worker = per_worker_units * unit_size
    k = max(int(math.ceil(threshold)), 1)

    # Deterministic components.
    compute_shift = compute.shift * examples_per_worker
    transfer_fixed = communication.latency + communication.seconds_per_unit * message_size

    # Random components: exponential compute tail + exponential transfer jitter.
    compute_tail_mean = examples_per_worker / compute.straggling
    jitter_mean = communication.jitter
    combined_tail_mean = compute_tail_mean + jitter_mean
    if combined_tail_mean > 0:
        tail = expected_kth_exponential_order_statistic(
            n, min(k, n), rate=1.0 / combined_tail_mean
        )
    else:
        tail = 0.0

    total = compute_shift + transfer_fixed + tail
    return IterationPrediction(
        scheme=scheme,
        recovery_threshold=threshold,
        total_time=total,
        compute_component=compute_shift + compute_tail_mean,
        communication_component=transfer_fixed + jitter_mean,
    )
