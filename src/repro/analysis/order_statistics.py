"""Order statistics of worker completion times.

The run time of every scheme in the paper is governed by order statistics of
the workers' completion times: the uncoded scheme finishes with the *maximum*
of ``n`` i.i.d. times, a coded scheme with the ``(n - s)``-th smallest, and
BCC with a random index concentrated around ``(m/r) log(m/r)``. For the
shift-exponential family the paper uses (Eq. 15), these expectations have
closed forms through partial harmonic sums; this module provides them, plus a
generic Monte-Carlo fallback for arbitrary delay models, and the resulting
analytical run-time predictions are checked against the discrete-event
simulator in the test suite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.analysis.coupon import harmonic_number
from repro.stragglers.base import DelayModel
from repro.stragglers.models import ShiftedExponentialDelay
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "expected_kth_exponential_order_statistic",
    "expected_kth_shift_exponential_completion",
    "expected_maximum_shift_exponential_completion",
    "monte_carlo_kth_completion",
]


def expected_kth_exponential_order_statistic(
    num_samples: int, k: int, rate: float = 1.0
) -> float:
    """``E[X_(k)]`` for ``k``-th smallest of ``n`` i.i.d. Exponential(rate) variables.

    The classical identity ``E[X_(k)] = (H_n - H_{n-k}) / rate`` follows from
    the memorylessness of the exponential: the gap between consecutive order
    statistics ``X_(i+1) - X_(i)`` is exponential with rate ``(n - i) * rate``.
    """
    n = check_positive_int(num_samples, "num_samples")
    k = check_positive_int(k, "k")
    if k > n:
        raise ConfigurationError(f"k must be at most num_samples ({n}), got {k}")
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    return (harmonic_number(n) - harmonic_number(n - k)) / rate


def expected_kth_shift_exponential_completion(
    num_workers: int,
    k: int,
    load: int,
    model: ShiftedExponentialDelay,
) -> float:
    """Expected ``k``-th fastest completion among identical shift-exponential workers.

    Every worker processes ``load`` examples, so its completion time is
    ``shift * load + Exp(straggling / load)``; the deterministic part is common
    to all workers and the exponential parts obey the order-statistic identity
    above.
    """
    check_positive_int(load, "load")
    tail = expected_kth_exponential_order_statistic(
        num_workers, k, rate=model.straggling / load
    )
    return model.shift * load + tail


def expected_maximum_shift_exponential_completion(
    num_workers: int, load: int, model: ShiftedExponentialDelay
) -> float:
    """Expected slowest completion (the uncoded scheme's computation time)."""
    return expected_kth_shift_exponential_completion(
        num_workers, num_workers, load, model
    )


def monte_carlo_kth_completion(
    num_workers: int,
    k: int,
    load: int,
    model: DelayModel,
    rng: RandomState = None,
    num_trials: int = 2000,
) -> float:
    """Monte-Carlo ``E[k-th fastest completion]`` for an arbitrary delay model."""
    n = check_positive_int(num_workers, "num_workers")
    k = check_positive_int(k, "k")
    if k > n:
        raise ConfigurationError(f"k must be at most num_workers ({n}), got {k}")
    check_positive_int(num_trials, "num_trials")
    generator = as_generator(rng)
    times = model.sample(load, rng=generator, size=(num_trials, n))
    kth = np.partition(times, k - 1, axis=1)[:, k - 1]
    return float(kth.mean())
