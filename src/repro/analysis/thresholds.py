"""Recovery-threshold and communication-load formulas for every scheme.

All formulas are stated for ``m`` training examples (or batches, when
``m > n`` the paper groups examples into ``n`` "super examples"), ``n``
workers, and computational load ``r`` (examples per worker):

=====================  ============================  =========================
Scheme                 Recovery threshold ``K(r)``   Communication load ``L(r)``
=====================  ============================  =========================
Lower bound            ``m / r``                     ``m / r``
BCC (paper, Eq. 2)     ``ceil(m/r) * H_ceil(m/r)``   same as ``K``
Uncoded                ``n``                         ``n`` (one unit each)
Simple randomized      ``~ (m/r) log m`` (exact       ``r *`` its ``K``
                       value computed numerically)
Cyclic repetition /    ``m - r + 1``                 ``m - r + 1``
Reed-Solomon / MDS
=====================  ============================  =========================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.analysis.coupon import harmonic_number
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive_int

__all__ = [
    "SchemeFormulas",
    "lower_bound_recovery_threshold",
    "bcc_recovery_threshold",
    "bcc_communication_load",
    "uncoded_recovery_threshold",
    "uncoded_communication_load",
    "cyclic_repetition_recovery_threshold",
    "cyclic_repetition_communication_load",
    "randomized_recovery_threshold",
    "randomized_communication_load",
    "scheme_formula_registry",
]


def _validate(num_examples: int, load: int) -> tuple[int, int]:
    m = check_positive_int(num_examples, "num_examples")
    r = check_positive_int(load, "load")
    if r > m:
        raise ConfigurationError(
            f"the computational load r={r} cannot exceed the number of examples m={m}"
        )
    return m, r


def lower_bound_recovery_threshold(num_examples: int, load: int) -> float:
    """The information-theoretic lower bound ``K*(r) >= m / r`` (Theorem 1)."""
    m, r = _validate(num_examples, load)
    return m / r


def bcc_recovery_threshold(num_examples: int, load: int) -> float:
    """BCC's recovery threshold ``K_BCC(r) = ceil(m/r) * H_ceil(m/r)`` (Eq. 2)."""
    m, r = _validate(num_examples, load)
    num_batches = math.ceil(m / r)
    return num_batches * harmonic_number(num_batches)


def bcc_communication_load(num_examples: int, load: int) -> float:
    """BCC's communication load equals its recovery threshold (each message has unit size)."""
    return bcc_recovery_threshold(num_examples, load)


def uncoded_recovery_threshold(num_examples: int, num_workers: int) -> float:
    """The uncoded scheme waits for every worker: ``K = n``."""
    check_positive_int(num_examples, "num_examples")
    return float(check_positive_int(num_workers, "num_workers"))


def uncoded_communication_load(num_examples: int, num_workers: int) -> float:
    """Each uncoded worker sends one summed message: ``L = n``."""
    return uncoded_recovery_threshold(num_examples, num_workers)


def cyclic_repetition_recovery_threshold(num_examples: int, load: int) -> float:
    """Cyclic-repetition / RS / cyclic-MDS threshold ``K = m - r + 1`` (Eq. 7).

    Stated for the paper's ``m = n`` convention (one example — or "super
    example" — per worker).
    """
    m, r = _validate(num_examples, load)
    return float(m - r + 1)


def cyclic_repetition_communication_load(num_examples: int, load: int) -> float:
    """Coded schemes send one coded unit per surviving worker: ``L = m - r + 1`` (Eq. 8)."""
    return cyclic_repetition_recovery_threshold(num_examples, load)


def randomized_recovery_threshold(
    num_examples: int, load: int, *, exact: bool = True
) -> float:
    """Recovery threshold of the simple randomized (no batching) scheme.

    Each worker independently picks ``r`` of the ``m`` examples uniformly at
    random (without replacement) and reports each partial gradient
    individually; the master needs coverage of all ``m`` examples.

    With ``exact=True`` the expectation is computed from the exact per-worker
    coverage dynamics of the equivalent coupon-collector-with-group-drawings
    process: the expected number of workers is ``sum_{t>=0} P(not covered
    after t workers)`` evaluated via inclusion–exclusion. With
    ``exact=False`` the paper's approximation ``(m/r) log m`` (Eq. 5) is
    returned.
    """
    m, r = _validate(num_examples, load)
    if not exact:
        return (m / r) * math.log(m) if m > 1 else 1.0
    if r == m:
        return 1.0
    # The process is a coupon-collector with group drawings: each worker
    # covers a uniform r-subset of the m examples. Writing the expectation as
    # the sum of the survival function and applying inclusion-exclusion over
    # the set of uncovered examples gives, after summing the geometric series
    # in the number of workers t,
    #   E[W] = sum_{k=1}^{m} (-1)^{k+1} C(m, k) / (1 - q_k),
    #   q_k  = C(m - k, r) / C(m, r),
    # where q_k is the probability that one worker misses k fixed examples.
    # The alternating sum suffers catastrophic float cancellation (the
    # binomials dwarf the result), so it is evaluated in exact rational
    # arithmetic and converted to float only at the end.
    from fractions import Fraction

    denominator = math.comb(m, r)
    total = Fraction(0)
    for k in range(1, m + 1):
        misses = math.comb(m - k, r) if (m - k) >= r else 0
        q_k = Fraction(misses, denominator)
        term = Fraction(math.comb(m, k)) / (1 - q_k)
        total += term if (k % 2 == 1) else -term
    return float(total)


def randomized_communication_load(
    num_examples: int, load: int, *, exact: bool = True
) -> float:
    """Communication load of the simple randomized scheme.

    Every worker ships ``r`` individual partial gradients, so
    ``L = r * K_random`` — approximately ``m log m`` (Eq. 6).
    """
    m, r = _validate(num_examples, load)
    return r * randomized_recovery_threshold(m, r, exact=exact)


@dataclass(frozen=True)
class SchemeFormulas:
    """Closed-form (or numerically exact) ``K(r)`` and ``L(r)`` for one scheme."""

    name: str
    recovery_threshold: Callable[[int, int], float]
    communication_load: Callable[[int, int], float]


def scheme_formula_registry() -> Dict[str, SchemeFormulas]:
    """Registry of the analytic formulas keyed by scheme name.

    The uncoded entry interprets its second argument as the number of workers
    ``n`` (its threshold does not depend on ``r``); every other entry takes
    ``(m, r)``.
    """
    return {
        "lower-bound": SchemeFormulas(
            "lower-bound", lower_bound_recovery_threshold, lower_bound_recovery_threshold
        ),
        "bcc": SchemeFormulas("bcc", bcc_recovery_threshold, bcc_communication_load),
        "uncoded": SchemeFormulas(
            "uncoded", uncoded_recovery_threshold, uncoded_communication_load
        ),
        "cyclic-repetition": SchemeFormulas(
            "cyclic-repetition",
            cyclic_repetition_recovery_threshold,
            cyclic_repetition_communication_load,
        ),
        "randomized": SchemeFormulas(
            "randomized", randomized_recovery_threshold, randomized_communication_load
        ),
    }
