"""The ``repro lint`` command-line interface.

Reachable three ways, all equivalent::

    python -m repro lint src/repro
    python -m repro.experiments.cli lint src/repro --format json
    python -m repro.devtools.cli src/repro --select EXC001,RNG001

Exit status: 0 when the tree is clean, 1 when any finding (of any severity)
was reported, 2 on a usage error. CI runs ``--format json`` and fails the
lint job on the exit status, so every contract in the catalogue is enforced
at diff time.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.devtools.engine import iter_python_files, lint_modules
from repro.devtools.context import ModuleContext
from repro.devtools.reporting import format_json, format_rule_listing, format_text
from repro.exceptions import ReproError

__all__ = ["build_parser", "run", "main"]

DEFAULT_PATHS = ("src/repro",)


def build_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    """The ``lint`` argument parser (reused by the experiments CLI)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="Statically check the repo's determinism, parity, and"
            " exception-hierarchy contracts.",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit status."""
    if args.list_rules:
        print(format_rule_listing())
        return 0
    select = (
        [rule_id.strip() for rule_id in args.select.split(",") if rule_id.strip()]
        if args.select
        else None
    )
    try:
        files = iter_python_files(args.paths)
        modules = [ModuleContext.from_path(path) for path in files]
        findings = lint_modules(modules, select=select)
    except ReproError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    formatter = format_json if args.output_format == "json" else format_text
    print(formatter(findings, checked_files=len(files)))
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.devtools.cli``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
