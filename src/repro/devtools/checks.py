"""The initial ``reprolint`` rule catalogue.

Each rule machine-enforces one invariant the repo's correctness story rests
on — invariants that were previously guarded only by convention and by
whichever tests happened to exercise the path. See ``docs/contracts.rst``
for the full catalogue with rationale and the pragma escape hatch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.context import ModuleContext, ProjectModel
from repro.devtools.findings import Finding, Severity
from repro.devtools.rules import Rule, register_rule

__all__ = [
    "GlobalRandomnessRule",
    "BatchPathParityRule",
    "BareBuiltinRaiseRule",
    "SchedulerCatchAllRule",
    "SchemeAnalyticObligationRule",
    "WallClockRule",
    "LenKeyedCacheRule",
    "IdentityKeyedCacheRule",
    "PublicDocstringRule",
    "StrictCoreAnnotationRule",
]


def _dotted(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``, or ``None`` for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _ImportMap:
    """Which local names refer to ``numpy``, ``numpy.random``, ``random``, ..."""

    def __init__(self, tree: ast.Module) -> None:
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.stdlib_random_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.datetime_module_aliases: Set[str] = set()
        self.datetime_class_aliases: Set[str] = set()
        self.date_class_aliases: Set[str] = set()
        # name -> original, for ``from numpy.random import default_rng as x``
        self.from_numpy_random: Dict[str, str] = {}
        self.from_stdlib_random: Dict[str, str] = {}
        self.from_time: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        self.numpy_aliases.add(local)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.numpy_random_aliases.add(alias.asname)
                        else:
                            self.numpy_aliases.add("numpy")
                    elif alias.name == "random":
                        self.stdlib_random_aliases.add(local)
                    elif alias.name == "time":
                        self.time_aliases.add(local)
                    elif alias.name == "datetime":
                        self.datetime_module_aliases.add(local)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    if node.module == "numpy" and alias.name == "random":
                        self.numpy_random_aliases.add(local)
                    elif node.module == "numpy.random":
                        self.from_numpy_random[local] = alias.name
                    elif node.module == "random":
                        self.from_stdlib_random[local] = alias.name
                    elif node.module == "time":
                        self.from_time[local] = alias.name
                    elif node.module == "datetime":
                        if alias.name == "datetime":
                            self.datetime_class_aliases.add(local)
                        elif alias.name == "date":
                            self.date_class_aliases.add(local)

    def numpy_random_tail(self, chain: Tuple[str, ...]) -> Optional[Tuple[str, ...]]:
        """The attribute path after ``numpy.random``, or ``None``."""
        if len(chain) >= 2 and chain[0] in self.numpy_aliases and chain[1] == "random":
            return chain[2:]
        if len(chain) >= 1 and chain[0] in self.numpy_random_aliases:
            return chain[1:]
        return None


@register_rule
class GlobalRandomnessRule(Rule):
    """RNG001 — all randomness flows through explicit, injected generators."""

    id = "RNG001"
    title = "no global-state or re-seeded randomness outside repro.utils.rng"
    severity = Severity.ERROR
    rationale = (
        "Bit-identical loop==vectorized==batched execution requires every "
        "draw to come from an explicitly passed generator seeded by the "
        "documented SeedSequence spawn strategy. A np.random.default_rng() "
        "with a literal or implicit seed (or any legacy np.random.* / "
        "stdlib random.* global-state call) creates a hidden stream that "
        "silently breaks replay and parity."
    )

    _EXEMPT_MODULES = ("repro.utils.rng",)

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None or module.module in self._EXEMPT_MODULES:
            return
        imports = _ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None:
                continue
            tail = imports.numpy_random_tail(chain)
            if tail is None and len(chain) == 1:
                origin = imports.from_numpy_random.get(chain[0])
                if origin is not None:
                    tail = (origin,)
                elif chain[0] in imports.from_stdlib_random:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"call to stdlib random.{imports.from_stdlib_random[chain[0]]}"
                        " uses global random state; draw from an injected"
                        " numpy Generator (see repro.utils.rng)",
                        column=node.col_offset,
                    )
                    continue
            if tail is not None:
                yield from self._check_numpy_random(module, node, tail)
                continue
            if len(chain) == 2 and chain[0] in imports.stdlib_random_aliases:
                yield self.finding(
                    module,
                    node.lineno,
                    f"call to stdlib random.{chain[1]} uses global random state;"
                    " draw from an injected numpy Generator (see repro.utils.rng)",
                    column=node.col_offset,
                )

    def _check_numpy_random(
        self, module: ModuleContext, node: ast.Call, tail: Tuple[str, ...]
    ) -> Iterator[Finding]:
        if not tail or tail[0] == "SeedSequence":
            # Constructing a SeedSequence is deterministic bookkeeping, and a
            # bare ``np.random`` reference is not a draw.
            return
        if tail == ("default_rng",):
            # Passing a seed *variable* through is the sanctioned conversion
            # (repro.utils.rng.as_generator does exactly this); a literal,
            # computed, or missing seed pins a hidden stream.
            if (
                len(node.args) == 1
                and not node.keywords
                and isinstance(node.args[0], (ast.Name, ast.Attribute))
            ):
                return
            yield self.finding(
                module,
                node.lineno,
                "np.random.default_rng with a literal, computed, or implicit"
                " seed creates a hidden RNG stream; accept a RandomState and"
                " route it through repro.utils.rng.as_generator",
                column=node.col_offset,
            )
            return
        yield self.finding(
            module,
            node.lineno,
            f"np.random.{'.'.join(tail)} uses numpy's global random state;"
            " draw from an injected Generator instead",
            column=node.col_offset,
        )


@register_rule
class BatchPathParityRule(Rule):
    """RNG002 — scalar-sampler overrides must address the batch paths."""

    id = "RNG002"
    title = "sample() overrides must provide (or pragma-inherit) the batch paths"
    severity = Severity.ERROR
    rationale = (
        "The vectorized and trial-batched engines reach delay and "
        "communication models through sample_batch/sample_grid/sample_trials. "
        "DelayModel's grid paths dispatch as *classmethods*, so a subclass "
        "that changes sample() while silently inheriting an ancestor's "
        "vectorized grid formula diverges from the loop engine without any "
        "test necessarily noticing. Each override must either implement the "
        "batch paths or carry an explicit pragma documenting why the "
        "inherited path is bit-exact for it."
    )

    # Required batch paths per contract root. CommunicationModel's
    # sample_trials is defined in terms of *instance-dispatched*
    # sample_batch, so overriding sample_batch alone keeps every path
    # consistent; DelayModel's grid/trials paths dispatch per-class and must
    # each be addressed.
    _ROOTS: Dict[str, Set[str]] = {
        "DelayModel": {"sample_batch", "sample_grid", "sample_trials"},
        "CommunicationModel": {"sample_batch"},
    }

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name in self._ROOTS:
                continue
            info = project.lookup(node.name, near=module.module)
            if info is None or info.lineno != node.lineno:
                continue
            required: Optional[Set[str]] = None
            for root, paths in self._ROOTS.items():
                if project.is_subclass_of(info, (root,)):
                    required = paths
                    break
            if required is None or "sample" not in info.methods:
                continue
            missing = sorted(required - info.methods)
            if missing:
                yield self.finding(
                    module,
                    node.lineno,
                    f"{node.name} overrides sample() but not "
                    f"{', '.join(missing)}; implement them or pragma-inherit"
                    " with a reason explaining why the inherited path stays"
                    " bit-exact",
                    column=node.col_offset,
                )


@register_rule
class BareBuiltinRaiseRule(Rule):
    """EXC001 — library errors come from the repro.exceptions hierarchy."""

    id = "EXC001"
    title = "no bare builtin exceptions raised from library code"
    severity = Severity.ERROR
    rationale = (
        "Callers are promised they can catch ReproError for every failure "
        "the library raises intentionally while programming errors propagate "
        "unchanged. A bare ValueError/RuntimeError/TypeError breaks that "
        "contract; use ConfigurationError (which keeps ValueError as a base "
        "for backwards compatibility) or a more specific subclass."
    )

    _BUILTIN = {"ValueError", "RuntimeError", "TypeError", "Exception"}

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in self._BUILTIN:
                yield self.finding(
                    module,
                    node.lineno,
                    f"raise of bare builtin {exc.id}; raise a repro.exceptions"
                    " type instead (ConfigurationError subclasses ValueError"
                    " for backwards compatibility)",
                    column=node.col_offset,
                )


@register_rule
class SchedulerCatchAllRule(Rule):
    """EXC002 — the scheduler core and service never swallow blindly."""

    id = "EXC002"
    title = "no catch-all exception handlers in repro.scheduling / repro.service"
    severity = Severity.ERROR
    rationale = (
        "The scheduling core decides, per cell, whether to hoist plans, "
        "batch trials, or serve from cache; a bare `except:` or "
        "`except Exception:` there turns programming errors into silent "
        "wrong decisions (the pre-refactor plan probe swallowed every "
        "failure this way). Scheduler and service code must catch the "
        "repro exception hierarchy — or narrower — so real bugs propagate."
    )

    _SCOPE = ("repro.scheduling", "repro.service")
    _CATCH_ALL = {"Exception", "BaseException"}

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None or not module.in_package(*self._SCOPE):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = self._catch_all_name(node.type)
            if caught is None:
                continue
            label = "bare `except:`" if caught == "" else f"`except {caught}`"
            yield self.finding(
                module,
                node.lineno,
                f"catch-all {label} in scheduler/service code;"
                " catch ReproError (or a narrower repro.exceptions type) so"
                " programming errors propagate instead of becoming silent"
                " scheduling decisions",
                column=node.col_offset,
            )

    @classmethod
    def _catch_all_name(cls, node: Optional[ast.expr]) -> Optional[str]:
        """The offending name when a handler catches everything, else None."""
        if node is None:
            return ""  # a bare ``except:``
        if isinstance(node, ast.Tuple):
            for element in node.elts:
                name = cls._catch_all_name(element)
                if name:
                    return name
            return None
        chain = _dotted(node)
        if chain and chain[-1] in cls._CATCH_ALL:
            return chain[-1]
        return None


@register_rule
class SchemeAnalyticObligationRule(Rule):
    """SCHEME001 — registered schemes must take a stance on analytics."""

    id = "SCHEME001"
    title = "@register_scheme classes must define analytic_runtime"
    severity = Severity.ERROR
    rationale = (
        "AnalyticBackend promises every registered scheme either a "
        "closed-form expected runtime or a typed AnalyticIntractableError "
        "naming the missing piece. A scheme registered without its own "
        "analytic_runtime (or one inherited from a non-root ancestor) "
        "silently falls through to the abstract default and erodes that "
        "contract."
    )

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorated = any(
                self._is_register_scheme(decorator) for decorator in node.decorator_list
            )
            if not decorated:
                continue
            info = project.lookup(node.name, near=module.module)
            if info is None:
                continue
            if not project.defines_in_ancestry(
                info, "analytic_runtime", stop_at=("Scheme",)
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"{node.name} is registered but neither defines"
                    " analytic_runtime nor inherits one from a concrete"
                    " ancestor; implement it (raising"
                    " AnalyticIntractableError is an acceptable"
                    " implementation) so AnalyticBackend keeps its"
                    " every-scheme obligation",
                    column=node.col_offset,
                )

    @staticmethod
    def _is_register_scheme(decorator: ast.expr) -> bool:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = _dotted(target)
        return bool(chain) and chain[-1] == "register_scheme"


@register_rule
class WallClockRule(Rule):
    """TIME001 — simulated time never reads the wall clock."""

    id = "TIME001"
    title = "no wall-clock reads in simulation or analysis code"
    severity = Severity.ERROR
    rationale = (
        "Simulation and analysis results are pure functions of (spec, seed); "
        "a time.time()/datetime.now() read makes output depend on the host "
        "clock and breaks replay, caching, and cross-backend validation. "
        "Real elapsed time belongs to repro.runtime and the sanctioned "
        "repro.utils.timing clocks only."
    )

    _TIME_CALLS = {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
    _DATETIME_CALLS = {"now", "utcnow", "today"}
    _EXEMPT_PACKAGES = ("repro.runtime",)
    _EXEMPT_MODULES = ("repro.utils.timing",)

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None:
            return
        if module.in_package(*self._EXEMPT_PACKAGES):
            return
        if module.module in self._EXEMPT_MODULES:
            return
        imports = _ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None:
                continue
            if (
                len(chain) == 2
                and chain[0] in imports.time_aliases
                and chain[1] in self._TIME_CALLS
            ):
                name = f"time.{chain[1]}"
            elif (
                len(chain) == 1
                and imports.from_time.get(chain[0]) in self._TIME_CALLS
            ):
                name = f"time.{imports.from_time[chain[0]]}"
            elif (
                len(chain) == 3
                and chain[0] in imports.datetime_module_aliases
                and chain[1] in ("datetime", "date")
                and chain[2] in self._DATETIME_CALLS
            ):
                name = f"datetime.{chain[1]}.{chain[2]}"
            elif (
                len(chain) == 2
                and chain[0] in (imports.datetime_class_aliases | imports.date_class_aliases)
                and chain[1] in self._DATETIME_CALLS
            ):
                name = f"{chain[0]}.{chain[1]}"
            else:
                continue
            yield self.finding(
                module,
                node.lineno,
                f"wall-clock read {name}() in simulation/analysis code;"
                " simulated time must come from the event clock, real"
                " timing from repro.utils.timing / repro.runtime",
                column=node.col_offset,
            )


@register_rule
class LenKeyedCacheRule(Rule):
    """CACHE001 — caches key on mutation counters, never on len()."""

    id = "CACHE001"
    title = "no len()-keyed caches; use the CountingList mutation counter"
    severity = Severity.ERROR
    rationale = (
        "A cache keyed on a container's length serves stale values after "
        "same-length replacement — the PR 2 JobResult stale-aggregate bug "
        "class. Aggregate caches must key on a mutation counter "
        "(repro.utils.counting.CountingList.version or an explicit counter "
        "bumped on every write)."
    )

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None:
            return
        flagged: Set[int] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Compare)):
                continue
            if node.lineno in flagged:
                continue
            if self._mentions_cache(node) and self._keys_on_foreign_len(node):
                flagged.add(node.lineno)
                yield self.finding(
                    module,
                    node.lineno,
                    "cache state derived from len(); key the cache on a"
                    " mutation counter (CountingList.version) so same-length"
                    " replacement invalidates it",
                    column=node.col_offset,
                )

    @staticmethod
    def _mentions_cache(node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and "cache" in child.id.lower():
                return True
            if isinstance(child, ast.Attribute) and "cache" in child.attr.lower():
                return True
        return False

    @classmethod
    def _keys_on_foreign_len(cls, node: ast.AST) -> bool:
        """A ``len()`` of something that is *not* the cache itself.

        ``len(self._cache) > BOUND`` merely measures the cache for size
        bounding and is fine; ``cache_key = (..., len(self.records), ...)``
        derives cache state from another container's length — the stale-key
        hazard this rule exists for.
        """
        return any(
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "len"
            and not any(cls._mentions_cache(argument) for argument in child.args)
            for child in ast.walk(node)
        )


@register_rule
class IdentityKeyedCacheRule(Rule):
    """CACHE002 — cache keys come from content, never from identity."""

    id = "CACHE002"
    title = "no cache keys derived from id()/hash()/repr()"
    severity = Severity.ERROR
    rationale = (
        "The result cache's contract is content addressing: equal "
        "configurations key equally across processes and sessions. id() is "
        "an address (reused after garbage collection, different every run), "
        "hash() is salted per-process for strings and falls back to id() "
        "for plain objects, and repr() of most objects embeds id(). A key "
        "touched by any of them serves wrong results or never hits; build "
        "keys from canonical fingerprints (repro.api.fingerprint) instead."
    )

    _IDENTITY_CALLS = {"id", "hash", "repr"}

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None:
            return
        flagged: Set[Tuple[int, int]] = set()
        #: Return statements inside a cache/fingerprint-named function are
        #: key constructions even when the statement itself names nothing.
        keying_returns: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = node.name.lower()
                if "cache" in name or "fingerprint" in name or "key" in name:
                    keying_returns.update(
                        child.lineno
                        for child in ast.walk(node)
                        if isinstance(child, ast.Return)
                    )
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Return, ast.Expr)
            ):
                continue
            # Key *construction* sites accept the broader key-name
            # vocabulary; bare expression statements (e.g. a display call
            # that happens to use repr() next to a loop variable named
            # ``key``) must name the cache itself to count.
            implicated = isinstance(node, ast.Return) and node.lineno in keying_returns
            if not implicated and not self._touches_cache_key(
                node, key_names=not isinstance(node, ast.Expr)
            ):
                continue
            for call in ast.walk(node):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id in self._IDENTITY_CALLS
                    and (call.lineno, call.col_offset) not in flagged
                ):
                    flagged.add((call.lineno, call.col_offset))
                    yield self.finding(
                        module,
                        call.lineno,
                        f"cache key derived from {call.func.id}(): identity is"
                        " not content — it changes across processes and GC"
                        " cycles; fingerprint the configuration instead"
                        " (repro.api.fingerprint)",
                        column=call.col_offset,
                    )

    @staticmethod
    def _touches_cache_key(node: ast.AST, *, key_names: bool) -> bool:
        """Whether a statement involves cache/fingerprint key state.

        Matches identifiers mentioning a cache or fingerprint, and — when
        ``key_names`` — ``*key``/``key*`` names (``cache_key``,
        ``task_key``, ``keys``), the vocabulary cache keying actually
        uses, while ignoring unrelated ``id``/``hash``/``repr`` calls.
        """
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                name = child.id.lower()
            elif isinstance(child, ast.Attribute):
                name = child.attr.lower()
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name.lower()
            else:
                continue
            if "cache" in name or "fingerprint" in name:
                return True
            if key_names and (name.startswith("key") or name.endswith("key")):
                return True
        return False


@register_rule
class PublicDocstringRule(Rule):
    """DOC001 — the public API surface documents itself."""

    id = "DOC001"
    title = "public names in repro.api carry docstrings"
    severity = Severity.WARNING
    rationale = (
        "repro.api is the library's front door and is rendered by the "
        "Sphinx site via autodoc; an undocumented public function or class "
        "there ships an empty reference page."
    )

    _SCOPE = ("repro.api",)
    _SKIP_DECORATORS = {"setter", "deleter", "overload"}

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None or not module.in_package(*self._SCOPE):
            return
        yield from self._check_body(module, module.tree.body, qualifier="")

    def _check_body(
        self, module: ModuleContext, body: Sequence[ast.stmt], qualifier: str
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                if not ast.get_docstring(node):
                    yield self._missing(module, node, f"class {qualifier}{node.name}")
                yield from self._check_body(
                    module, node.body, qualifier=f"{node.name}."
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                tails = {
                    _dotted(d.func if isinstance(d, ast.Call) else d)[-1]
                    for d in node.decorator_list
                    if _dotted(d.func if isinstance(d, ast.Call) else d)
                }
                if tails & self._SKIP_DECORATORS:
                    continue
                if not ast.get_docstring(node):
                    kind = "method" if qualifier else "function"
                    yield self._missing(
                        module, node, f"{kind} {qualifier}{node.name}"
                    )

    def _missing(self, module: ModuleContext, node: ast.stmt, what: str) -> Finding:
        return self.finding(
            module,
            node.lineno,
            f"public {what} has no docstring; repro.api is the documented"
            " surface (rendered by Sphinx autodoc)",
            column=node.col_offset,
        )


@register_rule
class StrictCoreAnnotationRule(Rule):
    """TYPE001 — the strict-typed core stays fully annotated."""

    id = "TYPE001"
    title = "public defs in the strict core carry complete type annotations"
    severity = Severity.ERROR
    rationale = (
        "repro.api, repro.simulation, and repro.schemes are mypy-strict "
        "(disallow_untyped_defs); this rule is the in-repo, "
        "dependency-free proxy so the annotation contract is enforced even "
        "where mypy is not installed."
    )

    _SCOPE = ("repro.api", "repro.simulation", "repro.schemes")

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None or not module.in_package(*self._SCOPE):
            return
        yield from self._check_body(module, module.tree.body, in_class=False)

    def _check_body(
        self, module: ModuleContext, body: Sequence[ast.stmt], in_class: bool
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_body(module, node.body, in_class=True)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                missing = self._missing_annotations(node, in_class=in_class)
                if missing:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{node.name} is missing annotations for"
                        f" {', '.join(missing)}; the strict core is typed"
                        " (mypy disallow_untyped_defs)",
                        column=node.col_offset,
                    )

    @staticmethod
    def _missing_annotations(
        node: "ast.FunctionDef | ast.AsyncFunctionDef", *, in_class: bool
    ) -> List[str]:
        args = node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        if in_class and args and not any(
            _dotted(d) and _dotted(d)[-1] == "staticmethod"
            for d in node.decorator_list
        ):
            args = args[1:]  # self / cls
        missing = [a.arg for a in args if a.annotation is None]
        if node.args.vararg is not None and node.args.vararg.annotation is None:
            missing.append("*" + node.args.vararg.arg)
        if node.args.kwarg is not None and node.args.kwarg.annotation is None:
            missing.append("**" + node.args.kwarg.arg)
        if node.returns is None:
            missing.append("return")
        return missing


@register_rule
class KernelSourcePurityRule(Rule):
    """KERN001 — compiled-kernel sources stay inside the nopython subset."""

    id = "KERN001"
    title = "@jit_source kernel functions use only the nopython subset"
    severity = Severity.ERROR
    rationale = (
        "The functions repro.simulation.kernels.sources marks with "
        "@jit_source are the single source the numba backend compiles and "
        "the C backend mirrors line by line. Python-object features — "
        "dict/set containers, raise/try, string formatting, print — either "
        "fail numba's nopython compilation or (worse) silently diverge "
        "from the C translation, so the compiled and interpreted kernels "
        "would no longer be the same function. Infeasibility is signalled "
        "with sentinel values, never exceptions."
    )

    _SCOPE = ("repro.simulation.kernels",)

    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        if module.tree is None or not module.in_package(*self._SCOPE):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(
                self._is_jit_source(decorator) for decorator in node.decorator_list
            ):
                continue
            yield from self._audit(module, node)

    @staticmethod
    def _is_jit_source(decorator: ast.expr) -> bool:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = _dotted(target)
        return bool(chain) and chain[-1] == "jit_source"

    def _audit(
        self, module: ModuleContext, function: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            offence = self._violation(node)
            if offence is None:
                continue
            yield self.finding(
                module,
                node.lineno,
                f"{offence} in compiled-kernel source {function.name!r};"
                " @jit_source bodies must stay in the nopython subset"
                " (arrays, scalars, loops — sentinel values instead of"
                " exceptions) so the numba and C backends compile the"
                " same function",
                column=node.col_offset,
            )

    @staticmethod
    def _violation(node: ast.AST) -> Optional[str]:
        """The nopython-subset offence of one AST node, or None."""
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "dict literal"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set literal"
        if isinstance(node, ast.Raise):
            return "`raise` statement"
        if isinstance(node, (ast.Try, ast.TryStar)):
            return "`try` block"
        if isinstance(node, ast.JoinedStr):
            return "f-string"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            if isinstance(node.left, ast.Constant) and isinstance(
                node.left.value, str
            ):
                return "%-formatting"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and node.func.attr == "format":
                return "str.format() call"
            chain = _dotted(node.func)
            if chain == ("print",):
                return "print() call"
            if chain in (("dict",), ("set",)):
                return f"{chain[0]}() constructor"
        return None
