"""Per-module and whole-project context handed to every lint rule.

Rules see two things:

* a :class:`ModuleContext` — one file's AST, source, dotted module name, and
  pragma index; and
* a :class:`ProjectModel` — a lightweight cross-file class-hierarchy index,
  so rules like ``RNG002`` (batch-path parity) and ``SCHEME001`` (analytic
  obligation) can resolve inheritance across modules without importing any
  project code. Resolution is purely syntactic — classes are matched by
  name — which is exactly right for a linter: it never executes the tree it
  judges, so it can lint broken or half-written code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.devtools.pragmas import PragmaIndex, parse_pragmas

__all__ = ["ModuleContext", "ClassInfo", "ProjectModel", "module_name_for_path"]


def module_name_for_path(path: Path) -> str:
    """Best-effort dotted module name for ``path``.

    Uses the right-most ``repro`` directory component as the package root
    (``.../src/repro/api/sweep.py`` → ``repro.api.sweep``); files outside a
    ``repro`` tree — lint fixtures, scripts — fall back to their stem. Rules
    scope themselves by these names (e.g. ``DOC001`` only applies under
    ``repro.api``), so fixture tests can opt into a scope by creating the
    matching directory shape.
    """
    parts = list(path.parts)
    name = path.stem
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            dotted = parts[index:-1] + ([] if name == "__init__" else [name])
            return ".".join(dotted)
    return name


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    module: str
    source: str
    tree: Optional[ast.Module]
    pragmas: PragmaIndex
    parse_error: Optional[SyntaxError] = None

    @classmethod
    def from_path(cls, path: Path) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        return cls.from_source(source, path)

    @classmethod
    def from_source(cls, source: str, path: Path) -> "ModuleContext":
        tree: Optional[ast.Module] = None
        error: Optional[SyntaxError] = None
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            error = exc
        return cls(
            path=path,
            module=module_name_for_path(path),
            source=source,
            tree=tree,
            pragmas=parse_pragmas(source),
            parse_error=error,
        )

    def in_package(self, *packages: str) -> bool:
        """Whether this module lives in (or under) any of ``packages``."""
        return any(
            self.module == package or self.module.startswith(package + ".")
            for package in packages
        )


@dataclass
class ClassInfo:
    """One class definition, as seen syntactically."""

    name: str
    module: str
    path: Path
    lineno: int
    bases: List[str]
    methods: Set[str]
    decorators: List[str]
    node: ast.ClassDef = field(repr=False)


def _attribute_tail(expression: ast.expr) -> str:
    """``a.b.c`` → ``c``; bare names pass through; anything else → ``""``."""
    if isinstance(expression, ast.Attribute):
        return expression.attr
    if isinstance(expression, ast.Name):
        return expression.id
    return ""


def _class_methods(node: ast.ClassDef) -> Set[str]:
    """Names bound in the class body: defs plus simple aliases.

    Aliases matter because idioms like ``__rmul__ = __mul__`` define a
    method without a ``def``.
    """
    methods: Set[str] = set()
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.add(statement.name)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    methods.add(target.id)
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                methods.add(statement.target.id)
    return methods


class ProjectModel:
    """A name-keyed class-hierarchy index across every linted module."""

    def __init__(self) -> None:
        self._classes: Dict[str, List[ClassInfo]] = {}

    @classmethod
    def from_modules(cls, modules: Iterable[ModuleContext]) -> "ProjectModel":
        model = cls()
        for context in modules:
            if context.tree is None:
                continue
            for node in ast.walk(context.tree):
                if isinstance(node, ast.ClassDef):
                    model._add(
                        ClassInfo(
                            name=node.name,
                            module=context.module,
                            path=context.path,
                            lineno=node.lineno,
                            bases=[_attribute_tail(base) for base in node.bases],
                            methods=_class_methods(node),
                            decorators=[
                                _attribute_tail(
                                    dec.func if isinstance(dec, ast.Call) else dec
                                )
                                for dec in node.decorator_list
                            ],
                            node=node,
                        )
                    )
        return model

    def _add(self, info: ClassInfo) -> None:
        self._classes.setdefault(info.name, []).append(info)

    def lookup(self, name: str, *, near: Optional[str] = None) -> Optional[ClassInfo]:
        """The class named ``name``, preferring a definition in ``near``'s module."""
        candidates = self._classes.get(name)
        if not candidates:
            return None
        if near is not None:
            for candidate in candidates:
                if candidate.module == near:
                    return candidate
        return candidates[0]

    def ancestry(self, info: ClassInfo) -> Iterator[ClassInfo]:
        """``info`` followed by every resolvable ancestor, breadth-first."""
        seen: Set[str] = set()
        queue: List[ClassInfo] = [info]
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            yield current
            for base in current.bases:
                parent = self.lookup(base, near=current.module)
                if parent is not None:
                    queue.append(parent)

    def is_subclass_of(self, info: ClassInfo, roots: Sequence[str]) -> bool:
        """Whether ``info`` descends (syntactically) from any name in ``roots``.

        A direct base name matching a root counts even when the root class is
        outside the linted file set.
        """
        for ancestor in self.ancestry(info):
            if ancestor.name in roots and ancestor is not info:
                return True
            if any(base in roots for base in ancestor.bases):
                return True
        return False

    def defines_in_ancestry(
        self, info: ClassInfo, method: str, *, stop_at: Sequence[str] = ()
    ) -> bool:
        """Whether ``method`` is defined by ``info`` or an ancestor.

        Ancestors named in ``stop_at`` (typically the abstract root that
        declares the contract) do not count as providers.
        """
        for ancestor in self.ancestry(info):
            if ancestor.name in stop_at:
                continue
            if method in ancestor.methods:
                return True
        return False
