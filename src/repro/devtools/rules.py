"""The rule framework: base class and registry.

A rule is a small, stateless class with an ``id``, a default severity, a
one-line ``title``, a ``rationale`` naming the invariant it guards, and a
:meth:`Rule.check` generator yielding :class:`~repro.devtools.findings.Finding`
objects for one module. Rules register themselves with
:func:`register_rule`, mirroring the scheme registry idiom used across the
repo, so the engine, the CLI's ``--list-rules``, and the documentation all
enumerate one catalogue.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, List, Type

from repro.devtools.context import ModuleContext, ProjectModel
from repro.devtools.findings import Finding, Severity
from repro.exceptions import ConfigurationError

__all__ = ["Rule", "register_rule", "rule_catalogue", "get_rule"]

_RULES: Dict[str, Type["Rule"]] = {}


class Rule(abc.ABC):
    """One statically-checkable project contract."""

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    rationale: str = ""

    @abc.abstractmethod
    def check(self, module: ModuleContext, project: ProjectModel) -> Iterator[Finding]:
        """Yield every violation of this rule found in ``module``."""

    def finding(
        self,
        module: ModuleContext,
        line: int,
        message: str,
        *,
        column: int = 0,
        severity: "Severity | None" = None,
    ) -> Finding:
        """Build a finding anchored in ``module`` with this rule's identity."""
        return Finding(
            rule=self.id,
            path=str(module.path),
            line=line,
            column=column,
            message=message,
            severity=self.severity if severity is None else severity,
        )


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global catalogue."""
    if not cls.id:
        raise ConfigurationError(f"rule {cls.__name__} must define a non-empty id")
    if cls.id in _RULES:
        raise ConfigurationError(f"duplicate rule id {cls.id!r}")
    _RULES[cls.id] = cls
    return cls


def rule_catalogue() -> List[Type[Rule]]:
    """Every registered rule class, sorted by id."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Type[Rule]:
    """Look one rule up by id, raising a typed error for unknown names."""
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise ConfigurationError(
            f"unknown rule {rule_id!r}; known rules: {known}"
        ) from None
