"""Text and JSON reporters for lint findings."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.devtools.findings import Finding, summarize
from repro.devtools.rules import rule_catalogue

__all__ = ["format_text", "format_json", "format_rule_listing"]


def format_text(findings: Sequence[Finding], *, checked_files: int = 0) -> str:
    """The human-readable report: one line per finding plus a summary."""
    lines: List[str] = [finding.format() for finding in findings]
    if findings:
        counts = summarize(findings)
        per_rule = ", ".join(f"{rule}: {count}" for rule, count in counts.items())
        lines.append("")
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
            f" in {checked_files} file{'s' if checked_files != 1 else ''}"
            f" ({per_rule})"
        )
    else:
        lines.append(f"checked {checked_files} files: clean")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], *, checked_files: int = 0) -> str:
    """The machine-readable report consumed by CI."""
    payload = {
        "version": 1,
        "checked_files": checked_files,
        "findings": [finding.to_dict() for finding in findings],
        "summary": summarize(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def format_rule_listing() -> str:
    """The ``--list-rules`` catalogue: id, severity, title, rationale."""
    lines: List[str] = []
    for rule_class in rule_catalogue():
        rule = rule_class()
        lines.append(f"{rule.id} [{rule.severity}] {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)
