"""The lint engine: file discovery, rule execution, pragma accounting.

Two passes. The first parses every file into a
:class:`~repro.devtools.context.ModuleContext` and builds the cross-file
:class:`~repro.devtools.context.ProjectModel`; the second runs every rule
over every module, filters pragma-suppressed findings (marking each pragma
used), and finally emits the meta findings that keep the pragma system
honest:

* ``LINT000`` — a file failed to parse (nothing else can be checked in it);
* ``LINT001`` — a pragma names a rule the engine does not know;
* ``LINT002`` — a pragma carries no ``reason=``;
* ``LINT003`` — a pragma suppressed nothing and is stale.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Type, Union

from repro.devtools.context import ModuleContext, ProjectModel
from repro.devtools.findings import Finding, Severity, sort_findings
from repro.devtools.rules import Rule, get_rule, rule_catalogue
from repro.exceptions import ConfigurationError

__all__ = ["iter_python_files", "lint_modules", "lint_paths", "lint_source"]

_SKIP_DIRECTORIES = {"__pycache__", ".git", ".hypothesis", "_build"}


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not (_SKIP_DIRECTORIES & set(candidate.parts))
            )
        elif path.suffix == ".py":
            found.append(path)
        elif not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
    unique: List[Path] = []
    seen = set()
    for path in found:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _resolve_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if select is None:
        return [rule_class() for rule_class in rule_catalogue()]
    return [get_rule(rule_id)() for rule_id in select]


def lint_modules(
    modules: Sequence[ModuleContext], *, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the (optionally restricted) rule catalogue over parsed modules."""
    rules = _resolve_rules(select)
    ran_rule_ids = {rule.id for rule in rules}
    known_rule_ids = {rule_class().id for rule_class in rule_catalogue()}
    project = ProjectModel.from_modules(modules)
    findings: List[Finding] = []
    for module in modules:
        if module.parse_error is not None:
            findings.append(
                Finding(
                    rule="LINT000",
                    path=str(module.path),
                    line=module.parse_error.lineno or 1,
                    message=f"file does not parse: {module.parse_error.msg}",
                    severity=Severity.ERROR,
                )
            )
            continue
        for rule in rules:
            for finding in rule.check(module, project):
                if not module.pragmas.suppresses(finding.rule, finding.line):
                    findings.append(finding)
        findings.extend(_pragma_findings(module, known_rule_ids, ran_rule_ids))
    return sort_findings(findings)


def _pragma_findings(
    module: ModuleContext, known_rule_ids: set, ran_rule_ids: set
) -> List[Finding]:
    findings: List[Finding] = []
    for pragma in module.pragmas.pragmas:
        unknown = sorted(pragma.rules - known_rule_ids)
        if unknown:
            findings.append(
                Finding(
                    rule="LINT001",
                    path=str(module.path),
                    line=pragma.line,
                    message=f"pragma names unknown rule(s): {', '.join(unknown)}",
                    severity=Severity.WARNING,
                )
            )
        if pragma.reason is None:
            findings.append(
                Finding(
                    rule="LINT002",
                    path=str(module.path),
                    line=pragma.line,
                    message=(
                        "pragma has no reason=; every suppression must say"
                        " why the invariant holds anyway"
                    ),
                    severity=Severity.WARNING,
                )
            )
        # Staleness is only judged when every rule the pragma names actually
        # ran — a restricted --select must not flag other rules' pragmas.
        if not pragma.used and not unknown and pragma.rules <= ran_rule_ids:
            findings.append(
                Finding(
                    rule="LINT003",
                    path=str(module.path),
                    line=pragma.line,
                    message=(
                        "stale pragma: it suppressed no finding; delete it"
                        " (or the contract it documents has drifted)"
                    ),
                    severity=Severity.WARNING,
                )
            )
    return findings


def lint_paths(
    paths: Iterable[Union[str, Path]], *, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint files and directory trees; the main entry point."""
    modules = [ModuleContext.from_path(path) for path in iter_python_files(paths)]
    return lint_modules(modules, select=select)


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>.py",
    *,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one in-memory snippet — the fixture-test entry point."""
    module = ModuleContext.from_source(source, Path(path))
    return lint_modules([module], select=select)
