"""The ``# reprolint: allow[...]`` inline suppression system.

Every suppression must name the rule(s) it silences **and** carry a reason::

    probe = np.random.default_rng(0)  # reprolint: allow[RNG001] reason=state-probe, draws are discarded

A pragma applies to findings on its own line, or — when it stands alone on a
comment line — to the line directly below it::

    # reprolint: allow[EXC001] reason=mirrors list.index's ValueError contract
    raise ValueError(f"{value!r} is not in the log")

Pragmas are themselves linted: a pragma with no ``reason=`` still suppresses
but is reported (``LINT002``), a pragma naming an unknown rule is reported
(``LINT001``), and a pragma that suppressed nothing is reported as stale
(``LINT003``). This keeps the escape hatch honest — suppressions cannot
accumulate silently.

Comments are located with :mod:`tokenize`, so a ``# reprolint:`` sequence
inside a string literal is never mistaken for a pragma.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

__all__ = ["Pragma", "PragmaIndex", "parse_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:reason=(?P<reason>.*))?$"
)


@dataclass
class Pragma:
    """One parsed ``# reprolint: allow[...]`` comment."""

    line: int
    rules: Set[str]
    reason: Optional[str]
    standalone: bool  # the comment is the only thing on its line
    used: bool = field(default=False, compare=False)

    @property
    def target_line(self) -> int:
        """The source line whose findings this pragma suppresses."""
        return self.line + 1 if self.standalone else self.line


class PragmaIndex:
    """All pragmas of one module, indexed by the line they suppress."""

    def __init__(self, pragmas: List[Pragma]) -> None:
        self.pragmas = pragmas
        self._by_target: Dict[int, List[Pragma]] = {}
        for pragma in pragmas:
            self._by_target.setdefault(pragma.target_line, []).append(pragma)

    def suppresses(self, rule: str, line: int) -> bool:
        """Whether a finding of ``rule`` at ``line`` is pragma-suppressed.

        Marks the matching pragma as used so the engine can report stale
        suppressions afterwards.
        """
        suppressed = False
        for pragma in self._by_target.get(line, ()):
            if rule in pragma.rules:
                pragma.used = True
                suppressed = True
        return suppressed


def parse_pragmas(source: str) -> PragmaIndex:
    """Extract every ``reprolint`` pragma from a module's source text."""
    pragmas: List[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable files already produce a LINT000 parse-error finding;
        # there is nothing meaningful to suppress in them.
        return PragmaIndex([])
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        rules = {name.strip() for name in match.group("rules").split(",") if name.strip()}
        reason = match.group("reason")
        if reason is not None:
            reason = reason.strip() or None
        line_no = token.start[0]
        text = lines[line_no - 1] if line_no <= len(lines) else ""
        standalone = text.strip().startswith("#")
        pragmas.append(
            Pragma(line=line_no, rules=rules, reason=reason, standalone=standalone)
        )
    return PragmaIndex(pragmas)
