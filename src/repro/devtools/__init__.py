"""``repro.devtools`` — the ``reprolint`` static-analysis engine.

The repo's correctness guarantees — loop==vectorized bit-identity, the RNG
draw-order contract and ``sample_batch``/``sample_grid``/``sample_trials``
hierarchy, the typed :mod:`repro.exceptions` hierarchy, and the
``analytic_runtime``-or-:class:`~repro.exceptions.AnalyticIntractableError`
obligation on every registered scheme — are invariants of the *source*, not
just of whichever tests exercise a path. This package enforces them the way
race detectors and sanitizers do for systems runtimes: deterministically, at
diff time, with an AST walk instead of a lucky seed.

Quickstart::

    from repro.devtools import lint_paths
    findings = lint_paths(["src/repro"])
    assert findings == []

or from a shell::

    python -m repro lint src/repro --format json

Suppressions are inline and audited — see :mod:`repro.devtools.pragmas` —
and the rule catalogue lives in :mod:`repro.devtools.checks`, documented in
``docs/contracts.rst``.
"""

from repro.devtools import checks as _checks  # noqa: F401  (registers the catalogue)
from repro.devtools.context import ModuleContext, ProjectModel, module_name_for_path
from repro.devtools.engine import (
    iter_python_files,
    lint_modules,
    lint_paths,
    lint_source,
)
from repro.devtools.findings import Finding, Severity, sort_findings
from repro.devtools.pragmas import Pragma, PragmaIndex, parse_pragmas
from repro.devtools.reporting import format_json, format_rule_listing, format_text
from repro.devtools.rules import Rule, get_rule, register_rule, rule_catalogue

__all__ = [
    "Finding",
    "Severity",
    "sort_findings",
    "Pragma",
    "PragmaIndex",
    "parse_pragmas",
    "ModuleContext",
    "ProjectModel",
    "module_name_for_path",
    "Rule",
    "register_rule",
    "rule_catalogue",
    "get_rule",
    "iter_python_files",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "format_text",
    "format_json",
    "format_rule_listing",
]
