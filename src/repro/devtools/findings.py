"""Findings emitted by the :mod:`repro.devtools` static-analysis engine.

A :class:`Finding` is one rule violation anchored to a file and line. It is
deliberately a plain, JSON-serialisable value object so the engine, the
reporters, and the test fixtures can all treat findings as data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.exceptions import ConfigurationError

__all__ = ["Severity", "Finding", "sort_findings"]


class Severity(enum.IntEnum):
    """How serious a finding is. Higher values sort first in reports.

    ``reprolint`` exits non-zero on *any* finding regardless of severity —
    the repo ships clean — so severity is a reporting aid, not a gate.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Parse ``"error"`` / ``"warning"`` / ``"info"`` (case-insensitive)."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise ConfigurationError(f"unknown severity {name!r}") from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR
    column: int = 0
    extra: Dict[str, Any] = field(default_factory=dict, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable representation (the ``--format json`` shape)."""
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    def format(self) -> str:
        """The one-line human-readable form used by the text reporter."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic report order: by path, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule))


def summarize(findings: Iterable[Finding]) -> Dict[str, int]:
    """Per-rule finding counts, for report footers and the JSON summary."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))


def max_severity(findings: Iterable[Finding]) -> Optional[Severity]:
    """The highest severity present, or ``None`` for an empty report."""
    severities = [finding.severity for finding in findings]
    return max(severities) if severities else None
