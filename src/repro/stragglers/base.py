"""The :class:`DelayModel` interface.

A delay model maps a *computational load* (number of training examples a
worker processes in one iteration) to a random completion time. Models are
stateless and receive the RNG explicitly, so the same model object can be
shared by every worker of a homogeneous cluster while keeping experiments
reproducible.

Batched sampling
----------------
The vectorized timing engine (:mod:`repro.simulation.vectorized`) draws many
completion times at once through two batched paths:

* :meth:`DelayModel.sample_batch` — ``size`` i.i.d. draws from *one* model.
  Its contract is equality with the sized draw path
  ``sample(load, size=size)``. For most models that also equals ``size``
  successive scalar draws, but not for every model
  (:class:`~repro.stragglers.models.BimodalStragglerDelay` draws its sized
  components in blocks rather than interleaved per draw).
* :meth:`DelayModel.sample_grid` — a ``(num_draws, num_workers)`` matrix of
  draws across *several* model instances, filled in row-major (draw-major,
  worker-minor) order. Its **stream contract** is the one the engine
  equivalence guarantee rests on: given the same generator state it must
  consume the underlying bit stream exactly like the nested scalar loop
  (row ``i`` holds the ``i``-th draw of every worker, in worker order). The
  base implementation *is* that scalar loop; subclasses override it with a
  single vectorized call only when every model in the group uses their
  unmodified scalar sampler (numpy's broadcast sampling fills C-order,
  element-sequentially, which preserves the stream).
* :meth:`DelayModel.sample_trials` — a
  ``(num_trials, num_draws, num_workers)`` tensor of draws for the
  trial-batched engine (:func:`~repro.simulation.vectorized.simulate_job_batch`).
  Every Monte-Carlo trial owns an *independent* generator (a spawned
  :class:`numpy.random.SeedSequence` child in the sweep engine), so the
  trial axis cannot be collapsed into one numpy call; the **stream
  contract** is per slice instead: slice ``t`` must consume ``rngs[t]``
  exactly like ``sample_grid(models, loads, rngs[t], num_draws)`` would.
  That is what makes each trial of a batched job bit-identical to a solo
  run at the same seed. The base implementation stacks per-trial
  :meth:`sample_grid` calls (each already vectorized by the models' most
  specific override); subclasses override it to hoist the per-model
  parameter extraction out of the trial loop — or, for draw-free models,
  to fill the whole tensor in one call.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator

__all__ = ["DelayModel"]


class DelayModel(abc.ABC):
    """Distribution of the time a worker needs to process ``load`` examples."""

    @abc.abstractmethod
    def sample(
        self, load: int, rng: RandomState = None, size: Optional[int] = None
    ) -> Union[float, np.ndarray]:
        """Draw completion times for a task of ``load`` examples.

        Parameters
        ----------
        load:
            Number of examples processed (must be positive).
        rng:
            Seed-like value or generator.
        size:
            ``None`` for a single float, otherwise the number of i.i.d. draws
            returned as an array.
        """

    @abc.abstractmethod
    def mean(self, load: int) -> float:
        """Expected completion time for a task of ``load`` examples."""

    # ------------------------------------------------------------------ #
    # Batched sampling (see the module docstring for the stream contract)
    # ------------------------------------------------------------------ #
    def sample_batch(
        self, load: int, rng: RandomState = None, size: int = 1
    ) -> np.ndarray:
        """Draw ``size`` i.i.d. completion times as a 1-D array.

        Consumes the RNG exactly like ``sample(load, size=size)`` (which is
        what it delegates to). Note that a sized draw does not equal ``size``
        successive scalar draws for every model — see the module docstring;
        cross-worker batching with that stronger guarantee goes through
        :meth:`sample_grid`.
        """
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        return np.asarray(self.sample(load, rng=rng, size=int(size)), dtype=float)

    @classmethod
    def sample_grid(
        cls,
        models: Sequence["DelayModel"],
        loads: Sequence[int],
        rng: RandomState = None,
        num_draws: int = 1,
    ) -> np.ndarray:
        """Draw a ``(num_draws, len(models))`` matrix of completion times.

        ``models[j]`` supplies column ``j`` with load ``loads[j]``. The matrix
        is filled row-major — draw-major, worker-minor — consuming the RNG
        exactly like the nested scalar loop below. Subclasses override this
        with one vectorized call when every model belongs to their class;
        this generic fallback works for arbitrary (even mixed-class) model
        groups at scalar speed.
        """
        if len(models) != len(loads):
            raise ConfigurationError(
                f"got {len(models)} models but {len(loads)} loads"
            )
        generator = as_generator(rng)
        out = np.empty((int(num_draws), len(models)), dtype=float)
        for i in range(int(num_draws)):
            for j, (model, load) in enumerate(zip(models, loads)):
                out[i, j] = model.sample(int(load), rng=generator)
        return out

    @classmethod
    def sample_trials(
        cls,
        models: Sequence["DelayModel"],
        loads: Sequence[int],
        rngs: Sequence[RandomState],
        num_draws: int = 1,
    ) -> np.ndarray:
        """Draw a ``(len(rngs), num_draws, len(models))`` tensor of completion
        times — one independent ``(num_draws, num_workers)`` grid per trial.

        ``rngs[t]`` drives trial ``t``'s slice and **only** that slice; the
        stream contract is that slice ``t`` equals (and consumes ``rngs[t]``
        exactly like) ``sample_grid(models, loads, rngs[t], num_draws)``.
        Trials own independent generators, so the base implementation is the
        per-trial loop below — already one vectorized grid call per trial;
        subclasses hoist the parameter extraction (or, when no randomness is
        consumed at all, fill the tensor in a single call).
        """
        out = np.empty((len(rngs), int(num_draws), len(models)), dtype=float)
        for t, rng in enumerate(rngs):
            out[t] = cls.sample_grid(models, loads, rng, num_draws)
        return out

    @classmethod
    def sample_timeline(
        cls,
        model_rows: Sequence[Sequence["DelayModel"]],
        loads: Sequence[int],
        rng: RandomState = None,
    ) -> np.ndarray:
        """Draw a ``(len(model_rows), len(loads))`` matrix of completion times
        across a *time-varying* model grid.

        ``model_rows[i][j]`` supplies cell ``(i, j)`` with load ``loads[j]`` —
        the dynamic-cluster analogue of :meth:`sample_grid`, where every row
        may use different model instances (e.g. a Markov-modulated worker's
        per-iteration regimes). The **stream contract** matches
        :meth:`sample_grid`: the matrix is filled row-major, consuming the
        RNG exactly like nested scalar ``sample`` calls (row ``i`` is drawn
        before row ``i + 1``, worker-minor within a row). The base
        implementation dispatches each row through the row's own most
        specific :meth:`sample_grid`; subclasses override it with a single
        vectorized call when every cell in the matrix uses their unmodified
        scalar sampler.
        """
        generator = as_generator(rng)
        num_rows = len(model_rows)
        out = np.empty((num_rows, len(loads)), dtype=float)
        for i, row in enumerate(model_rows):
            if len(row) != len(loads):
                raise ConfigurationError(
                    f"model row {i} has {len(row)} models but {len(loads)} loads"
                )
            out[i] = type(row[0]).sample_grid(row, loads, generator, 1)[0]
        return out

    @classmethod
    def _all_native(cls, models: Sequence["DelayModel"]) -> bool:
        """Whether every model is a ``cls`` using ``cls``'s scalar sampler.

        A subclass overriding :meth:`sample` changed the distribution, so
        the defining class's vectorized grid formula would silently diverge
        from the scalar path — such groups must take the generic fallback.
        """
        return all(
            isinstance(model, cls) and type(model).sample is cls.sample
            for model in models
        )

    @classmethod
    def _grid_parameters(
        cls, models: Sequence["DelayModel"], attributes: Sequence[str]
    ) -> Optional[tuple]:
        """Per-model parameter rows for a vectorized grid, or ``None``.

        Returns one float array per attribute name when :meth:`_all_native`
        holds (the caller then batches a single numpy call); ``None``
        signals the caller to fall back to the generic scalar grid, which
        is correct for any model.
        """
        if not cls._all_native(models):
            return None
        return tuple(
            np.array([getattr(model, attribute) for model in models], dtype=float)
            for attribute in attributes
        )

    def cdf(self, load: int, t: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """``P(T <= t)`` for a task of ``load`` examples.

        The default implementation estimates the CDF by Monte-Carlo; concrete
        models with closed forms override it.
        """
        # reprolint: allow[RNG001] reason=fixed-seed Monte-Carlo probe; deterministic by construction and independent of experiment streams
        samples = self.sample(load, rng=np.random.default_rng(0), size=20000)
        t_arr = np.asarray(t, dtype=float)
        result = np.mean(samples[None, ...] <= t_arr[..., None], axis=-1)
        return float(result) if np.isscalar(t) else result

    # ------------------------------------------------------------------ #
    def _check_load(self, load: int) -> int:
        if load < 1:
            raise ConfigurationError(f"load must be a positive number of examples, got {load}")
        return int(load)

    @staticmethod
    def _check_grid_loads(
        models: Sequence["DelayModel"], loads: Sequence[int]
    ) -> np.ndarray:
        """Validate per-worker grid loads and return them as a float row."""
        if len(models) != len(loads):
            raise ConfigurationError(f"got {len(models)} models but {len(loads)} loads")
        arr = np.asarray(loads)
        if arr.ndim != 1 or (arr.size and arr.min() < 1):
            raise ConfigurationError(
                "loads must be a 1-D sequence of positive example counts, "
                f"got {loads!r}"
            )
        return arr.astype(float)

    @staticmethod
    def _rng(rng: RandomState) -> np.random.Generator:
        return as_generator(rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
