"""The :class:`DelayModel` interface.

A delay model maps a *computational load* (number of training examples a
worker processes in one iteration) to a random completion time. Models are
stateless and receive the RNG explicitly, so the same model object can be
shared by every worker of a homogeneous cluster while keeping experiments
reproducible.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

from repro.utils.rng import RandomState, as_generator

__all__ = ["DelayModel"]


class DelayModel(abc.ABC):
    """Distribution of the time a worker needs to process ``load`` examples."""

    @abc.abstractmethod
    def sample(
        self, load: int, rng: RandomState = None, size: Optional[int] = None
    ) -> Union[float, np.ndarray]:
        """Draw completion times for a task of ``load`` examples.

        Parameters
        ----------
        load:
            Number of examples processed (must be positive).
        rng:
            Seed-like value or generator.
        size:
            ``None`` for a single float, otherwise the number of i.i.d. draws
            returned as an array.
        """

    @abc.abstractmethod
    def mean(self, load: int) -> float:
        """Expected completion time for a task of ``load`` examples."""

    def cdf(self, load: int, t: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """``P(T <= t)`` for a task of ``load`` examples.

        The default implementation estimates the CDF by Monte-Carlo; concrete
        models with closed forms override it.
        """
        samples = self.sample(load, rng=np.random.default_rng(0), size=20000)
        t_arr = np.asarray(t, dtype=float)
        result = np.mean(samples[None, ...] <= t_arr[..., None], axis=-1)
        return float(result) if np.isscalar(t) else result

    # ------------------------------------------------------------------ #
    def _check_load(self, load: int) -> int:
        if load < 1:
            raise ValueError(f"load must be a positive number of examples, got {load}")
        return int(load)

    @staticmethod
    def _rng(rng: RandomState) -> np.random.Generator:
        return as_generator(rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
