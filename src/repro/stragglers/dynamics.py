"""Time-varying straggler processes.

The paper's evaluation freezes one delay model per worker for the whole job.
Real fleets do not hold still: EC2 instances flip between fast and slow
phases, performance drifts as co-tenants come and go, and spot instances are
preempted and replaced mid-job. This module models those regimes as *worker
processes*: a :class:`WorkerProcess` maps a worker's stationary base
:class:`~repro.stragglers.base.DelayModel` to one effective delay model **per
iteration**, so the rest of the stack (both timing engines, the API layer)
keeps treating each single iteration exactly as before.

Three processes cover the production folklore:

* :class:`MarkovModulatedDelay` — a two-state (fast/slow) Markov chain per
  worker; in the slow regime the worker's completion times are multiplied by
  ``slowdown``.
* :class:`DriftingDelay` — a deterministic drift: the worker's delay scale
  ramps (or decays) geometrically from ``initial_factor`` to
  ``final_factor`` over the job.
* :class:`PreemptionModel` — spot-style kill/replace: each iteration an up
  worker is preempted with probability ``preempt_probability`` and its slot
  stays vacant (:class:`UnavailableDelay`) for ``recovery_iterations``
  iterations while the replacement boots and reloads its data.

Determinism contract
--------------------
A process draws from the *dynamics* generator handed to
:meth:`WorkerProcess.timeline` — never from the job's draw stream — and its
consumption depends only on ``num_iterations``, never on the realised states.
:meth:`repro.cluster.dynamic.DynamicClusterSpec.materialize` relies on this to
keep timelines reproducible and identical across the loop and vectorized
engines.

The trial-batched engine
(:func:`~repro.simulation.vectorized.simulate_job_batch`) extends the same
contract along the trial axis: every Monte-Carlo trial materialises its own
timeline from its own per-trial generator (consuming at most the one
scenario-seed draw a solo run would), so each trial's dynamics realisation
is bit-identical to the corresponding solo run. A spec whose dynamics seed
is *pinned* draws nothing from any trial's stream and therefore replays the
same scripted scenario in every trial — by design: pinned scenarios are
scripts, not samples. :class:`UnavailableDelay` consumes no randomness on
any path (scalar, grid, timeline, or trial tensor), which is what lets
vacant slots appear and disappear between trials without shifting a single
draw.

Scaling a delay model
---------------------
:func:`scale_delay` multiplies a model's completion times by a constant
*without changing how the model consumes the random stream*: the built-in
families are re-parameterised in closed form (a shift-exponential scaled by
``c`` is again shift-exponential with shift ``c * a`` and straggling
``mu / c``), so a Markov-modulated shift-exponential worker still takes the
vectorized engine's single-batched-draw fast path. Unknown models fall back
to a :class:`ScaledDelay` wrapper that delegates sampling to the wrapped
model (consuming its stream unchanged) and multiplies the result.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Optional, Type, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stragglers.base import DelayModel
from repro.stragglers.models import (
    DeterministicDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
    TraceDelay,
)
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import (
    check_in_range,
    check_positive_int,
    check_probability,
)

__all__ = [
    "UnavailableDelay",
    "UNAVAILABLE",
    "ScaledDelay",
    "scale_delay",
    "memoize_by_id",
    "WorkerProcess",
    "MarkovModulatedDelay",
    "DriftingDelay",
    "PreemptionModel",
    "register_process",
    "available_processes",
    "process_from_config",
    "registered_process_name",
]

Number = Union[float, np.ndarray]


# reprolint: allow[RNG002] reason=draw-free infinity sentinel; the inherited generic paths consume no randomness either, so every engine sees the identical (empty) stream
class UnavailableDelay(DelayModel):
    """A vacant worker slot: the worker never reports.

    :meth:`sample` returns infinity and — crucially for the engines'
    bit-identity guarantee — consumes **no** randomness, exactly like an idle
    worker. Both engines treat an infinite completion time as "never
    arrives": the serialized link skips the slot, the aggregator never hears
    from it, and an iteration that cannot complete without it raises
    :class:`~repro.exceptions.SimulationError` (lost coverage is an error,
    not a silent stall).
    """

    def sample(
        self, load: int, rng: RandomState = None, size: Optional[int] = None
    ) -> Number:
        self._check_load(load)
        if size is None:
            return float("inf")
        return np.full(int(size), np.inf, dtype=float)

    def mean(self, load: int) -> float:
        self._check_load(load)
        return float("inf")

    def cdf(self, load: int, t: Number) -> Number:
        self._check_load(load)
        values = np.zeros_like(np.asarray(t, dtype=float))
        return float(values) if np.isscalar(t) else values

    def __repr__(self) -> str:
        return "UnavailableDelay()"


#: Shared sentinel instance used by cluster timelines for vacant slots.
UNAVAILABLE = UnavailableDelay()


# reprolint: allow[RNG002] reason=wrapper delegating every draw to the inner model; the inherited generic paths go through self.sample and stay bit-exact for any wrapped class
class ScaledDelay(DelayModel):
    """``factor`` times an arbitrary wrapped delay model.

    Generic fallback of :func:`scale_delay` for model classes without a
    closed-form re-parameterisation. Sampling delegates to the wrapped model
    (consuming the random stream identically) and multiplies the result, so
    the engines' draw-order contract is preserved; the wrapper never takes a
    vectorized grid fast path, which is correct (the generic scalar grid is
    always available) just slower.
    """

    def __init__(self, inner: DelayModel, factor: float) -> None:
        if not isinstance(inner, DelayModel):
            raise ConfigurationError(
                f"inner must be a DelayModel, got {type(inner).__name__}"
            )
        self.inner = inner
        self.factor = check_in_range(factor, "factor", low=0.0, inclusive=False)

    def sample(
        self, load: int, rng: RandomState = None, size: Optional[int] = None
    ) -> Number:
        result = self.inner.sample(load, rng=rng, size=size)
        result = result * self.factor
        return float(result) if size is None else result

    def mean(self, load: int) -> float:
        return self.factor * self.inner.mean(load)

    def cdf(self, load: int, t: Number) -> Number:
        t_arr = np.asarray(t, dtype=float)
        values = self.inner.cdf(load, t_arr / self.factor)
        return float(values) if np.isscalar(t) else values

    def __repr__(self) -> str:
        return f"ScaledDelay({self.inner!r}, factor={self.factor!r})"


def _uses_native_sampler(model: DelayModel, cls: Type[DelayModel]) -> bool:
    """Whether ``model`` is a ``cls`` still using ``cls``'s scalar sampler."""
    return isinstance(model, cls) and type(model).sample is cls.sample


def memoize_by_id(function):
    """Memoize a one-argument function on its argument's object identity.

    Timelines repeat a handful of model *instances* (a Markov worker
    alternates between two models, vacant slots share one sentinel), so
    per-cell classification — vacancy checks, native-sampler checks,
    parameter extraction — reduces to one dict hit per cell instead of an
    ``isinstance``/``getattr`` pass. Every hot per-cell predicate of the
    dynamic subsystem goes through this single helper so the criteria cannot
    drift apart between the engines. The cache holds strong references to
    nothing (only ``id()`` keys), so callers must keep it scoped to one
    materialisation/draw pass where the model objects stay alive.
    """
    cache: Dict[int, object] = {}

    def memoized(argument):
        # reprolint: allow[CACHE002] reason=documented intra-process memoization keyed on live object identity within one draw pass; never persisted or content-addressed
        key = id(argument)
        if key not in cache:
            cache[key] = function(argument)
        return cache[key]

    return memoized


def scale_delay(model: DelayModel, factor: float) -> DelayModel:
    """A delay model whose completion times are ``factor`` times ``model``'s.

    The built-in families are re-parameterised in closed form so the scaled
    model samples through the *same* code path (and therefore keeps the
    vectorized grid fast paths and the per-draw stream consumption) as the
    original:

    * shift-exponential ``(mu, a)`` → ``(mu / factor, a * factor)``,
    * deterministic ``s`` → ``s * factor``,
    * Pareto ``(alpha, scale)`` → ``(alpha, scale * factor)``,
    * trace replay → the trace's per-example times times ``factor``.

    Subclasses that override ``sample`` (a changed distribution) and unknown
    model classes are wrapped in :class:`ScaledDelay` instead.
    """
    factor = check_in_range(factor, "factor", low=0.0, inclusive=False)
    if factor == 1.0:
        return model
    if isinstance(model, UnavailableDelay):
        return model
    if _uses_native_sampler(model, ShiftedExponentialDelay):
        return ShiftedExponentialDelay(
            straggling=model.straggling / factor, shift=model.shift * factor
        )
    if _uses_native_sampler(model, DeterministicDelay):
        return DeterministicDelay(
            seconds_per_example=model.seconds_per_example * factor
        )
    if _uses_native_sampler(model, ParetoDelay):
        return ParetoDelay(alpha=model.alpha, scale=model.scale * factor)
    if _uses_native_sampler(model, TraceDelay):
        return TraceDelay(per_example_times=model.trace * factor)
    return ScaledDelay(model, factor)


# --------------------------------------------------------------------------- #
# Worker processes
# --------------------------------------------------------------------------- #
class WorkerProcess(abc.ABC):
    """A time-varying transformation of one worker's delay model.

    Subclasses implement :meth:`timeline`: given the worker's stationary base
    model and the job horizon, return the effective delay model of every
    iteration. The determinism contract (module docstring) requires the
    number of values drawn from ``rng`` to depend only on
    ``num_iterations``.
    """

    #: Whether :meth:`timeline` may emit :class:`UnavailableDelay` entries.
    #: Processes that only reshape delays (regime switching, drift) leave it
    #: ``False`` so cluster materialisation can skip the per-cell
    #: availability scan of their columns.
    can_remove_workers: bool = False

    @abc.abstractmethod
    def timeline(
        self, base: DelayModel, num_iterations: int, rng: RandomState = None
    ) -> List[DelayModel]:
        """Effective delay models of one worker, one entry per iteration."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_PROCESSES: Dict[str, Type[WorkerProcess]] = {}

#: A value resolvable into a worker process: an instance, a registered name,
#: or a config mapping with a ``name`` key plus constructor kwargs.
ProcessLike = Union[WorkerProcess, str, Mapping[str, object]]


def register_process(name: str):
    """Class decorator registering a :class:`WorkerProcess` under ``name``.

    Mirrors the scheme registry: registered processes become nameable in
    ``dynamics={...}`` configs everywhere a
    :class:`~repro.cluster.dynamic.DynamicClusterSpec` is built (the API
    layer, the sweep engine, the CLI's ``--dynamics`` flag).
    """

    def decorator(cls: Type[WorkerProcess]) -> Type[WorkerProcess]:
        existing = _PROCESSES.get(name)
        if existing is not None and existing is not cls:
            raise ConfigurationError(
                f"process name {name!r} is already registered to "
                f"{existing.__name__}"
            )
        _PROCESSES[name] = cls
        cls.name = name
        return cls

    return decorator


def available_processes() -> List[str]:
    """Sorted names of every registered worker process."""
    return sorted(_PROCESSES)


def registered_process_name(process: WorkerProcess) -> Optional[str]:
    """The registry name of ``process``'s exact class, or ``None``.

    A process counts as *registered* only when its concrete class was put in
    the registry via :func:`register_process` — an unregistered subclass of a
    registered class returns ``None``. The fault-injection layer
    (:mod:`repro.runtime.faults`) uses this to decide whether a dynamic
    scenario can be replayed on real worker processes with the same
    registry semantics that simulation's ``process_from_config`` resolves.
    """
    for name, cls in _PROCESSES.items():
        if type(process) is cls:
            return name
    return None


def process_from_config(process: ProcessLike) -> WorkerProcess:
    """Resolve a process instance, name, or config mapping into a process."""
    if isinstance(process, WorkerProcess):
        return process
    if isinstance(process, str):
        config: Dict[str, object] = {"name": process}
    elif isinstance(process, Mapping):
        config = dict(process)
    else:
        raise ConfigurationError(
            "expected a WorkerProcess, a registered process name, or a "
            f"config mapping, got {type(process).__name__}"
        )
    name = config.pop("name", None)
    if not isinstance(name, str):
        raise ConfigurationError(
            "a process config needs a 'name' key naming a registered "
            f"process; available: {available_processes()}"
        )
    try:
        cls = _PROCESSES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown process {name!r}; available: {available_processes()}"
        ) from None
    try:
        return cls(**config)
    except TypeError as error:
        raise ConfigurationError(
            f"process {name!r} rejected its parameters {sorted(config)}: {error}"
        ) from None


@register_process("markov")
class MarkovModulatedDelay(WorkerProcess):
    """Two-state (fast/slow) Markov regime switching per worker.

    Each iteration the worker is either in its *fast* regime (the base delay
    model) or its *slow* regime (completion times multiplied by
    ``slowdown``). The regime evolves as a Markov chain: a fast worker turns
    slow with probability ``p_slow`` per iteration, a slow worker recovers
    with probability ``p_recover``.

    Parameters
    ----------
    slowdown:
        Multiplicative slowdown in the slow regime (``>= 1``).
    p_slow:
        Per-iteration probability of entering the slow regime.
    p_recover:
        Per-iteration probability of leaving it.
    start_slow:
        Whether the worker begins the job in the slow regime.
    """

    def __init__(
        self,
        slowdown: float = 8.0,
        p_slow: float = 0.05,
        p_recover: float = 0.4,
        start_slow: bool = False,
    ) -> None:
        self.slowdown = check_in_range(slowdown, "slowdown", low=1.0)
        self.p_slow = check_probability(p_slow, "p_slow")
        self.p_recover = check_probability(p_recover, "p_recover")
        self.start_slow = bool(start_slow)

    def timeline(
        self, base: DelayModel, num_iterations: int, rng: RandomState = None
    ) -> List[DelayModel]:
        check_positive_int(num_iterations, "num_iterations")
        generator = as_generator(rng)
        # One uniform per iteration, drawn as a block so consumption is
        # fixed regardless of the realised regime path.
        draws = generator.random(num_iterations)
        slow_model = scale_delay(base, self.slowdown)
        models: List[DelayModel] = []
        slow = self.start_slow
        for t in range(num_iterations):
            models.append(slow_model if slow else base)
            threshold = self.p_recover if slow else self.p_slow
            if draws[t] < threshold:
                slow = not slow
        return models

    def __repr__(self) -> str:
        return (
            f"MarkovModulatedDelay(slowdown={self.slowdown!r}, "
            f"p_slow={self.p_slow!r}, p_recover={self.p_recover!r}, "
            f"start_slow={self.start_slow!r})"
        )


@register_process("drift")
class DriftingDelay(WorkerProcess):
    """Deterministic geometric drift of the worker's delay scale.

    The worker's completion-time scale interpolates geometrically from
    ``initial_factor`` (iteration 0) to ``final_factor`` (last iteration):
    ``final > initial`` models a worker that degrades over the job (thermal
    throttling, co-tenant pressure), ``final < initial`` one that warms up.
    The process draws no randomness.
    """

    def __init__(
        self, final_factor: float = 3.0, initial_factor: float = 1.0
    ) -> None:
        self.final_factor = check_in_range(
            final_factor, "final_factor", low=0.0, inclusive=False
        )
        self.initial_factor = check_in_range(
            initial_factor, "initial_factor", low=0.0, inclusive=False
        )

    def timeline(
        self, base: DelayModel, num_iterations: int, rng: RandomState = None
    ) -> List[DelayModel]:
        check_positive_int(num_iterations, "num_iterations")
        if num_iterations == 1:
            return [scale_delay(base, self.initial_factor)]
        ratio = self.final_factor / self.initial_factor
        return [
            scale_delay(
                base,
                self.initial_factor * ratio ** (t / (num_iterations - 1)),
            )
            for t in range(num_iterations)
        ]

    def __repr__(self) -> str:
        return (
            f"DriftingDelay(final_factor={self.final_factor!r}, "
            f"initial_factor={self.initial_factor!r})"
        )


@register_process("preempt")
class PreemptionModel(WorkerProcess):
    """Spot-style preemption: kill the worker, replace it after a lag.

    Each iteration an up worker is preempted with probability
    ``preempt_probability``; its slot is then vacant
    (:class:`UnavailableDelay`) for ``recovery_iterations`` iterations —
    the replacement instance boots and reloads the worker's data partition —
    after which it resumes with the base delay model. Preemption draws are
    taken as one block per worker, so consumption is independent of the
    realised kill pattern.
    """

    can_remove_workers = True

    def __init__(
        self,
        preempt_probability: float = 0.02,
        recovery_iterations: int = 3,
    ) -> None:
        self.preempt_probability = check_probability(
            preempt_probability, "preempt_probability"
        )
        self.recovery_iterations = check_positive_int(
            recovery_iterations, "recovery_iterations"
        )

    def timeline(
        self, base: DelayModel, num_iterations: int, rng: RandomState = None
    ) -> List[DelayModel]:
        check_positive_int(num_iterations, "num_iterations")
        generator = as_generator(rng)
        draws = generator.random(num_iterations)
        models: List[DelayModel] = []
        down_remaining = 0
        for t in range(num_iterations):
            if down_remaining == 0 and draws[t] < self.preempt_probability:
                down_remaining = self.recovery_iterations
            if down_remaining > 0:
                models.append(UNAVAILABLE)
                down_remaining -= 1
            else:
                models.append(base)
        return models

    def __repr__(self) -> str:
        return (
            f"PreemptionModel(preempt_probability={self.preempt_probability!r}, "
            f"recovery_iterations={self.recovery_iterations!r})"
        )
