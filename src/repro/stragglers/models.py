"""Concrete delay models.

:class:`ShiftedExponentialDelay` is the paper's model (Eq. 15):

.. math::

    \\Pr[T_i \\le t] = 1 - \\exp\\left(-\\frac{\\mu_i}{r_i}(t - a_i r_i)\\right),
    \\qquad t \\ge a_i r_i,

i.e. a deterministic per-example cost ``a`` plus an exponential tail whose
scale grows linearly with the load. The other models support the
"universality" ablation: BCC needs no knowledge of the delay distribution, so
its advantage should persist under Pareto-tailed or bimodal stragglers.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stragglers.base import DelayModel
from repro.utils.rng import RandomState
from repro.utils.validation import check_in_range, check_nonnegative, check_probability

__all__ = [
    "ShiftedExponentialDelay",
    "ExponentialDelay",
    "DeterministicDelay",
    "ParetoDelay",
    "BimodalStragglerDelay",
    "TraceDelay",
]

Number = Union[float, np.ndarray]


class ShiftedExponentialDelay(DelayModel):
    """The paper's shift-exponential completion-time model.

    Parameters
    ----------
    straggling:
        The straggling parameter ``mu > 0``; larger means less straggling
        (the exponential tail decays faster).
    shift:
        The shift parameter ``a >= 0``: deterministic seconds per example.
    """

    def __init__(self, straggling: float = 1.0, shift: float = 0.0) -> None:
        self.straggling = check_in_range(straggling, "straggling", low=0.0, inclusive=False)
        self.shift = check_nonnegative(shift, "shift")

    def sample(
        self, load: int, rng: RandomState = None, size: Optional[int] = None
    ) -> Number:
        load = self._check_load(load)
        generator = self._rng(rng)
        scale = load / self.straggling
        tail = generator.exponential(scale=scale, size=size)
        result = self.shift * load + tail
        return float(result) if size is None else result

    def sample_batch(
        self, load: int, rng: RandomState = None, size: int = 1
    ) -> np.ndarray:
        if type(self).sample is not ShiftedExponentialDelay.sample:
            # A subclass changed the distribution; the generic delegate to
            # self.sample is the only path guaranteed to match it.
            return super().sample_batch(load, rng=rng, size=size)
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        load = self._check_load(load)
        generator = self._rng(rng)
        tail = generator.exponential(scale=load / self.straggling, size=int(size))
        return self.shift * load + tail

    def mean(self, load: int) -> float:
        load = self._check_load(load)
        return self.shift * load + load / self.straggling

    @classmethod
    def sample_grid(
        cls,
        models: Sequence[DelayModel],
        loads: Sequence[int],
        rng: RandomState = None,
        num_draws: int = 1,
    ) -> np.ndarray:
        params = cls._grid_parameters(models, ("straggling", "shift"))
        if params is None:
            return super().sample_grid(models, loads, rng, num_draws)
        stragglings, shifts = params
        loads_row = cls._check_grid_loads(models, loads)
        generator = cls._rng(rng)
        # One broadcast draw fills the matrix in C order, element by element,
        # so the stream matches the scalar draw-major/worker-minor loop.
        tail = generator.exponential(
            scale=loads_row / stragglings, size=(int(num_draws), len(models))
        )
        return shifts * loads_row + tail

    @classmethod
    def sample_trials(
        cls,
        models: Sequence[DelayModel],
        loads: Sequence[int],
        rngs: Sequence[RandomState],
        num_draws: int = 1,
    ) -> np.ndarray:
        params = cls._grid_parameters(models, ("straggling", "shift"))
        if params is None:
            return super().sample_trials(models, loads, rngs, num_draws)
        stragglings, shifts = params
        loads_row = cls._check_grid_loads(models, loads)
        scale = loads_row / stragglings
        base = shifts * loads_row
        # The (mu, a) extraction above is hoisted out of the trial loop; the
        # draws themselves stay per trial because every trial consumes its
        # own independent generator (the sample_trials stream contract).
        shape = (int(num_draws), len(models))
        out = np.empty((len(rngs), *shape), dtype=float)
        for t, rng in enumerate(rngs):
            out[t] = base + cls._rng(rng).exponential(scale=scale, size=shape)
        return out

    @classmethod
    def sample_timeline(
        cls,
        model_rows: Sequence[Sequence[DelayModel]],
        loads: Sequence[int],
        rng: RandomState = None,
    ) -> np.ndarray:
        if not model_rows:
            return super().sample_timeline(model_rows, loads, rng)
        shape = (len(model_rows), len(loads))
        from repro.stragglers.dynamics import memoize_by_id

        # Timelines repeat few distinct model objects (a Markov worker
        # alternates between two), so the native check and the (mu, a)
        # lookup are memoized per model object: one dict hit per cell
        # instead of per-cell isinstance + getattr passes. None marks a
        # cell outside this class's native sampler (fall back below).
        cell_parameters = memoize_by_id(
            lambda model: (float(model.straggling), float(model.shift))
            if isinstance(model, cls) and type(model).sample is cls.sample
            else None
        )
        stragglings = np.empty(shape)
        shifts = np.empty(shape)
        for i, row in enumerate(model_rows):
            if len(row) != shape[1]:
                raise ConfigurationError("model rows must all have one model per load")
            for j, model in enumerate(row):
                params = cell_parameters(model)
                if params is None:
                    return super().sample_timeline(model_rows, loads, rng)
                stragglings[i, j], shifts[i, j] = params
        loads_row = cls._check_grid_loads(model_rows[0], loads)
        generator = cls._rng(rng)
        # One broadcast draw fills the matrix in C order (row-major, cell by
        # cell), so the stream matches per-row scalar draws even though every
        # cell carries its own (mu, a) — the dynamic engine's fast path.
        tail = generator.exponential(scale=loads_row / stragglings, size=shape)
        return shifts * loads_row + tail

    def cdf(self, load: int, t: Number) -> Number:
        load = self._check_load(load)
        t_arr = np.asarray(t, dtype=float)
        shifted = t_arr - self.shift * load
        rate = self.straggling / load
        values = np.where(shifted >= 0, 1.0 - np.exp(-rate * np.maximum(shifted, 0.0)), 0.0)
        return float(values) if np.isscalar(t) else values

    def __repr__(self) -> str:
        return (
            f"ShiftedExponentialDelay(straggling={self.straggling!r}, "
            f"shift={self.shift!r})"
        )


class ExponentialDelay(ShiftedExponentialDelay):
    """Pure exponential tail (shift ``a = 0``)."""

    def __init__(self, straggling: float = 1.0) -> None:
        super().__init__(straggling=straggling, shift=0.0)

    def __repr__(self) -> str:
        return f"ExponentialDelay(straggling={self.straggling!r})"


class DeterministicDelay(DelayModel):
    """No randomness: exactly ``seconds_per_example * load`` seconds.

    Useful as a control: with deterministic workers every scheme should wait
    for precisely its recovery threshold's worth of workers and the
    simulator's accounting can be checked exactly.
    """

    def __init__(self, seconds_per_example: float = 1.0) -> None:
        self.seconds_per_example = check_nonnegative(
            seconds_per_example, "seconds_per_example"
        )

    def sample(
        self, load: int, rng: RandomState = None, size: Optional[int] = None
    ) -> Number:
        load = self._check_load(load)
        value = self.seconds_per_example * load
        if size is None:
            return float(value)
        return np.full(size, value, dtype=float)

    def sample_batch(
        self, load: int, rng: RandomState = None, size: int = 1
    ) -> np.ndarray:
        if type(self).sample is not DeterministicDelay.sample:
            return super().sample_batch(load, rng=rng, size=size)
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        load = self._check_load(load)
        # No randomness is consumed, matching the scalar path exactly.
        return np.full(int(size), self.seconds_per_example * load, dtype=float)

    def mean(self, load: int) -> float:
        return self.seconds_per_example * self._check_load(load)

    @classmethod
    def sample_grid(
        cls,
        models: Sequence[DelayModel],
        loads: Sequence[int],
        rng: RandomState = None,
        num_draws: int = 1,
    ) -> np.ndarray:
        params = cls._grid_parameters(models, ("seconds_per_example",))
        if params is None:
            return super().sample_grid(models, loads, rng, num_draws)
        (rates,) = params
        loads_row = cls._check_grid_loads(models, loads)
        # Deterministic: no randomness is consumed, matching the scalar path.
        return np.tile(rates * loads_row, (int(num_draws), 1))

    @classmethod
    def sample_trials(
        cls,
        models: Sequence[DelayModel],
        loads: Sequence[int],
        rngs: Sequence[RandomState],
        num_draws: int = 1,
    ) -> np.ndarray:
        params = cls._grid_parameters(models, ("seconds_per_example",))
        if params is None:
            return super().sample_trials(models, loads, rngs, num_draws)
        (rates,) = params
        loads_row = cls._check_grid_loads(models, loads)
        # No randomness at all: the whole (trials, draws, workers) tensor is
        # one broadcast — the only model family where the trial axis truly
        # collapses into a single call without touching any generator.
        return np.tile(rates * loads_row, (len(rngs), int(num_draws), 1))

    def cdf(self, load: int, t: Number) -> Number:
        load = self._check_load(load)
        t_arr = np.asarray(t, dtype=float)
        values = (t_arr >= self.seconds_per_example * load).astype(float)
        return float(values) if np.isscalar(t) else values

    def __repr__(self) -> str:
        return f"DeterministicDelay(seconds_per_example={self.seconds_per_example!r})"


class ParetoDelay(DelayModel):
    """Heavy-tailed Pareto completion times.

    ``T = scale * load * X`` where ``X`` is Pareto(alpha) with minimum 1, so
    the fastest possible completion is ``scale * load`` and the tail decays
    polynomially. ``alpha <= 1`` gives an infinite mean — permitted, since the
    simulator only needs samples, but :meth:`mean` raises in that case.
    """

    def __init__(self, alpha: float = 2.0, scale: float = 1.0) -> None:
        self.alpha = check_in_range(alpha, "alpha", low=0.0, inclusive=False)
        self.scale = check_in_range(scale, "scale", low=0.0, inclusive=False)

    def sample(
        self, load: int, rng: RandomState = None, size: Optional[int] = None
    ) -> Number:
        load = self._check_load(load)
        generator = self._rng(rng)
        # numpy's pareto returns X - 1 for a Pareto with minimum 1.
        draws = 1.0 + generator.pareto(self.alpha, size=size)
        result = self.scale * load * draws
        return float(result) if size is None else result

    def sample_batch(
        self, load: int, rng: RandomState = None, size: int = 1
    ) -> np.ndarray:
        if type(self).sample is not ParetoDelay.sample:
            return super().sample_batch(load, rng=rng, size=size)
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        load = self._check_load(load)
        generator = self._rng(rng)
        draws = 1.0 + generator.pareto(self.alpha, size=int(size))
        return self.scale * load * draws

    def mean(self, load: int) -> float:
        load = self._check_load(load)
        if self.alpha <= 1.0:
            raise ConfigurationError(
                f"the Pareto mean is infinite for alpha <= 1 (alpha={self.alpha})"
            )
        return self.scale * load * self.alpha / (self.alpha - 1.0)

    @classmethod
    def sample_grid(
        cls,
        models: Sequence[DelayModel],
        loads: Sequence[int],
        rng: RandomState = None,
        num_draws: int = 1,
    ) -> np.ndarray:
        params = cls._grid_parameters(models, ("alpha", "scale"))
        if params is None:
            return super().sample_grid(models, loads, rng, num_draws)
        alphas, scales = params
        loads_row = cls._check_grid_loads(models, loads)
        generator = cls._rng(rng)
        draws = 1.0 + generator.pareto(alphas, size=(int(num_draws), len(models)))
        return scales * loads_row * draws

    @classmethod
    def sample_trials(
        cls,
        models: Sequence[DelayModel],
        loads: Sequence[int],
        rngs: Sequence[RandomState],
        num_draws: int = 1,
    ) -> np.ndarray:
        params = cls._grid_parameters(models, ("alpha", "scale"))
        if params is None:
            return super().sample_trials(models, loads, rngs, num_draws)
        alphas, scales = params
        loads_row = cls._check_grid_loads(models, loads)
        base = scales * loads_row
        # Parameter extraction is hoisted; the draws stay per trial because
        # every trial consumes its own generator (the stream contract).
        shape = (int(num_draws), len(models))
        out = np.empty((len(rngs), *shape), dtype=float)
        for t, rng in enumerate(rngs):
            out[t] = base * (1.0 + cls._rng(rng).pareto(alphas, size=shape))
        return out

    def cdf(self, load: int, t: Number) -> Number:
        load = self._check_load(load)
        t_arr = np.asarray(t, dtype=float)
        minimum = self.scale * load
        ratio = np.maximum(t_arr / minimum, 1.0)
        values = np.where(t_arr >= minimum, 1.0 - ratio ** (-self.alpha), 0.0)
        return float(values) if np.isscalar(t) else values

    def __repr__(self) -> str:
        return f"ParetoDelay(alpha={self.alpha!r}, scale={self.scale!r})"


# reprolint: allow[RNG002] reason=sized draws are block-ordered (all jitter then all straggle flags) so no cross-worker vectorization can match the scalar stream; the inherited generic paths delegate to sample() and are the reference
class BimodalStragglerDelay(DelayModel):
    """"Occasionally very slow" workers.

    With probability ``straggle_probability`` the worker is a straggler for
    this task and its time is multiplied by ``slowdown``; otherwise it runs at
    the base speed. The base time is ``seconds_per_example * load`` plus a
    small exponential jitter. This mimics the production observation ([5] in
    the paper) that a minority of tasks run much slower than the rest.
    """

    def __init__(
        self,
        seconds_per_example: float = 1.0,
        straggle_probability: float = 0.1,
        slowdown: float = 10.0,
        jitter: float = 0.05,
    ) -> None:
        self.seconds_per_example = check_in_range(
            seconds_per_example, "seconds_per_example", low=0.0, inclusive=False
        )
        self.straggle_probability = check_probability(
            straggle_probability, "straggle_probability"
        )
        self.slowdown = check_in_range(slowdown, "slowdown", low=1.0)
        self.jitter = check_nonnegative(jitter, "jitter")

    def sample(
        self, load: int, rng: RandomState = None, size: Optional[int] = None
    ) -> Number:
        load = self._check_load(load)
        generator = self._rng(rng)
        n = 1 if size is None else size
        base = self.seconds_per_example * load
        jitter = generator.exponential(scale=self.jitter * base + 1e-12, size=n)
        slow = generator.random(n) < self.straggle_probability
        times = np.where(slow, self.slowdown * base, base) + jitter
        return float(times[0]) if size is None else times

    def mean(self, load: int) -> float:
        load = self._check_load(load)
        base = self.seconds_per_example * load
        expected_base = (
            self.straggle_probability * self.slowdown + (1 - self.straggle_probability)
        ) * base
        return expected_base + self.jitter * base

    def __repr__(self) -> str:
        return (
            f"BimodalStragglerDelay(seconds_per_example={self.seconds_per_example!r}, "
            f"straggle_probability={self.straggle_probability!r}, "
            f"slowdown={self.slowdown!r}, jitter={self.jitter!r})"
        )


class TraceDelay(DelayModel):
    """Replay completion times from a recorded trace.

    The trace holds *per-example* processing times; a task of ``load``
    examples takes ``trace[k] * load`` seconds where ``k`` is drawn uniformly
    from the trace. This lets measured straggling behaviour (e.g. collected
    from a real cluster) drive the simulator without fitting a distribution.
    """

    def __init__(self, per_example_times: Sequence[float]) -> None:
        trace = np.asarray(per_example_times, dtype=float)
        if trace.ndim != 1 or trace.size == 0:
            raise ConfigurationError("per_example_times must be a non-empty 1-D sequence")
        if np.any(trace < 0) or not np.all(np.isfinite(trace)):
            raise ConfigurationError("per_example_times must be finite and non-negative")
        self.trace = trace

    def sample(
        self, load: int, rng: RandomState = None, size: Optional[int] = None
    ) -> Number:
        load = self._check_load(load)
        generator = self._rng(rng)
        draws = generator.choice(self.trace, size=size, replace=True)
        result = draws * load
        return float(result) if size is None else result

    def sample_batch(
        self, load: int, rng: RandomState = None, size: int = 1
    ) -> np.ndarray:
        if type(self).sample is not TraceDelay.sample:
            return super().sample_batch(load, rng=rng, size=size)
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        load = self._check_load(load)
        generator = self._rng(rng)
        draws = generator.choice(self.trace, size=int(size), replace=True)
        return draws * load

    def mean(self, load: int) -> float:
        return float(self.trace.mean()) * self._check_load(load)

    @classmethod
    def sample_grid(
        cls,
        models: Sequence[DelayModel],
        loads: Sequence[int],
        rng: RandomState = None,
        num_draws: int = 1,
    ) -> np.ndarray:
        # One batched draw is only possible when every worker replays the
        # *same* trace (one `choice` call per element, same population) with
        # the unmodified scalar sampler; mixed traces and sample() overrides
        # fall back to the generic scalar grid.
        if not cls._all_native(models):
            return super().sample_grid(models, loads, rng, num_draws)
        trace = models[0].trace
        if not all(
            model.trace is trace or np.array_equal(model.trace, trace)
            for model in models
        ):
            return super().sample_grid(models, loads, rng, num_draws)
        loads_row = cls._check_grid_loads(models, loads)
        generator = cls._rng(rng)
        draws = generator.choice(trace, size=(int(num_draws), len(models)), replace=True)
        return draws * loads_row

    @classmethod
    def sample_trials(
        cls,
        models: Sequence[DelayModel],
        loads: Sequence[int],
        rngs: Sequence[RandomState],
        num_draws: int = 1,
    ) -> np.ndarray:
        if not cls._all_native(models):
            return super().sample_trials(models, loads, rngs, num_draws)
        trace = models[0].trace
        if not all(
            model.trace is trace or np.array_equal(model.trace, trace)
            for model in models
        ):
            return super().sample_trials(models, loads, rngs, num_draws)
        loads_row = cls._check_grid_loads(models, loads)
        # The shared-trace check is hoisted out of the trial loop; each
        # trial's slice still comes from its own generator, one batched
        # choice per trial exactly like sample_grid would draw it.
        shape = (int(num_draws), len(models))
        out = np.empty((len(rngs), *shape), dtype=float)
        for t, rng in enumerate(rngs):
            out[t] = cls._rng(rng).choice(trace, size=shape, replace=True) * loads_row
        return out

    def __repr__(self) -> str:
        return f"TraceDelay(num_samples={self.trace.size})"
