"""Communication-time models.

The paper's EC2 measurements show communication dominating computation, and
the total run time scaling roughly with the recovery threshold because the
master's ingress link serialises the incoming messages. The communication
model therefore charges time *at the master* per received message as a
function of the message size (in units of one partial-gradient vector).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_nonnegative

__all__ = [
    "CommunicationModel",
    "LinearCommunicationModel",
    "ZeroCommunicationModel",
]

Number = Union[float, np.ndarray]


class CommunicationModel(abc.ABC):
    """Time to transfer a message of a given size to the master."""

    @abc.abstractmethod
    def sample(
        self, message_size: float, rng: RandomState = None, size: Optional[int] = None
    ) -> Number:
        """Draw transfer times for a message of ``message_size`` gradient-units."""

    @abc.abstractmethod
    def mean(self, message_size: float) -> float:
        """Expected transfer time."""

    @property
    def is_deterministic(self) -> bool:
        """Whether :meth:`sample` consumes no randomness.

        The vectorized timing engine batches all computation-time draws up
        front only when the communication model is deterministic (the stream
        then contains nothing but compute draws in both engines); stochastic
        models force it onto the per-iteration draw path to keep the RNG
        consumption order identical to the loop engine. The base class
        conservatively reports ``False``.
        """
        return False

    def sample_batch(
        self, message_sizes: np.ndarray, rng: RandomState = None
    ) -> np.ndarray:
        """Draw one transfer time per entry of ``message_sizes``.

        Stream contract: consumes the RNG exactly like scalar :meth:`sample`
        calls over ``message_sizes`` in C order. The generic fallback loops
        those scalar calls; subclasses vectorize.
        """
        generator = as_generator(rng)
        sizes = np.asarray(message_sizes, dtype=float)
        flat = [float(self.sample(float(s), rng=generator)) for s in sizes.ravel()]
        return np.asarray(flat, dtype=float).reshape(sizes.shape)

    def sample_trials(
        self, message_sizes: np.ndarray, rngs: Sequence[RandomState]
    ) -> np.ndarray:
        """Draw a ``(len(rngs), *message_sizes.shape)`` stack of transfer times.

        The trials-axis counterpart of :meth:`sample_batch` for batch
        consumers: trial ``t``'s slice consumes ``rngs[t]`` (and only
        ``rngs[t]``) exactly like ``sample_batch(message_sizes, rngs[t])``,
        so each slice is bit-identical to a solo draw at the same seed.
        Deterministic models (``is_deterministic`` true) draw nothing and
        collapse the trial axis into one broadcast.

        Note the trial-batched *engine* does not route its transfers through
        this method: under a deterministic model one :meth:`sample_batch`
        broadcast covers every trial, and under a stochastic model the
        draw-order contract forces the per-iteration compute/transfer
        interleave (in completion order, which differs per trial) — see
        :mod:`repro.simulation.vectorized`.
        """
        sizes = np.asarray(message_sizes, dtype=float)
        if self.is_deterministic:
            return np.broadcast_to(
                self.sample_batch(sizes), (len(rngs), *sizes.shape)
            )
        out = np.empty((len(rngs), *sizes.shape), dtype=float)
        for t, rng in enumerate(rngs):
            out[t] = self.sample_batch(sizes, rng)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class LinearCommunicationModel(CommunicationModel):
    """``time = latency + seconds_per_unit * message_size`` plus optional jitter.

    Parameters
    ----------
    latency:
        Fixed per-message overhead in seconds.
    seconds_per_unit:
        Transfer seconds per unit of message size (one unit = one gradient
        vector of dimension ``p``).
    jitter:
        If positive, an exponential random extra delay with this mean is
        added to every transfer.
    """

    def __init__(
        self,
        latency: float = 0.0,
        seconds_per_unit: float = 1.0,
        jitter: float = 0.0,
    ) -> None:
        self.latency = check_nonnegative(latency, "latency")
        self.seconds_per_unit = check_nonnegative(seconds_per_unit, "seconds_per_unit")
        self.jitter = check_nonnegative(jitter, "jitter")

    def sample(
        self, message_size: float, rng: RandomState = None, size: Optional[int] = None
    ) -> Number:
        message_size = check_nonnegative(message_size, "message_size")
        base = self.latency + self.seconds_per_unit * message_size
        if self.jitter == 0.0:
            if size is None:
                return float(base)
            return np.full(size, base, dtype=float)
        generator = as_generator(rng)
        extra = generator.exponential(scale=self.jitter, size=size)
        result = base + extra
        return float(result) if size is None else result

    def mean(self, message_size: float) -> float:
        message_size = check_nonnegative(message_size, "message_size")
        return self.latency + self.seconds_per_unit * message_size + self.jitter

    @property
    def is_deterministic(self) -> bool:
        # A subclass that overrides sample() changed the distribution; only
        # the unmodified sampler is known to be draw-free at jitter zero.
        if type(self).sample is not LinearCommunicationModel.sample:
            return False
        return self.jitter == 0.0

    def sample_batch(
        self, message_sizes: np.ndarray, rng: RandomState = None
    ) -> np.ndarray:
        if type(self).sample is not LinearCommunicationModel.sample:
            return super().sample_batch(message_sizes, rng)
        sizes = np.asarray(message_sizes, dtype=float)
        if sizes.size and sizes.min() < 0:
            raise ConfigurationError(
                f"message sizes must be non-negative, got min {sizes.min()}"
            )
        base = self.latency + self.seconds_per_unit * sizes
        if self.jitter == 0.0:
            return base
        generator = as_generator(rng)
        # Element-sequential C-order fill: same stream as scalar draws.
        return base + generator.exponential(scale=self.jitter, size=sizes.shape)

    def __repr__(self) -> str:
        return (
            f"LinearCommunicationModel(latency={self.latency!r}, "
            f"seconds_per_unit={self.seconds_per_unit!r}, jitter={self.jitter!r})"
        )


class ZeroCommunicationModel(CommunicationModel):
    """Free communication — isolates the computation-time component."""

    def sample(
        self, message_size: float, rng: RandomState = None, size: Optional[int] = None
    ) -> Number:
        check_nonnegative(message_size, "message_size")
        if size is None:
            return 0.0
        return np.zeros(size, dtype=float)

    def mean(self, message_size: float) -> float:
        check_nonnegative(message_size, "message_size")
        return 0.0

    @property
    def is_deterministic(self) -> bool:
        return type(self).sample is ZeroCommunicationModel.sample

    def sample_batch(
        self, message_sizes: np.ndarray, rng: RandomState = None
    ) -> np.ndarray:
        if type(self).sample is not ZeroCommunicationModel.sample:
            return super().sample_batch(message_sizes, rng)
        sizes = np.asarray(message_sizes, dtype=float)
        if sizes.size and sizes.min() < 0:
            raise ConfigurationError(
                f"message sizes must be non-negative, got min {sizes.min()}"
            )
        return np.zeros(sizes.shape, dtype=float)
