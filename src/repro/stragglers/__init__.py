"""Straggler (worker completion-time) delay models.

A delay model answers one question: *how long does a worker take to finish a
task of a given load?* The paper's analysis (Section IV, Eq. 15) adopts the
shift-exponential family, where a worker processing ``r`` examples finishes
after a deterministic ``a * r`` seconds plus an exponential tail with rate
``mu / r``. The library ships that family plus several alternatives used for
the universality ablations.
"""

from repro.stragglers.base import DelayModel
from repro.stragglers.models import (
    ShiftedExponentialDelay,
    ExponentialDelay,
    DeterministicDelay,
    ParetoDelay,
    BimodalStragglerDelay,
    TraceDelay,
)
from repro.stragglers.communication import (
    CommunicationModel,
    LinearCommunicationModel,
    ZeroCommunicationModel,
)
from repro.stragglers.dynamics import (
    UnavailableDelay,
    ScaledDelay,
    scale_delay,
    WorkerProcess,
    MarkovModulatedDelay,
    DriftingDelay,
    PreemptionModel,
    register_process,
    available_processes,
    process_from_config,
)

__all__ = [
    "DelayModel",
    "ShiftedExponentialDelay",
    "ExponentialDelay",
    "DeterministicDelay",
    "ParetoDelay",
    "BimodalStragglerDelay",
    "TraceDelay",
    "CommunicationModel",
    "LinearCommunicationModel",
    "ZeroCommunicationModel",
    "UnavailableDelay",
    "ScaledDelay",
    "scale_delay",
    "WorkerProcess",
    "MarkovModulatedDelay",
    "DriftingDelay",
    "PreemptionModel",
    "register_process",
    "available_processes",
    "process_from_config",
]
