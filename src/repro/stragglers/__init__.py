"""Straggler (worker completion-time) delay models.

A delay model answers one question: *how long does a worker take to finish a
task of a given load?* The paper's analysis (Section IV, Eq. 15) adopts the
shift-exponential family, where a worker processing ``r`` examples finishes
after a deterministic ``a * r`` seconds plus an exponential tail with rate
``mu / r``. The library ships that family plus several alternatives used for
the universality ablations.
"""

from repro.stragglers.base import DelayModel
from repro.stragglers.models import (
    ShiftedExponentialDelay,
    ExponentialDelay,
    DeterministicDelay,
    ParetoDelay,
    BimodalStragglerDelay,
    TraceDelay,
)
from repro.stragglers.communication import (
    CommunicationModel,
    LinearCommunicationModel,
    ZeroCommunicationModel,
)

__all__ = [
    "DelayModel",
    "ShiftedExponentialDelay",
    "ExponentialDelay",
    "DeterministicDelay",
    "ParetoDelay",
    "BimodalStragglerDelay",
    "TraceDelay",
    "CommunicationModel",
    "LinearCommunicationModel",
    "ZeroCommunicationModel",
]
