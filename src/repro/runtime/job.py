"""Master-side driver for a real multi-process distributed GD job."""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.batching import BatchSpec
from repro.exceptions import RuntimeBackendError
from repro.gradients.base import GradientModel
from repro.optim.base import Optimizer
from repro.optim.trainer import IterationRecord, TrainingResult
from repro.runtime.comm import InProcessCommunicator
from repro.runtime.tasks import WorkerTask, build_worker_tasks
from repro.runtime.worker import ResultMessage, StopSignal, WeightsMessage, worker_main
from repro.schemes.base import ExecutionPlan
from repro.stragglers.base import DelayModel
from repro.utils.validation import check_positive_int

__all__ = ["DistributedRunResult", "run_distributed_job"]


@dataclass
class DistributedRunResult:
    """Outcome of a real (multiprocessing) distributed training run.

    Attributes
    ----------
    scheme_name:
        Scheme that produced the execution plan.
    training:
        Loss trajectory and final weights, as produced by the master.
    iteration_times:
        Wall-clock seconds per iteration (master-side measurement, matching
        the paper's ``Time.time()`` bracketing).
    workers_heard:
        Number of worker messages the master used per iteration (the realised
        recovery threshold).
    total_seconds:
        Total wall-clock time across iterations.
    """

    scheme_name: str
    training: TrainingResult
    iteration_times: List[float] = field(default_factory=list)
    workers_heard: List[int] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def average_recovery_threshold(self) -> float:
        """Mean realised recovery threshold across iterations."""
        if not self.workers_heard:
            raise RuntimeBackendError("the run recorded no iterations")
        return float(np.mean(self.workers_heard))


def run_distributed_job(
    plan: ExecutionPlan,
    model: GradientModel,
    dataset: Dataset,
    optimizer: Optimizer,
    num_iterations: int,
    *,
    unit_spec: Optional[BatchSpec] = None,
    straggle_delays: Optional[List[Optional[DelayModel]]] = None,
    seed: Optional[int] = 0,
    initial_weights: Optional[np.ndarray] = None,
    receive_timeout: float = 60.0,
    iteration_timeout: Optional[float] = None,
    mp_context: Optional[str] = None,
) -> DistributedRunResult:
    """Run a distributed GD job with one OS process per worker.

    Parameters
    ----------
    plan:
        Frozen execution plan (placement + encoding + aggregation).
    model, dataset, optimizer, num_iterations:
        The learning task; the master evaluates the loss on the full dataset
        each iteration for the training trace.
    unit_spec:
        Unit-to-example mapping used when the plan's units are batches.
    straggle_delays:
        Optional per-worker delay models; each iteration the worker sleeps a
        freshly drawn amount before computing, emulating stragglers.
    receive_timeout:
        Seconds the master waits for any worker message before declaring the
        job dead (protects tests from hanging on a crashed worker).
    iteration_timeout:
        Overall deadline in seconds for one iteration's aggregation,
        defaulting to ``receive_timeout * num_workers``. ``receive_timeout``
        alone is not enough: every message — including a stale one from a
        straggler still answering an old broadcast — re-arms it, so a worker
        replaying old results could keep the master spinning forever. The
        default cannot fail a healthy iteration (at most one sub-timeout gap
        per worker message) while still bounding the replay pathology.
        Exceeding the deadline raises
        :class:`~repro.exceptions.RuntimeBackendError`.
    mp_context:
        Multiprocessing start method (``"fork"``, ``"spawn"``); default uses
        the platform default.

    Notes
    -----
    The number of workers equals ``plan.num_workers`` — keep it modest (a few
    dozen at most) when running on a laptop; the discrete-event simulator is
    the tool for cluster-sized sweeps.
    """
    check_positive_int(num_iterations, "num_iterations")
    if iteration_timeout is None:
        iteration_timeout = receive_timeout * max(plan.num_workers, 1)
    if iteration_timeout <= 0:
        raise RuntimeBackendError(
            f"iteration_timeout must be positive, got {iteration_timeout}"
        )
    context = mp.get_context(mp_context) if mp_context else mp.get_context()

    tasks = build_worker_tasks(
        plan,
        model,
        dataset,
        unit_spec=unit_spec,
        straggle_delays=straggle_delays,
        seed=seed,
    )
    communicator = InProcessCommunicator(plan.num_workers, context=context)
    processes = []
    for task in tasks:
        process = context.Process(
            target=worker_main,
            args=(task, communicator.worker_channel(task.worker_id)),
            daemon=True,
            name=f"repro-worker-{task.worker_id}",
        )
        processes.append(process)

    if initial_weights is None:
        initial_weights = model.initial_weights(dataset.num_features)
    state = optimizer.initialize(initial_weights)

    history: List[IterationRecord] = []
    iteration_times: List[float] = []
    workers_heard: List[int] = []
    job_started = time.perf_counter()
    total_seconds = 0.0
    try:
        for process in processes:
            process.start()

        for iteration in range(num_iterations):
            iteration_started = time.perf_counter()
            query = optimizer.query_point(state)
            communicator.broadcast(WeightsMessage(iteration=iteration, weights=query))

            aggregator = plan.new_aggregator()
            deadline = iteration_started + iteration_timeout
            complete = False
            while not complete:
                remaining = deadline - time.perf_counter()
                if remaining <= 0.0:
                    raise RuntimeBackendError(
                        f"iteration {iteration} did not complete within "
                        f"{iteration_timeout:.1f}s: heard "
                        f"{aggregator.workers_heard} usable message(s); "
                        "workers may be replaying stale broadcasts or have "
                        "stalled"
                    )
                worker, payload = communicator.receive_any(
                    timeout=min(receive_timeout, remaining)
                )
                if isinstance(payload, tuple) and payload and payload[0] == "error":
                    raise RuntimeBackendError(
                        f"worker {payload[1]} failed: {payload[2]}"
                    )
                if not isinstance(payload, ResultMessage):
                    raise RuntimeBackendError(
                        f"unexpected payload from worker {worker}: {type(payload).__name__}"
                    )
                if payload.iteration != iteration:
                    # Stale result from a straggler still answering an older
                    # broadcast; the master simply ignores it (the paper's
                    # master does the same).
                    continue
                complete = aggregator.receive(payload.worker_id, payload.message)
            workers_heard.append(aggregator.workers_heard)

            gradient = aggregator.decode() / float(dataset.num_examples)
            loss = model.loss(state.weights, dataset.features, dataset.labels)
            history.append(
                IterationRecord(
                    iteration=iteration,
                    loss=loss,
                    gradient_norm=float(np.linalg.norm(gradient)),
                    learning_rate=optimizer.schedule(iteration),
                )
            )
            state = optimizer.step(state, gradient)
            iteration_times.append(time.perf_counter() - iteration_started)
        # Measure the job time before shutdown: joining the workers can take
        # a while when an injected straggler still has queued broadcasts to
        # drain, and that tear-down cost is not part of the training time the
        # paper measures.
        total_seconds = time.perf_counter() - job_started
    finally:
        communicator.broadcast(StopSignal())
        for process in processes:
            process.join(timeout=10.0)
        for process in processes:
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join(timeout=5.0)
        communicator.drain()

    training = TrainingResult(weights=state.weights, history=history, converged=False)
    return DistributedRunResult(
        scheme_name=plan.scheme_name,
        training=training,
        iteration_times=iteration_times,
        workers_heard=workers_heard,
        total_seconds=total_seconds,
    )
