"""Master-side driver for a real multi-process distributed GD job."""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.batching import BatchSpec
from repro.exceptions import RuntimeBackendError
from repro.gradients.base import GradientModel
from repro.optim.base import Optimizer
from repro.optim.trainer import IterationRecord, TrainingResult
from repro.runtime.comm import InProcessCommunicator
from repro.runtime.faults import FaultSchedule, validate_fault_mode
from repro.runtime.tasks import WorkerTask, build_worker_tasks
from repro.runtime.worker import ResultMessage, StopSignal, WeightsMessage, worker_main
from repro.schemes.base import ExecutionPlan
from repro.stragglers.base import DelayModel
from repro.utils.validation import check_positive_int

__all__ = ["DistributedRunResult", "run_distributed_job"]


@dataclass
class DistributedRunResult:
    """Outcome of a real (multiprocessing) distributed training run.

    Attributes
    ----------
    scheme_name:
        Scheme that produced the execution plan.
    training:
        Loss trajectory and final weights, as produced by the master.
    iteration_times:
        Wall-clock seconds per iteration (master-side measurement, matching
        the paper's ``Time.time()`` bracketing).
    workers_heard:
        Number of worker messages the master used per iteration (the realised
        recovery threshold).
    total_seconds:
        Total wall-clock time across iterations.
    scheduled_workers:
        With fault injection: the number of scheduled-active worker slots
        per iteration (the realised availability trace); empty otherwise.
    """

    scheme_name: str
    training: TrainingResult
    iteration_times: List[float] = field(default_factory=list)
    workers_heard: List[int] = field(default_factory=list)
    total_seconds: float = 0.0
    scheduled_workers: List[int] = field(default_factory=list)

    @property
    def average_recovery_threshold(self) -> float:
        """Mean realised recovery threshold across iterations."""
        if not self.workers_heard:
            raise RuntimeBackendError("the run recorded no iterations")
        return float(np.mean(self.workers_heard))


def _first_dead_worker(
    processes: List[Optional[object]], expected: set, heard: set
) -> Optional[int]:
    """First scheduled-active worker whose process died before answering."""
    for worker in sorted(expected - heard):
        process = processes[worker]
        if process is not None and not process.is_alive():  # type: ignore[attr-defined]
            return worker
    return None


def run_distributed_job(
    plan: ExecutionPlan,
    model: GradientModel,
    dataset: Dataset,
    optimizer: Optimizer,
    num_iterations: int,
    *,
    unit_spec: Optional[BatchSpec] = None,
    straggle_delays: Optional[List[Optional[DelayModel]]] = None,
    seed: Optional[int] = 0,
    initial_weights: Optional[np.ndarray] = None,
    receive_timeout: float = 60.0,
    iteration_timeout: Optional[float] = None,
    mp_context: Optional[str] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    fault_mode: str = "mute",
) -> DistributedRunResult:
    """Run a distributed GD job with one OS process per worker.

    Parameters
    ----------
    plan:
        Frozen execution plan (placement + encoding + aggregation).
    model, dataset, optimizer, num_iterations:
        The learning task; the master evaluates the loss on the full dataset
        each iteration for the training trace.
    unit_spec:
        Unit-to-example mapping used when the plan's units are batches.
    straggle_delays:
        Optional per-worker delay models; each iteration the worker sleeps a
        freshly drawn amount before computing, emulating stragglers.
    receive_timeout:
        Seconds the master waits for any worker message before declaring the
        job dead (protects tests from hanging on a crashed worker).
    iteration_timeout:
        Overall deadline in seconds for one iteration's aggregation,
        defaulting to ``receive_timeout * num_workers``. ``receive_timeout``
        alone is not enough: every message — including a stale one from a
        straggler still answering an old broadcast — re-arms it, so a worker
        replaying old results could keep the master spinning forever. The
        default cannot fail a healthy iteration (at most one sub-timeout gap
        per worker message) while still bounding the replay pathology.
        Exceeding the deadline raises
        :class:`~repro.exceptions.RuntimeBackendError`.
    mp_context:
        Multiprocessing start method (``"fork"``, ``"spawn"``); default uses
        the platform default.
    fault_schedule:
        Optional realised :class:`~repro.runtime.faults.FaultSchedule`
        replaying a simulated straggler scenario on the real workers: each
        worker sleeps its pre-drawn cell before computing, and vacant
        (``inf``) cells make the slot skip the iteration entirely. The
        schedule must cover at least ``num_iterations`` rows and exactly
        ``plan.num_workers`` columns. Mutually exclusive with
        ``straggle_delays``.
    fault_mode:
        How vacant cells are realised (with ``fault_schedule``):
        ``"mute"`` keeps the process alive but silent, ``"respawn"`` makes
        it exit at its first vacant cell and the master spawn a fresh
        replacement — draining the stale broadcast backlog first — when the
        slot is scheduled active again (kill-and-respawn with recovery lag;
        ``initially_absent`` slots are spawned lazily at their first active
        iteration, realising delayed joins).

    Notes
    -----
    The number of workers equals ``plan.num_workers`` — keep it modest (a few
    dozen at most) when running on a laptop; the discrete-event simulator is
    the tool for cluster-sized sweeps.

    With fault injection active, a scheduled-active worker found dead while
    the master is still waiting on it raises a
    :class:`~repro.exceptions.RuntimeBackendError` naming the worker and the
    iteration (instead of the generic iteration timeout), and an iteration
    whose scheduled-active workers have all answered without reaching the
    plan's coverage fails fast — the real-runtime analogue of the
    simulators' lost-coverage error.
    """
    check_positive_int(num_iterations, "num_iterations")
    validate_fault_mode(fault_mode)
    if fault_schedule is not None and fault_schedule.num_iterations < num_iterations:
        raise RuntimeBackendError(
            f"the fault schedule covers {fault_schedule.num_iterations} "
            f"iteration(s) but the job runs {num_iterations}"
        )
    if iteration_timeout is None:
        iteration_timeout = receive_timeout * max(plan.num_workers, 1)
    if iteration_timeout <= 0:
        raise RuntimeBackendError(
            f"iteration_timeout must be positive, got {iteration_timeout}"
        )
    context = mp.get_context(mp_context) if mp_context else mp.get_context()

    tasks = build_worker_tasks(
        plan,
        model,
        dataset,
        unit_spec=unit_spec,
        straggle_delays=straggle_delays,
        seed=seed,
        fault_schedule=fault_schedule,
        fault_mode=fault_mode,
    )
    communicator = InProcessCommunicator(plan.num_workers, context=context)
    availability = None if fault_schedule is None else fault_schedule.availability
    respawning = fault_schedule is not None and fault_mode == "respawn"

    processes: List[Optional[object]] = [None] * plan.num_workers
    spawned: List[object] = []

    def spawn(worker: int) -> None:
        process = context.Process(
            target=worker_main,
            args=(tasks[worker], communicator.worker_channel(worker)),
            daemon=True,
            name=f"repro-worker-{worker}",
        )
        processes[worker] = process
        spawned.append(process)
        process.start()

    if initial_weights is None:
        initial_weights = model.initial_weights(dataset.num_features)
    state = optimizer.initialize(initial_weights)

    history: List[IterationRecord] = []
    iteration_times: List[float] = []
    workers_heard: List[int] = []
    scheduled_workers: List[int] = []
    job_started = time.perf_counter()
    total_seconds = 0.0
    try:
        for worker in range(plan.num_workers):
            if respawning and availability is not None and not availability[0, worker]:
                # Delayed join / initial absence: the slot is spawned lazily
                # at its first scheduled-active iteration.
                continue
            spawn(worker)

        for iteration in range(num_iterations):
            if availability is None:
                expected = set(range(plan.num_workers))
            else:
                expected = {
                    worker
                    for worker in range(plan.num_workers)
                    if availability[iteration, worker]
                }
                scheduled_workers.append(len(expected))
                if not expected:
                    raise RuntimeBackendError(
                        f"iteration {iteration} has no scheduled-active "
                        "workers: the injected scenario leaves the master "
                        "nothing to aggregate"
                    )
            if respawning and availability is not None:
                for worker in sorted(expected):
                    stale = processes[worker]
                    rejoining = stale is None or (
                        iteration > 0 and not availability[iteration - 1, worker]
                    )
                    if not rejoining:
                        continue
                    if stale is not None:
                        # The old process exited at its first vacant cell;
                        # reap it before reusing the slot.
                        stale.join(timeout=10.0)  # type: ignore[attr-defined]
                        if stale.is_alive():  # type: ignore[attr-defined] # pragma: no cover
                            stale.terminate()  # type: ignore[attr-defined]
                            stale.join(timeout=5.0)  # type: ignore[attr-defined]
                    # A fresh replacement must start from the next broadcast,
                    # not sleep through the backlog queued while dead.
                    communicator.drain_worker(worker)
                    spawn(worker)
            iteration_started = time.perf_counter()
            query = optimizer.query_point(state)
            communicator.broadcast(WeightsMessage(iteration=iteration, weights=query))

            aggregator = plan.new_aggregator()
            deadline = iteration_started + iteration_timeout
            heard: set = set()
            complete = False
            while not complete:
                remaining = deadline - time.perf_counter()
                if remaining <= 0.0:
                    if fault_schedule is not None:
                        dead = _first_dead_worker(processes, expected, heard)
                        if dead is not None:
                            raise RuntimeBackendError(
                                f"worker {dead} died before answering "
                                f"iteration {iteration}: its injected kill "
                                "left the master waiting on a scheduled-"
                                "active slot"
                            )
                    raise RuntimeBackendError(
                        f"iteration {iteration} did not complete within "
                        f"{iteration_timeout:.1f}s: heard "
                        f"{aggregator.workers_heard} usable message(s); "
                        "workers may be replaying stale broadcasts or have "
                        "stalled"
                    )
                try:
                    worker, payload = communicator.receive_any(
                        timeout=min(receive_timeout, remaining)
                    )
                except RuntimeBackendError:
                    if fault_schedule is not None:
                        dead = _first_dead_worker(processes, expected, heard)
                        if dead is not None:
                            raise RuntimeBackendError(
                                f"worker {dead} died before answering "
                                f"iteration {iteration}: its injected kill "
                                "left the master waiting on a scheduled-"
                                "active slot"
                            ) from None
                    raise
                if isinstance(payload, tuple) and payload and payload[0] == "error":
                    raise RuntimeBackendError(
                        f"worker {payload[1]} failed: {payload[2]}"
                    )
                if not isinstance(payload, ResultMessage):
                    raise RuntimeBackendError(
                        f"unexpected payload from worker {worker}: {type(payload).__name__}"
                    )
                if payload.iteration != iteration:
                    # Stale result from a straggler still answering an older
                    # broadcast; the master simply ignores it (the paper's
                    # master does the same).
                    continue
                heard.add(payload.worker_id)
                complete = aggregator.receive(payload.worker_id, payload.message)
                if not complete and fault_schedule is not None and expected <= heard:
                    raise RuntimeBackendError(
                        f"iteration {iteration}: all {len(expected)} "
                        "scheduled-active worker(s) answered but the "
                        "aggregator still lacks coverage — the scenario's "
                        "vacant slots hold units the scheme cannot recover"
                    )
            workers_heard.append(aggregator.workers_heard)

            gradient = aggregator.decode() / float(dataset.num_examples)
            loss = model.loss(state.weights, dataset.features, dataset.labels)
            history.append(
                IterationRecord(
                    iteration=iteration,
                    loss=loss,
                    gradient_norm=float(np.linalg.norm(gradient)),
                    learning_rate=optimizer.schedule(iteration),
                )
            )
            state = optimizer.step(state, gradient)
            iteration_times.append(time.perf_counter() - iteration_started)
        # Measure the job time before shutdown: joining the workers can take
        # a while when an injected straggler still has queued broadcasts to
        # drain, and that tear-down cost is not part of the training time the
        # paper measures.
        total_seconds = time.perf_counter() - job_started
    finally:
        communicator.broadcast(StopSignal())
        for process in spawned:
            process.join(timeout=10.0)  # type: ignore[attr-defined]
        for process in spawned:
            if process.is_alive():  # type: ignore[attr-defined] # pragma: no cover
                process.terminate()  # type: ignore[attr-defined]
                process.join(timeout=5.0)  # type: ignore[attr-defined]
        communicator.drain()

    training = TrainingResult(weights=state.weights, history=history, converged=False)
    return DistributedRunResult(
        scheme_name=plan.scheme_name,
        training=training,
        iteration_times=iteration_times,
        workers_heard=workers_heard,
        total_seconds=total_seconds,
        scheduled_workers=scheduled_workers,
    )
