"""Worker-process main loop.

The worker mirrors the paper's MPI worker: block on the next model broadcast,
compute the local partial gradients, encode, send the message back, repeat —
until it receives the stop sentinel. An optional injected sleep (drawn from
the task's delay model) emulates straggling on machines that are otherwise
uniformly fast, so the runtime reproduces straggler effects deterministically
from a seed.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.runtime.comm import QueueChannel
from repro.runtime.tasks import WorkerTask
from repro.utils.rng import as_generator

__all__ = ["StopSignal", "WeightsMessage", "ResultMessage", "worker_main"]

#: How often a straggling worker checks for a newer broadcast mid-sleep.
_PREEMPT_POLL_SECONDS = 0.002


def _sleep_or_yield(channel: QueueChannel, seconds: float) -> Any:
    """Sleep up to ``seconds``, yielding early to any newer broadcast.

    Returns the preempting payload, or ``None`` once the full sleep elapsed.
    The chunked poll keeps injected stragglers aligned with the simulator's
    semantics: when the master moves on to the next iteration, the straggler
    abandons its stale work there and then instead of carrying the leftover
    sleep into the new round.
    """
    deadline = time.perf_counter() + seconds
    while True:
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return None
        time.sleep(min(_PREEMPT_POLL_SECONDS, remaining))
        preempting = channel.poll()
        if preempting is not None:
            return preempting


@dataclass(frozen=True)
class StopSignal:
    """Sentinel broadcast by the master to terminate the workers."""


@dataclass(frozen=True)
class WeightsMessage:
    """One iteration's query point broadcast by the master."""

    iteration: int
    weights: np.ndarray


@dataclass(frozen=True)
class ResultMessage:
    """A worker's reply for one iteration."""

    iteration: int
    worker_id: int
    message: np.ndarray
    compute_seconds: float


def worker_main(task: WorkerTask, channel: QueueChannel) -> None:
    """Entry point executed inside each worker process.

    The loop never raises to the caller: any exception is reported to the
    master as a ``("error", worker_id, repr)`` payload so the master can shut
    the job down instead of hanging.

    Fault injection: with ``task.fault_delays`` set, each iteration's
    pre-drawn sleep is injected before computing. A vacant (``inf``) cell
    makes the worker skip the reply — staying alive and silent
    (``fault_mode="mute"``), or exiting immediately so the master can
    kill-and-respawn the slot (``task.exit_when_absent``, the ``"respawn"``
    mode). Injected sleeps are abandoned mid-way if a newer broadcast arrives
    (see :func:`_sleep_or_yield`), and iterations beyond the schedule horizon
    run uninjected.
    """
    rng = as_generator(task.seed)
    pending: Any = None
    try:
        while True:
            incoming: Any = pending if pending is not None else channel.receive()
            pending = None
            if isinstance(incoming, StopSignal):
                return
            if not isinstance(incoming, WeightsMessage):
                # reprolint: allow[EXC001] reason=unexpected IPC payload is a programming error in the runtime protocol, not a library-domain failure
                raise TypeError(
                    f"worker {task.worker_id} received an unexpected payload "
                    f"of type {type(incoming).__name__}"
                )
            started = time.perf_counter()
            if task.fault_delays is not None:
                injected = 0.0
                if 0 <= incoming.iteration < len(task.fault_delays):
                    injected = float(task.fault_delays[incoming.iteration])
                if math.isinf(injected):
                    if task.exit_when_absent:
                        # Simulated preemption: die without a goodbye, like a
                        # spot instance; the master respawns the slot when
                        # the schedule brings it back.
                        return
                    continue
                if injected > 0.0:
                    pending = _sleep_or_yield(channel, injected)
                    if pending is not None:
                        # A newer broadcast (or the stop sentinel) arrived
                        # while this worker straggled: the master has already
                        # abandoned this iteration, so the worker does too.
                        continue
            elif task.straggle_delay is not None and task.num_examples > 0:
                delay = float(task.straggle_delay.sample(task.num_examples, rng=rng))
                time.sleep(delay)
            message = task.compute_message(incoming.weights)
            elapsed = time.perf_counter() - started
            channel.send(
                ResultMessage(
                    iteration=incoming.iteration,
                    worker_id=task.worker_id,
                    message=message,
                    compute_seconds=elapsed,
                )
            )
    except Exception as error:  # pragma: no cover - exercised via the master's handling
        channel.send(("error", task.worker_id, repr(error)))
