"""Worker-process main loop.

The worker mirrors the paper's MPI worker: block on the next model broadcast,
compute the local partial gradients, encode, send the message back, repeat —
until it receives the stop sentinel. An optional injected sleep (drawn from
the task's delay model) emulates straggling on machines that are otherwise
uniformly fast, so the runtime reproduces straggler effects deterministically
from a seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.runtime.comm import QueueChannel
from repro.runtime.tasks import WorkerTask
from repro.utils.rng import as_generator

__all__ = ["StopSignal", "WeightsMessage", "ResultMessage", "worker_main"]


@dataclass(frozen=True)
class StopSignal:
    """Sentinel broadcast by the master to terminate the workers."""


@dataclass(frozen=True)
class WeightsMessage:
    """One iteration's query point broadcast by the master."""

    iteration: int
    weights: np.ndarray


@dataclass(frozen=True)
class ResultMessage:
    """A worker's reply for one iteration."""

    iteration: int
    worker_id: int
    message: np.ndarray
    compute_seconds: float


def worker_main(task: WorkerTask, channel: QueueChannel) -> None:
    """Entry point executed inside each worker process.

    The loop never raises to the caller: any exception is reported to the
    master as a ``("error", worker_id, repr)`` payload so the master can shut
    the job down instead of hanging.
    """
    rng = as_generator(task.seed)
    try:
        while True:
            incoming: Any = channel.receive()
            if isinstance(incoming, StopSignal):
                return
            if not isinstance(incoming, WeightsMessage):
                # reprolint: allow[EXC001] reason=unexpected IPC payload is a programming error in the runtime protocol, not a library-domain failure
                raise TypeError(
                    f"worker {task.worker_id} received an unexpected payload "
                    f"of type {type(incoming).__name__}"
                )
            started = time.perf_counter()
            if task.straggle_delay is not None and task.num_examples > 0:
                delay = float(task.straggle_delay.sample(task.num_examples, rng=rng))
                time.sleep(delay)
            message = task.compute_message(incoming.weights)
            elapsed = time.perf_counter() - started
            channel.send(
                ResultMessage(
                    iteration=incoming.iteration,
                    worker_id=task.worker_id,
                    message=message,
                    compute_seconds=elapsed,
                )
            )
    except Exception as error:  # pragma: no cover - exercised via the master's handling
        channel.send(("error", task.worker_id, repr(error)))
