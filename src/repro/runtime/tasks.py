"""Picklable per-worker task descriptions.

An :class:`~repro.schemes.base.ExecutionPlan` holds closures (its encoder and
aggregator factory), which do not survive pickling into a child process. The
runtime therefore flattens the worker-relevant part of a plan into
:class:`WorkerTask` objects that carry only plain data: the worker's slice of
the dataset (grouped by unit), its encoding mode and coefficients, the model,
and an optional straggler-injection delay model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.coding.linear_code import LinearGradientCode
from repro.datasets.base import Dataset
from repro.datasets.batching import BatchSpec
from repro.exceptions import RuntimeBackendError
from repro.gradients.base import GradientModel
from repro.schemes.base import ExecutionPlan
from repro.stragglers.base import DelayModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.faults import FaultSchedule

__all__ = ["WorkerTask", "build_worker_tasks"]

#: Encoding modes a worker can apply locally.
ENCODING_MODES = ("sum", "identity", "linear")


@dataclass
class WorkerTask:
    """Everything one worker process needs, in picklable form.

    Attributes
    ----------
    worker_id:
        The worker's index in the plan.
    model:
        The gradient model (a plain, picklable object).
    unit_features, unit_labels:
        Per-unit data slices, in the order of the worker's unit assignment.
    encoding_mode:
        ``"sum"`` (BCC / uncoded), ``"identity"`` (per-unit messages), or
        ``"linear"`` (coded schemes).
    coefficients:
        Linear-combination coefficients for ``"linear"`` mode, aligned with
        the unit order; ``None`` otherwise.
    straggle_delay:
        Optional delay model used to inject an artificial sleep before
        answering each iteration (the per-iteration load passed to it is the
        worker's total number of examples).
    seed:
        Seed for the worker's private RNG (straggler draws).
    fault_delays:
        Optional pre-drawn per-iteration injected sleeps (one column of a
        :class:`~repro.runtime.faults.FaultSchedule`); ``inf`` entries mark
        iterations where this worker slot is vacant. Mutually exclusive
        with ``straggle_delay`` (the schedule already realised every draw).
    exit_when_absent:
        With ``fault_delays``: whether the worker process exits at its
        first vacant iteration (``fault_mode="respawn"`` — the master
        spawns a replacement when the slot returns) instead of staying
        alive but silent (``fault_mode="mute"``).
    """

    worker_id: int
    model: GradientModel
    unit_features: List[np.ndarray]
    unit_labels: List[np.ndarray]
    encoding_mode: str
    coefficients: Optional[np.ndarray] = None
    straggle_delay: Optional[DelayModel] = None
    seed: Optional[int] = None
    fault_delays: Optional[np.ndarray] = None
    exit_when_absent: bool = False

    def __post_init__(self) -> None:
        if self.encoding_mode not in ENCODING_MODES:
            raise RuntimeBackendError(
                f"unknown encoding mode {self.encoding_mode!r}; "
                f"expected one of {ENCODING_MODES}"
            )
        if self.encoding_mode == "linear" and self.coefficients is None:
            raise RuntimeBackendError("linear encoding requires coefficients")
        if len(self.unit_features) != len(self.unit_labels):
            raise RuntimeBackendError(
                "unit_features and unit_labels must have the same length"
            )
        if self.fault_delays is not None:
            if self.straggle_delay is not None:
                raise RuntimeBackendError(
                    "fault_delays and straggle_delay are mutually exclusive: "
                    "a fault schedule already realises every injected sleep"
                )
            delays = np.asarray(self.fault_delays, dtype=float)
            if delays.ndim != 1:
                raise RuntimeBackendError(
                    "fault_delays must be a 1-D per-iteration array, got "
                    f"{delays.ndim} dimension(s)"
                )
            self.fault_delays = delays

    @property
    def num_units(self) -> int:
        """Number of data units this worker processes."""
        return len(self.unit_features)

    @property
    def num_examples(self) -> int:
        """Total number of examples across the worker's units."""
        return int(sum(features.shape[0] for features in self.unit_features))

    # ------------------------------------------------------------------ #
    def compute_message(self, weights: np.ndarray) -> np.ndarray:
        """Compute this worker's message for the given query point."""
        weights = np.asarray(weights, dtype=float)
        if self.num_units == 0:
            return np.zeros(0, dtype=float)
        unit_gradients = np.vstack(
            [
                self.model.gradient_sum(weights, features, labels)[None, :]
                for features, labels in zip(self.unit_features, self.unit_labels)
            ]
        )
        if self.encoding_mode == "sum":
            return unit_gradients.sum(axis=0)
        if self.encoding_mode == "identity":
            return unit_gradients
        assert self.coefficients is not None
        return np.asarray(self.coefficients, dtype=float) @ unit_gradients


def _encoding_mode_for_plan(plan: ExecutionPlan) -> str:
    """Infer the worker-side encoding mode from the plan's metadata."""
    if isinstance(plan.metadata.get("code"), LinearGradientCode):
        return "linear"
    # Per-unit message sizes identify identity encoding; unit-size-1 messages
    # from multi-unit workers identify summation.
    loads = plan.unit_assignment.loads
    sizes = plan.message_sizes
    if np.allclose(sizes, loads.astype(float)) and plan.computational_load_units > 1:
        return "identity"
    if np.allclose(sizes[loads > 0], 1.0):
        return "sum"
    if np.allclose(sizes, loads.astype(float)):
        return "identity"
    raise RuntimeBackendError(
        f"cannot infer the encoding mode of scheme {plan.scheme_name!r}"
    )


def build_worker_tasks(
    plan: ExecutionPlan,
    model: GradientModel,
    dataset: Dataset,
    *,
    unit_spec: Optional[BatchSpec] = None,
    straggle_delays: Optional[List[Optional[DelayModel]]] = None,
    seed: Optional[int] = None,
    fault_schedule: Optional["FaultSchedule"] = None,
    fault_mode: str = "mute",
) -> List[WorkerTask]:
    """Flatten an execution plan into one :class:`WorkerTask` per worker.

    Parameters
    ----------
    unit_spec:
        Unit-to-example mapping (``None`` = one example per unit).
    straggle_delays:
        Optional per-worker delay models for artificial straggling; ``None``
        entries (or ``None`` overall) disable injection for those workers.
    seed:
        Base seed from which per-worker seeds are derived.
    fault_schedule:
        Optional realised :class:`~repro.runtime.faults.FaultSchedule`;
        each worker receives its pre-drawn injected-sleep column. Mutually
        exclusive with ``straggle_delays``.
    fault_mode:
        ``"mute"`` or ``"respawn"`` — how workers realise vacant cells (see
        :data:`~repro.runtime.faults.FAULT_MODES`).
    """
    from repro.runtime.faults import validate_fault_mode

    validate_fault_mode(fault_mode)
    if straggle_delays is not None and len(straggle_delays) != plan.num_workers:
        raise RuntimeBackendError(
            "straggle_delays must have one entry per worker "
            f"({len(straggle_delays)} != {plan.num_workers})"
        )
    if fault_schedule is not None:
        if straggle_delays is not None:
            raise RuntimeBackendError(
                "fault_schedule and straggle_delays are mutually exclusive: "
                "the schedule already realises every injected sleep"
            )
        if fault_schedule.num_workers != plan.num_workers:
            raise RuntimeBackendError(
                "the fault schedule covers "
                f"{fault_schedule.num_workers} workers but the plan has "
                f"{plan.num_workers}"
            )
    mode = _encoding_mode_for_plan(plan)
    code = plan.metadata.get("code")
    tasks: List[WorkerTask] = []
    for worker in range(plan.num_workers):
        units = plan.worker_units(worker)
        unit_features: List[np.ndarray] = []
        unit_labels: List[np.ndarray] = []
        for unit in units:
            if unit_spec is None:
                example_indices = np.array([unit], dtype=int)
            else:
                example_indices = unit_spec.batch_indices(int(unit))
            features, labels = dataset.rows(example_indices)
            unit_features.append(features)
            unit_labels.append(labels)
        coefficients = None
        if mode == "linear":
            assert isinstance(code, LinearGradientCode)
            support = code.support(worker)
            # Align coefficients with the worker's unit order.
            coefficient_map = {
                int(unit): float(code.encoding_matrix[worker, unit]) for unit in support
            }
            coefficients = np.array(
                [coefficient_map[int(unit)] for unit in units], dtype=float
            )
        tasks.append(
            WorkerTask(
                worker_id=worker,
                model=model,
                unit_features=unit_features,
                unit_labels=unit_labels,
                encoding_mode=mode,
                coefficients=coefficients,
                straggle_delay=None
                if straggle_delays is None
                else straggle_delays[worker],
                seed=None if seed is None else seed + worker,
                fault_delays=None
                if fault_schedule is None
                else fault_schedule.worker_delays(worker),
                exit_when_absent=fault_mode == "respawn",
            )
        )
    return tasks
