"""Real parallel execution of distributed GD with ``multiprocessing`` workers.

This package exercises the same schemes as the simulator on a genuinely
parallel substrate: one OS process per worker, an mpi4py-style communicator
built on queues, asynchronous collection at the master, and optional
straggler injection (artificial sleeps drawn from the same delay models the
simulator uses). It substitutes for the paper's MPI4py-over-EC2 deployment;
the master/worker protocol is written against the small
:class:`~repro.runtime.comm.Communicator` interface, so an actual MPI backend
can be slotted in without touching the scheme logic.
"""

from repro.runtime.comm import Communicator, InProcessCommunicator, QueueChannel
from repro.runtime.faults import (
    FAULT_MODES,
    FaultSchedule,
    build_fault_schedule,
    ensure_injectable,
    is_injectable,
    plan_example_loads,
    validate_fault_mode,
)
from repro.runtime.tasks import WorkerTask, build_worker_tasks
from repro.runtime.job import DistributedRunResult, run_distributed_job

__all__ = [
    "Communicator",
    "InProcessCommunicator",
    "QueueChannel",
    "WorkerTask",
    "build_worker_tasks",
    "DistributedRunResult",
    "run_distributed_job",
    "FAULT_MODES",
    "FaultSchedule",
    "build_fault_schedule",
    "ensure_injectable",
    "is_injectable",
    "plan_example_loads",
    "validate_fault_mode",
]
