"""A minimal mpi4py-flavoured communicator abstraction.

The mpi4py tutorial distinguishes pickle-based lowercase methods
(``send``/``recv``) from buffer-based uppercase ones; here the lowercase
subset is implemented over :class:`multiprocessing.Queue` (pickling NumPy
arrays is adequate at the message sizes the runtime targets), and the
interface is small enough that a genuine ``MPI.COMM_WORLD`` adapter can be
written without changing the master or worker code.

Topology: a star. The master owns one downlink queue per worker and a single
shared uplink queue into which every worker pushes ``(worker_id, payload)``
tuples; this mirrors the paper's master collecting results from whichever
worker finishes first.
"""

from __future__ import annotations

import abc
import multiprocessing as mp
import queue as queue_module
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.exceptions import RuntimeBackendError

__all__ = ["Communicator", "QueueChannel", "InProcessCommunicator"]


class Communicator(abc.ABC):
    """Master-side view of the star topology."""

    @property
    @abc.abstractmethod
    def num_workers(self) -> int:
        """Number of workers attached to this communicator."""

    @abc.abstractmethod
    def send_to_worker(self, worker: int, payload: Any) -> None:
        """Send ``payload`` to worker ``worker`` (non-blocking)."""

    @abc.abstractmethod
    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every worker."""

    @abc.abstractmethod
    def receive_any(self, timeout: Optional[float] = None) -> Tuple[int, Any]:
        """Block until a message from *any* worker arrives; return ``(worker, payload)``."""


@dataclass
class QueueChannel:
    """Worker-side endpoints: its private downlink plus the shared uplink."""

    worker_id: int
    downlink: "mp.Queue"
    uplink: "mp.Queue"

    def receive(self, timeout: Optional[float] = None) -> Any:
        """Blocking receive of the next payload from the master."""
        try:
            return self.downlink.get(timeout=timeout)
        except queue_module.Empty as error:
            raise RuntimeBackendError(
                f"worker {self.worker_id} timed out waiting for the master"
            ) from error

    def poll(self) -> Any:
        """Non-blocking receive: the next payload, or ``None`` when idle.

        Lets a worker straggling through an injected sleep notice a newer
        broadcast and abandon the stale iteration, the way the simulator's
        round barrier discards unfinished straggler work.
        """
        try:
            return self.downlink.get_nowait()
        except queue_module.Empty:
            return None

    def send(self, payload: Any) -> None:
        """Send a payload to the master."""
        self.uplink.put((self.worker_id, payload))


class InProcessCommunicator(Communicator):
    """Queue-backed star communicator for ``multiprocessing`` workers.

    The master constructs it, passes :meth:`worker_channel` objects to the
    worker processes, and then uses :meth:`broadcast` / :meth:`receive_any`.
    """

    def __init__(self, num_workers: int, *, context: Optional[Any] = None) -> None:
        if num_workers < 1:
            raise RuntimeBackendError("a communicator needs at least one worker")
        ctx = context if context is not None else mp.get_context()
        self._downlinks: List[mp.Queue] = [ctx.Queue() for _ in range(num_workers)]
        self._uplink: mp.Queue = ctx.Queue()

    @property
    def num_workers(self) -> int:
        return len(self._downlinks)

    def worker_channel(self, worker: int) -> QueueChannel:
        """Endpoints to hand to worker ``worker``'s process."""
        self._check_worker(worker)
        return QueueChannel(
            worker_id=worker, downlink=self._downlinks[worker], uplink=self._uplink
        )

    def send_to_worker(self, worker: int, payload: Any) -> None:
        self._check_worker(worker)
        self._downlinks[worker].put(payload)

    def broadcast(self, payload: Any) -> None:
        for downlink in self._downlinks:
            downlink.put(payload)

    def receive_any(self, timeout: Optional[float] = None) -> Tuple[int, Any]:
        try:
            worker, payload = self._uplink.get(timeout=timeout)
        except queue_module.Empty as error:
            raise RuntimeBackendError(
                "the master timed out waiting for worker messages"
            ) from error
        return int(worker), payload

    def drain(self) -> int:
        """Discard any messages still sitting in the uplink; return the count."""
        drained = 0
        while True:
            try:
                self._uplink.get_nowait()
                drained += 1
            except queue_module.Empty:
                return drained

    def drain_worker(self, worker: int) -> int:
        """Discard messages queued on one worker's downlink; return the count.

        The master calls this before respawning a killed worker slot: the
        dead process left every broadcast since its kill sitting in the
        queue, and a fresh replacement must start from the *next* broadcast
        rather than sleep through a backlog of stale iterations.
        """
        self._check_worker(worker)
        drained = 0
        while True:
            try:
                self._downlinks[worker].get_nowait()
                drained += 1
            except queue_module.Empty:
                return drained

    def _check_worker(self, worker: int) -> None:
        if not (0 <= worker < self.num_workers):
            raise RuntimeBackendError(
                f"worker index must lie in [0, {self.num_workers}), got {worker}"
            )
