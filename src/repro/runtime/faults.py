"""Fault injection: replaying simulated straggler scenarios on real workers.

The simulators model stragglers as *delay models* and time variation as
*worker processes* (:mod:`repro.stragglers.dynamics`) realised into a
per-(iteration, worker) timeline by
:meth:`repro.cluster.dynamic.DynamicClusterSpec.materialize`. This module
maps that same realisation onto the multiprocessing runtime: a
:class:`FaultSchedule` is a seed-deterministic ``(iterations, workers)``
matrix of **injected sleeps** — one pre-drawn delay per task — with
``inf`` marking the cells where the worker slot is vacant (preempted,
churned out, or not yet joined). Worker processes sleep their cell's value
before computing each iteration; vacant cells make the worker either stay
silent (``fault_mode="mute"``) or exit so the master kills-and-respawns it
when the slot comes back (``fault_mode="respawn"``) — see
:func:`repro.runtime.job.run_distributed_job`.

Sim-to-real mapping
-------------------
Each active cell's sleep is drawn as::

    compute_model.sample(worker_examples) [+ communication.sample(message_size)]

which is exactly the arrival-time composition the timing engines use for a
non-serialised master link: a worker's message becomes available at
``compute_time + transfer_time``. Injecting the transfer draw as extra
sleep (the default) emulates the calibrated network on a loopback queue
whose real transfer cost is negligible; pass
``include_communication=False`` to inject pure computation straggling.
Master-side link serialisation is **not** injectable — queueing at the
master cannot be emulated by per-worker sleeps — so cross-validation
scenarios run with ``serialize_master_link=False`` (the regime of the
paper's EC2 experiments).

Determinism contract
--------------------
:func:`build_fault_schedule` consumes the generator exactly like the
simulation engines' scenario path: materialising a
:class:`~repro.cluster.dynamic.DynamicClusterSpec` draws the spec's single
dynamics-seed ``integers`` draw (or nothing when the spec pins a scenario
``seed``), after which the sleep matrix is filled row-major —
iteration-major, worker-minor — with vacant cells consuming **no** draws
(the :class:`~repro.stragglers.dynamics.UnavailableDelay` contract). The
schedule is therefore bit-reproducible from ``(spec, num_iterations, rng
state)``, which is what lets the cross-validation layer replay the
*identical* scenario (same regimes, same kills) through the simulators and
compare only the realised completion times.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.cluster.dynamic import ClusterTimeline, DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.datasets.batching import BatchSpec
from repro.exceptions import ConfigurationError
from repro.schemes.base import ExecutionPlan
from repro.stragglers.dynamics import UnavailableDelay, registered_process_name
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "FAULT_MODES",
    "FaultSchedule",
    "build_fault_schedule",
    "ensure_injectable",
    "is_injectable",
    "plan_example_loads",
    "validate_fault_mode",
]

#: How a real worker realises a vacant schedule cell. ``"mute"`` keeps the
#: process alive but silent for the vacancy (cheapest, no spawn cost inside
#: the measured iterations); ``"respawn"`` makes the process exit at its
#: first vacant cell and the master spawn a fresh replacement — which
#: reloads the worker's data partition, the real analogue of the
#: simulator's recovery lag — when the slot is scheduled up again.
FAULT_MODES = ("mute", "respawn")


def validate_fault_mode(fault_mode: str) -> str:
    """Validate a ``fault_mode`` knob value, returning it unchanged."""
    if fault_mode not in FAULT_MODES:
        raise ConfigurationError(
            f"unknown fault mode {fault_mode!r}; expected one of {list(FAULT_MODES)}"
        )
    return fault_mode


@dataclass(frozen=True)
class FaultSchedule:
    """A realised fault-injection scenario for one distributed run.

    Attributes
    ----------
    delays:
        ``(iterations, workers)`` float matrix of injected sleeps in
        seconds; ``inf`` marks vacant cells (the worker does not answer that
        iteration). Finite entries must be non-negative.
    """

    delays: np.ndarray

    def __post_init__(self) -> None:
        delays = np.asarray(self.delays, dtype=float)
        if delays.ndim != 2:
            raise ConfigurationError(
                f"delays must be an (iterations, workers) matrix, got "
                f"{delays.ndim} dimension(s)"
            )
        if delays.shape[0] < 1 or delays.shape[1] < 1:
            raise ConfigurationError(
                f"delays must cover at least one iteration and one worker, "
                f"got shape {delays.shape}"
            )
        finite = delays[np.isfinite(delays)]
        if np.any(np.isnan(delays)) or np.any(finite < 0.0):
            raise ConfigurationError(
                "injected delays must be non-negative seconds (inf marks a "
                "vacant cell); got NaN or negative entries"
            )
        delays.setflags(write=False)
        object.__setattr__(self, "delays", delays)

    # ------------------------------------------------------------------ #
    @property
    def num_iterations(self) -> int:
        """Number of scheduled iterations."""
        return int(self.delays.shape[0])

    @property
    def num_workers(self) -> int:
        """Number of worker slots."""
        return int(self.delays.shape[1])

    @property
    def availability(self) -> np.ndarray:
        """Boolean ``(iterations, workers)`` matrix of non-vacant cells."""
        return np.isfinite(self.delays)

    @property
    def active_counts(self) -> np.ndarray:
        """Scheduled-active worker count per iteration."""
        return self.availability.sum(axis=1)

    def worker_delays(self, worker: int) -> np.ndarray:
        """Worker ``worker``'s per-iteration injected-sleep column."""
        if not 0 <= worker < self.num_workers:
            raise ConfigurationError(
                f"worker index must lie in [0, {self.num_workers}), got {worker}"
            )
        return self.delays[:, worker]

    def is_absent(self, iteration: int, worker: int) -> bool:
        """Whether the cell ``(iteration, worker)`` is vacant."""
        return not bool(np.isfinite(self.delays[iteration, worker]))

    def fingerprint(self) -> str:
        """SHA-256 digest of the schedule's exact bits.

        Golden-trace fixtures pin this digest: any drift of the injection
        RNG contract (draw order, materialisation semantics, model
        re-parameterisation) changes the digest even when summary statistics
        stay close.
        """
        digest = hashlib.sha256()
        digest.update(str(self.delays.shape).encode("ascii"))
        digest.update(np.ascontiguousarray(self.delays).tobytes())
        return digest.hexdigest()


# --------------------------------------------------------------------------- #
def is_injectable(spec: Union[ClusterSpec, DynamicClusterSpec]) -> bool:
    """Whether :func:`build_fault_schedule` can realise ``spec``."""
    try:
        ensure_injectable(spec)
    except ConfigurationError:
        return False
    return True


def ensure_injectable(spec: Union[ClusterSpec, DynamicClusterSpec]) -> None:
    """Raise a typed error when ``spec``'s dynamics cannot be injected.

    Stationary :class:`~repro.cluster.spec.ClusterSpec`\\ s are always
    injectable (each worker sleeps draws from its own delay model). A
    :class:`~repro.cluster.dynamic.DynamicClusterSpec` is injectable when
    every worker process is an instance of a **registered** process class —
    the same registry that ``process_from_config`` resolves for the
    simulators — because only then does the real run replay the scenario
    with semantics the simulators can reproduce. Scripted churn events and
    ``initially_absent`` slots are always injectable.

    Raises
    ------
    ConfigurationError
        Naming the first unsupported process kind.
    """
    if isinstance(spec, ClusterSpec):
        return
    if not isinstance(spec, DynamicClusterSpec):
        raise ConfigurationError(
            "fault injection needs a ClusterSpec or DynamicClusterSpec, got "
            f"{type(spec).__name__}"
        )
    processes = spec.processes
    if processes is None:
        return
    for worker, process in enumerate(processes):
        if process is None:
            continue
        if registered_process_name(process) is None:
            raise ConfigurationError(
                f"worker {worker}'s process kind {type(process).__name__!r} "
                "is not a registered worker process, so the multiprocess "
                "runtime cannot inject it; register it with "
                "@register_process (simulation resolves the same registry "
                "via process_from_config) or run the spec on a simulation "
                "backend"
            )


def plan_example_loads(
    plan: ExecutionPlan, unit_spec: Optional[BatchSpec] = None
) -> np.ndarray:
    """Per-worker training-example counts implied by a frozen plan.

    The injected compute-delay draws use these loads, mirroring the
    simulators (a worker's completion-time distribution is parameterised by
    the number of examples it processes per iteration). ``unit_spec`` maps
    units to example batches; ``None`` means one example per unit.
    """
    loads = np.zeros(plan.num_workers, dtype=int)
    for worker in range(plan.num_workers):
        units = plan.worker_units(worker)
        if unit_spec is None:
            loads[worker] = len(units)
        else:
            loads[worker] = sum(
                int(unit_spec.batch_indices(int(unit)).size) for unit in units
            )
    return loads


def _timeline_models(
    spec: Union[ClusterSpec, DynamicClusterSpec],
    num_iterations: int,
    rng: RandomState,
) -> List[List[object]]:
    """The per-(iteration, worker) effective delay models of the scenario."""
    if isinstance(spec, DynamicClusterSpec):
        timeline: ClusterTimeline = spec.materialize(num_iterations, rng=rng)
        return [list(row) for row in timeline.models]
    row = [worker.compute for worker in spec.workers]
    return [list(row) for _ in range(num_iterations)]


def build_fault_schedule(
    spec: Union[ClusterSpec, DynamicClusterSpec],
    num_iterations: int,
    *,
    loads: Sequence[int],
    message_sizes: Optional[Sequence[float]] = None,
    include_communication: bool = True,
    rng: RandomState = None,
) -> FaultSchedule:
    """Realise ``spec`` into an injected-sleep schedule for real workers.

    Parameters
    ----------
    spec:
        The scenario: a stationary cluster (every iteration draws from the
        workers' own delay models) or a dynamic one (the materialised
        timeline decides each cell's effective model; vacant cells become
        ``inf``).
    num_iterations:
        Job horizon; one schedule row per iteration.
    loads:
        Per-worker example counts (see :func:`plan_example_loads`); workers
        with zero examples draw no compute delay.
    message_sizes:
        Per-worker message sizes in gradient-units, enabling the
        communication component of each sleep; ``None`` (or
        ``include_communication=False``) injects pure compute delay.
    include_communication:
        Whether to add a transfer-time draw from the cluster's
        communication model to every active cell (the default — see the
        module docstring's sim-to-real mapping).
    rng:
        Seed-like value or generator; consumed exactly as documented in the
        module's determinism contract.
    """
    check_positive_int(num_iterations, "num_iterations")
    if len(loads) != spec.num_workers:
        raise ConfigurationError(
            f"loads must have one entry per worker "
            f"({len(loads)} != {spec.num_workers})"
        )
    if message_sizes is not None and len(message_sizes) != spec.num_workers:
        raise ConfigurationError(
            f"message_sizes must have one entry per worker "
            f"({len(message_sizes)} != {spec.num_workers})"
        )
    ensure_injectable(spec)
    generator = as_generator(rng)
    models = _timeline_models(spec, num_iterations, generator)
    communication = spec.communication if include_communication else None
    if communication is not None and message_sizes is None:
        raise ConfigurationError(
            "include_communication=True needs per-worker message_sizes "
            "(pass the plan's message_sizes, or disable the communication "
            "component)"
        )

    delays = np.zeros((num_iterations, spec.num_workers), dtype=float)
    for t in range(num_iterations):
        row = models[t]
        for worker in range(spec.num_workers):
            model = row[worker]
            if isinstance(model, UnavailableDelay):
                # Vacant slot: no draw on any path (the UnavailableDelay
                # contract), exactly like the simulation engines.
                delays[t, worker] = np.inf
                continue
            value = 0.0
            load = int(loads[worker])
            if load > 0:
                value += float(model.sample(load, rng=generator))
            if communication is not None:
                assert message_sizes is not None
                value += float(
                    communication.sample(float(message_sizes[worker]), rng=generator)
                )
            delays[t, worker] = value
    return FaultSchedule(delays=delays)
