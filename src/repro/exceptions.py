"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so callers can catch library-specific failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``IndexError``, ...) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "AnalyticIntractableError",
    "AssignmentError",
    "DecodingError",
    "CoverageError",
    "SimulationError",
    "RuntimeBackendError",
    "AllocationError",
    "DataError",
    "FingerprintError",
    "ServiceError",
    "BudgetExceededError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid combination of parameters was supplied.

    Raised eagerly, at object-construction time whenever possible, so that a
    misconfigured experiment fails before any expensive work is performed.

    ``ValueError`` is kept as a base for backwards compatibility: the
    validation helpers in :mod:`repro.utils.validation` (and many
    constructor checks) historically raised bare ``ValueError``, so existing
    ``except ValueError`` call sites keep working while new code can catch
    the library hierarchy precisely.
    """


class AnalyticIntractableError(ConfigurationError):
    """No closed-form runtime model covers the requested configuration.

    Raised by :meth:`repro.schemes.base.Scheme.analytic_runtime` (and the
    :class:`~repro.api.backends.AnalyticBackend` built on it) when a scheme,
    delay model, communication model, or link mode falls outside the regime
    the closed-form analysis covers — e.g. Pareto-tailed workers, a custom
    communication model, or a serialised master link combined with a
    heterogeneous cluster. The message names the missing piece so callers can
    either switch to a simulation backend or restrict the sweep grid.
    """


class DataError(ReproError, ValueError):
    """A dataset, batch specification, or example index set is invalid.

    Like :class:`ConfigurationError`, keeps ``ValueError`` as a base so the
    shape/label checks in :mod:`repro.gradients` that historically raised
    bare ``ValueError`` stay catchable the old way.
    """


class AssignmentError(ReproError):
    """A data-to-worker assignment violates its scheme's invariants.

    Examples: a worker exceeding the declared computational load ``r``, an
    example not assigned to any worker, or an assignment referencing an
    out-of-range example index.
    """


class DecodingError(ReproError):
    """The master could not reconstruct the full gradient.

    Raised by coded schemes (cyclic repetition, MDS) when the set of received
    worker messages is not decodable, and by exact-recovery checks when the
    reconstructed gradient differs from the true aggregate beyond tolerance.
    """


class CoverageError(ReproError):
    """Coverage of all data batches/examples can never be achieved.

    Raised when the union of all workers' assigned examples does not equal
    the full dataset, so no amount of waiting lets the master finish.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class RuntimeBackendError(ReproError):
    """The real (multiprocessing) runtime failed to execute a job."""


class AllocationError(ReproError):
    """The heterogeneous load-allocation solver could not produce loads."""


class FingerprintError(ConfigurationError):
    """A job spec (or part of one) has no canonical content fingerprint.

    Raised by :meth:`repro.api.spec.JobSpec.fingerprint` when a spec carries
    state that cannot be canonically serialised — a live
    :class:`numpy.random.Generator` seed (inherently stateful), a custom
    runner closure, or an object whose constructor state is not recoverable.
    The result cache treats such specs as uncacheable and recomputes them.
    """


class ServiceError(ReproError):
    """The sweep service could not process a request."""


class BudgetExceededError(ServiceError):
    """A sweep submission exceeds the service's per-request cell budget.

    Raised *before* any cell executes, so an oversized request costs
    nothing; the message names both the request's cell count and the
    configured budget so callers can split or shrink the grid.
    """
