"""Dynamic (non-stationary) cluster specifications.

A :class:`DynamicClusterSpec` wraps a stationary
:class:`~repro.cluster.spec.ClusterSpec` with two kinds of time variation:

* **worker processes** (:mod:`repro.stragglers.dynamics`) — per-worker
  delay-model evolution over iterations (Markov regime switching, drift,
  random spot preemption), and
* a **churn schedule** of explicit :class:`ChurnEvent`\\ s — scripted
  join/leave/preempt events that toggle worker slots on and off at known
  iterations (elastic scale-out, planned decommissions, injected failures).

Calling :meth:`DynamicClusterSpec.materialize` realises both into a
:class:`ClusterTimeline`: one effective delay model per (iteration, worker)
cell, with vacant slots holding
:class:`~repro.stragglers.dynamics.UnavailableDelay`. Both timing engines
consume the timeline — the loop engine through per-iteration
:meth:`ClusterTimeline.cluster_at` snapshots, the vectorized engine through
the model matrix directly — so their bit-identity guarantee extends to
dynamic clusters.

RNG contract
------------
Placement is planned first (against the *base* cluster), then
``materialize`` derives the dynamics generator, then the per-iteration
completion-time draws follow. With the default ``seed=None`` the dynamics
generator is seeded by **exactly one** ``integers`` draw from the job's
generator — the whole timeline is deterministic under the job seed, and both
engines consume that single draw at the same point of the stream. Passing an
explicit ``seed`` pins the churn/regime realisation independently of the job
seed (so Monte-Carlo trials vary the completion-time draws *within* one
fixed scenario) and consumes nothing from the job stream.

The closed-form :class:`~repro.api.backends.AnalyticBackend` covers only
stationary clusters; every analytic entry point raises
:class:`~repro.exceptions.AnalyticIntractableError` for a dynamic spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.spec import ClusterSpec, WorkerSpec
from repro.exceptions import AnalyticIntractableError, ConfigurationError
from repro.stragglers.base import DelayModel
from repro.stragglers.communication import CommunicationModel
from repro.stragglers.dynamics import (
    UNAVAILABLE,
    ProcessLike,
    UnavailableDelay,
    WorkerProcess,
    memoize_by_id,
    process_from_config,
)
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["ChurnEvent", "ClusterTimeline", "DynamicClusterSpec"]

_EVENT_KINDS = ("join", "leave", "preempt")


@dataclass(frozen=True)
class ChurnEvent:
    """One scripted membership change of a worker slot.

    Attributes
    ----------
    kind:
        ``"leave"`` — the slot is vacant from ``iteration`` on (until a later
        ``"join"``); ``"join"`` — the slot is (back) up from ``iteration``
        on; ``"preempt"`` — the slot is vacant for ``recovery`` iterations
        starting at ``iteration``, then the replacement automatically
        rejoins (spot kill + reload lag).
    worker:
        Index of the affected worker slot.
    iteration:
        0-based iteration at which the event takes effect.
    recovery:
        For ``"preempt"`` only: number of vacant iterations (``>= 1``).
    """

    kind: str
    worker: int
    iteration: int
    recovery: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise ConfigurationError(
                f"event kind must be one of {list(_EVENT_KINDS)}, got "
                f"{self.kind!r}"
            )
        if self.worker < 0:
            raise ConfigurationError(
                f"event worker index must be >= 0, got {self.worker}"
            )
        if self.iteration < 0:
            raise ConfigurationError(
                f"event iteration must be >= 0, got {self.iteration}"
            )
        if self.kind == "preempt":
            check_positive_int(self.recovery, "recovery")
        elif self.recovery != 0:
            raise ConfigurationError(
                f"recovery applies to 'preempt' events only, got "
                f"kind={self.kind!r} with recovery={self.recovery}"
            )

    @classmethod
    def from_config(cls, config: Mapping[str, object]) -> "ChurnEvent":
        """Build an event from a ``{"kind": ..., "worker": ..., ...}`` mapping."""
        options = dict(config)
        unknown = sorted(set(options) - {"kind", "worker", "iteration", "recovery"})
        if unknown:
            raise ConfigurationError(
                f"churn event does not accept the key(s) {unknown}"
            )
        try:
            return cls(
                kind=str(options["kind"]),
                worker=int(options["worker"]),
                iteration=int(options["iteration"]),
                recovery=int(options.get("recovery", 0)),
            )
        except KeyError as error:
            raise ConfigurationError(
                f"churn event config is missing the {error.args[0]!r} key"
            ) from None


class ClusterTimeline:
    """A materialised dynamic cluster: one delay model per (iteration, worker).

    Produced by :meth:`DynamicClusterSpec.materialize`; consumed by both
    timing engines. ``models[t][w]`` is worker ``w``'s effective delay model
    at iteration ``t`` (:data:`~repro.stragglers.dynamics.UNAVAILABLE`-style
    models mark vacant slots); ``availability`` is the matching boolean
    matrix.
    """

    def __init__(
        self,
        base: ClusterSpec,
        models: Sequence[Sequence[DelayModel]],
        availability: np.ndarray,
    ) -> None:
        self.base = base
        self.models: List[List[DelayModel]] = [list(row) for row in models]
        self.availability = np.asarray(availability, dtype=bool)
        if self.availability.shape != (len(self.models), base.num_workers):
            raise ConfigurationError(
                "availability must be an (iterations, workers) matrix matching "
                "the model grid"
            )
        self._worker_cache: Dict[Tuple[int, int], WorkerSpec] = {}

    @property
    def num_iterations(self) -> int:
        return len(self.models)

    @property
    def num_workers(self) -> int:
        return self.base.num_workers

    def cluster_at(self, iteration: int) -> ClusterSpec:
        """The effective stationary cluster snapshot of one iteration."""
        row = self.models[iteration]
        workers = tuple(
            self._worker_spec(index, model) for index, model in enumerate(row)
        )
        return ClusterSpec(workers=workers, communication=self.base.communication)

    def _worker_spec(self, index: int, model: DelayModel) -> WorkerSpec:
        # Model instances repeat heavily across iterations (a Markov worker
        # alternates between two models); cache the frozen WorkerSpec per
        # (slot, model object) so the loop engine's per-iteration snapshots
        # stay cheap.
        # reprolint: allow[CACHE002] reason=intra-process memoization per live model object; identity IS the key semantic here, nothing persists or crosses processes
        key = (index, id(model))
        spec = self._worker_cache.get(key)
        if spec is None:
            spec = WorkerSpec(compute=model, name=self.base.workers[index].name)
            self._worker_cache[key] = spec
        return spec


@dataclass(frozen=True)
class DynamicClusterSpec:
    """A stationary base cluster plus time variation.

    Attributes
    ----------
    base:
        The nominal :class:`~repro.cluster.spec.ClusterSpec`. Placement (and
        heterogeneous load allocation) is planned against it — data is loaded
        onto the workers before the iterations start, as in the paper — and
        the dynamics then perturb execution.
    dynamics:
        ``None``, one process applied to every worker, or a mapping from
        worker index to a per-worker process. Each entry may be a
        :class:`~repro.stragglers.dynamics.WorkerProcess` instance, a
        registered process name (``"markov"``), or a registry-style config
        mapping (``{"name": "markov", "slowdown": 8.0}``).
    events:
        Scripted :class:`ChurnEvent` membership changes (instances or config
        mappings), applied in iteration order on top of ``initially_absent``.
    initially_absent:
        Worker slots that start the job vacant (elastic scale-out: a later
        ``"join"`` event brings them up).
    seed:
        ``None`` (default) derives the dynamics generator from the job's
        generator with exactly one draw; an integer pins the scenario
        independently of the job seed (see the module docstring).
    """

    base: ClusterSpec
    dynamics: Union[
        None, ProcessLike, Mapping[int, ProcessLike]
    ] = None
    events: Sequence[Union[ChurnEvent, Mapping[str, object]]] = ()
    initially_absent: Sequence[int] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.base, ClusterSpec):
            raise ConfigurationError(
                f"base must be a ClusterSpec, got {type(self.base).__name__}"
            )
        object.__setattr__(self, "_processes", self._resolve_dynamics())
        events = tuple(
            event
            if isinstance(event, ChurnEvent)
            else ChurnEvent.from_config(event)
            for event in self.events
        )
        for event in events:
            if event.worker >= self.base.num_workers:
                raise ConfigurationError(
                    f"event targets worker {event.worker} but the cluster has "
                    f"{self.base.num_workers} workers"
                )
        object.__setattr__(self, "events", events)
        absent = tuple(sorted({int(index) for index in self.initially_absent}))
        for index in absent:
            if not 0 <= index < self.base.num_workers:
                raise ConfigurationError(
                    f"initially_absent index {index} is out of range for a "
                    f"{self.base.num_workers}-worker cluster"
                )
        object.__setattr__(self, "initially_absent", absent)
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        if (
            self._processes is None
            and not events
            and not absent
        ):
            raise ConfigurationError(
                "a DynamicClusterSpec needs at least one source of time "
                "variation (dynamics, events, or initially_absent); use the "
                "base ClusterSpec directly for a stationary cluster"
            )

    def _resolve_dynamics(self) -> Optional[Tuple[Optional[WorkerProcess], ...]]:
        """Per-worker process tuple (or ``None`` when fully stationary)."""
        dynamics = self.dynamics
        if dynamics is None:
            return None
        num_workers = self.base.num_workers
        if isinstance(dynamics, Mapping) and "name" not in dynamics:
            processes: List[Optional[WorkerProcess]] = [None] * num_workers
            for key, value in dynamics.items():
                try:
                    index = int(key)
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        "a per-worker dynamics mapping must be keyed by "
                        f"worker index (or be a config with a 'name' key), "
                        f"got key {key!r}"
                    ) from None
                if not 0 <= index < num_workers:
                    raise ConfigurationError(
                        f"dynamics target worker {index} but the cluster has "
                        f"{num_workers} workers"
                    )
                processes[index] = process_from_config(value)
            return tuple(processes)
        process = process_from_config(dynamics)
        return tuple([process] * num_workers)

    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """Number of worker slots (vacant slots included)."""
        return self.base.num_workers

    @property
    def processes(self) -> Optional[Tuple[Optional[WorkerProcess], ...]]:
        """The resolved per-worker processes (``None`` when fully scripted).

        Entries are ``None`` for workers without dynamics. The tuple is the
        same object :meth:`materialize` consumes, so callers (e.g. the
        fault-injection layer's injectability check) classify exactly the
        processes that will drive the timeline.
        """
        return self._processes  # type: ignore[attr-defined]

    @property
    def communication(self) -> CommunicationModel:
        """The master's communication model (shared with the base cluster)."""
        return self.base.communication

    # -- analytic entry points: fail with the typed intractability error -- #
    def delay_models(self):
        raise AnalyticIntractableError(
            "the cluster is non-stationary (DynamicClusterSpec): per-worker "
            "delay models vary across iterations, so no single stationary "
            "model list exists; run the job on a simulation backend instead"
        )

    def straggling_parameters(self):
        self.delay_models()

    def shift_parameters(self):
        self.delay_models()

    # ------------------------------------------------------------------ #
    def availability(self, num_iterations: int) -> np.ndarray:
        """The ``(num_iterations, num_workers)`` boolean membership matrix.

        Only the scripted schedule (``initially_absent`` + ``events``) is
        reflected here; random preemptions from a
        :class:`~repro.stragglers.dynamics.PreemptionModel` are part of
        :meth:`materialize`'s realised timeline.
        """
        check_positive_int(num_iterations, "num_iterations")
        up = np.ones((num_iterations, self.base.num_workers), dtype=bool)
        up[:, list(self.initially_absent)] = False
        for event in sorted(self.events, key=lambda event: event.iteration):
            if event.iteration >= num_iterations:
                continue
            if event.kind == "leave":
                up[event.iteration :, event.worker] = False
            elif event.kind == "join":
                up[event.iteration :, event.worker] = True
            else:  # preempt: vacant window, then the replacement rejoins
                stop = min(event.iteration + event.recovery, num_iterations)
                up[event.iteration : stop, event.worker] = False
        return up

    def materialize(
        self, num_iterations: int, rng: RandomState = None
    ) -> ClusterTimeline:
        """Realise the per-(iteration, worker) delay-model timeline.

        Consumes exactly one ``integers`` draw from ``rng`` when the spec has
        no explicit ``seed`` (and nothing otherwise) — the contract both
        timing engines rely on to stay bit-identical.
        """
        check_positive_int(num_iterations, "num_iterations")
        if self.seed is None:
            generator = as_generator(rng)
            dynamics_seed = int(generator.integers(0, 2**63))
        else:
            dynamics_seed = self.seed
        dynamics_rng = np.random.default_rng(dynamics_seed)

        up = self.availability(num_iterations)
        processes = self._processes
        availability = up.copy()
        is_down = memoize_by_id(lambda model: isinstance(model, UnavailableDelay))
        columns: List[List[DelayModel]] = []
        for worker in range(self.base.num_workers):
            base_model = self.base.workers[worker].compute
            process = processes[worker] if processes is not None else None
            if process is None:
                column = [base_model] * num_iterations
            else:
                # The process draws from the dynamics generator regardless of
                # the scripted schedule, so consumption is schedule-free.
                column = process.timeline(base_model, num_iterations, dynamics_rng)
                if len(column) != num_iterations:
                    raise ConfigurationError(
                        f"process {process!r} returned {len(column)} models "
                        f"for a {num_iterations}-iteration timeline"
                    )
                if process.can_remove_workers:
                    availability[:, worker] &= np.fromiter(
                        (not is_down(model) for model in column),
                        dtype=bool,
                        count=num_iterations,
                    )
            columns.append(column)

        models = [list(row) for row in zip(*columns)]
        for t, worker in np.argwhere(~up):
            models[t][worker] = UNAVAILABLE
        return ClusterTimeline(
            base=self.base, models=models, availability=availability
        )
