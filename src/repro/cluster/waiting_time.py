"""Monte-Carlo estimators of the waiting times in Section IV of the paper.

Two quantities appear in Theorem 2:

* ``T-hat(s)`` (paper Eq. 18) — the first time the workers that have finished
  account for at least ``s`` partial gradients (with repetitions);
* the coverage time ``T`` (paper Eq. 16) — the first time the *union* of the
  finished workers' example sets equals the whole dataset.

Both are estimated by sampling per-worker completion times from the cluster's
delay models. The samplers are vectorised over trials where the structure
allows it.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.exceptions import AllocationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "sample_completion_times",
    "sample_threshold_time",
    "estimate_expected_threshold_time",
    "sample_coverage_time",
    "estimate_coverage_time",
]

AssignmentSampler = Callable[[np.random.Generator], Sequence[np.ndarray]]
"""Draws one realisation of the per-worker example-index sets."""


def sample_completion_times(
    cluster: ClusterSpec,
    loads: np.ndarray,
    rng: RandomState = None,
    num_trials: int = 1,
) -> np.ndarray:
    """Sample a ``(num_trials, n)`` matrix of per-worker completion times.

    Workers with zero load never finish (time ``+inf``) since they have
    nothing to report.
    """
    loads = np.asarray(loads, dtype=int)
    if loads.shape[0] != cluster.num_workers:
        raise AllocationError(
            f"loads has length {loads.shape[0]} but the cluster has "
            f"{cluster.num_workers} workers"
        )
    check_positive_int(num_trials, "num_trials")
    generator = as_generator(rng)
    times = np.full((num_trials, cluster.num_workers), np.inf)
    for i, model in enumerate(cluster.delay_models()):
        if loads[i] > 0:
            times[:, i] = model.sample(int(loads[i]), rng=generator, size=num_trials)
    return times


def sample_threshold_time(
    cluster: ClusterSpec,
    loads: np.ndarray,
    target: int,
    rng: RandomState = None,
    num_trials: int = 1,
) -> np.ndarray:
    """Sample ``T-hat(target)``: time until finished workers account for ``target`` results.

    Returns ``+inf`` for trials in which even all workers together hold fewer
    than ``target`` partial gradients.
    """
    loads = np.asarray(loads, dtype=int)
    check_positive_int(target, "target")
    times = sample_completion_times(cluster, loads, rng=rng, num_trials=num_trials)
    order = np.argsort(times, axis=1)
    sorted_times = np.take_along_axis(times, order, axis=1)
    sorted_loads = loads[order]
    cumulative = np.cumsum(sorted_loads, axis=1)
    reached = cumulative >= target
    results = np.full(num_trials, np.inf)
    any_reached = reached.any(axis=1)
    first_index = np.argmax(reached, axis=1)
    rows = np.flatnonzero(any_reached)
    results[rows] = sorted_times[rows, first_index[rows]]
    return results


def estimate_expected_threshold_time(
    cluster: ClusterSpec,
    loads: np.ndarray,
    target: int,
    rng: RandomState = None,
    num_trials: int = 200,
) -> float:
    """Monte-Carlo estimate of ``E[T-hat(target)]`` for fixed loads."""
    samples = sample_threshold_time(
        cluster, loads, target, rng=rng, num_trials=num_trials
    )
    if np.any(~np.isfinite(samples)):
        raise AllocationError(
            "the supplied loads cannot deliver the target number of results "
            f"(total load {int(np.asarray(loads).sum())} < target {target})"
        )
    return float(samples.mean())


def sample_coverage_time(
    cluster: ClusterSpec,
    num_examples: int,
    assignment_sampler: AssignmentSampler,
    rng: RandomState = None,
    num_trials: int = 1,
) -> np.ndarray:
    """Sample the coverage time ``T`` (paper Eq. 16) under a random assignment.

    Parameters
    ----------
    cluster:
        The heterogeneous cluster.
    num_examples:
        Dataset size ``m``.
    assignment_sampler:
        Callable drawing one assignment realisation — a sequence of ``n``
        index arrays (worker ``i`` processes ``assignment[i]``). Called once
        per trial, which models the generalized BCC scheme re-sampling its
        random selection each trial. Deterministic assignments simply ignore
        the generator argument.
    num_trials:
        Number of Monte-Carlo trials.

    Returns
    -------
    ndarray
        Coverage time per trial; ``+inf`` when the assignment does not cover
        the dataset (coverage can then never be achieved).
    """
    check_positive_int(num_examples, "num_examples")
    check_positive_int(num_trials, "num_trials")
    generator = as_generator(rng)
    results = np.empty(num_trials)
    for trial in range(num_trials):
        assignment = assignment_sampler(generator)
        if len(assignment) != cluster.num_workers:
            raise AllocationError(
                "assignment sampler returned "
                f"{len(assignment)} index sets for {cluster.num_workers} workers"
            )
        loads = np.array([len(indices) for indices in assignment], dtype=int)
        times = sample_completion_times(cluster, loads, rng=generator, num_trials=1)[0]
        order = np.argsort(times)
        covered = np.zeros(num_examples, dtype=bool)
        count_covered = 0
        coverage_time = np.inf
        for worker in order:
            if not np.isfinite(times[worker]):
                break
            indices = np.asarray(assignment[worker], dtype=int)
            if indices.size:
                newly = ~covered[indices]
                if newly.any():
                    covered[indices[newly]] = True
                    count_covered += int(newly.sum())
            if count_covered >= num_examples:
                coverage_time = float(times[worker])
                break
        results[trial] = coverage_time
    return results


def estimate_coverage_time(
    cluster: ClusterSpec,
    num_examples: int,
    assignment_sampler: AssignmentSampler,
    rng: RandomState = None,
    num_trials: int = 200,
    *,
    allow_incomplete: bool = False,
) -> float:
    """Monte-Carlo estimate of the expected coverage time ``E[T]``.

    With ``allow_incomplete=False`` (default) a trial that never achieves
    coverage raises :class:`~repro.exceptions.AllocationError`; otherwise
    such trials are dropped from the average (and at least one trial must
    succeed).
    """
    samples = sample_coverage_time(
        cluster, num_examples, assignment_sampler, rng=rng, num_trials=num_trials
    )
    finite = np.isfinite(samples)
    if not finite.all():
        if not allow_incomplete or not finite.any():
            raise AllocationError(
                "coverage was not achieved in "
                f"{int((~finite).sum())} of {num_trials} trials"
            )
        samples = samples[finite]
    return float(samples.mean())
