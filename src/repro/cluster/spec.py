"""Worker and cluster specifications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stragglers.base import DelayModel
from repro.stragglers.communication import CommunicationModel, LinearCommunicationModel
from repro.stragglers.models import ShiftedExponentialDelay
from repro.utils.validation import check_positive_int

__all__ = ["WorkerSpec", "ClusterSpec"]


@dataclass(frozen=True)
class WorkerSpec:
    """Description of one worker node.

    Attributes
    ----------
    compute:
        Delay model giving the time to process a given number of examples.
    name:
        Optional identifier used in reports and logs.
    """

    compute: DelayModel
    name: str = "worker"

    def __post_init__(self) -> None:
        if not isinstance(self.compute, DelayModel):
            raise ConfigurationError(
                f"compute must be a DelayModel, got {type(self.compute).__name__}"
            )


@dataclass(frozen=True)
class ClusterSpec:
    """A master plus ``n`` workers with a shared communication model.

    Attributes
    ----------
    workers:
        Tuple of :class:`WorkerSpec`, one per worker node.
    communication:
        Communication-time model applied at the master for every received
        message (defaults to free communication).
    """

    workers: tuple
    communication: CommunicationModel = field(
        default_factory=lambda: LinearCommunicationModel(seconds_per_unit=0.0)
    )

    def __post_init__(self) -> None:
        if len(self.workers) == 0:
            raise ConfigurationError("a cluster needs at least one worker")
        for i, worker in enumerate(self.workers):
            if not isinstance(worker, WorkerSpec):
                raise ConfigurationError(
                    f"workers[{i}] must be a WorkerSpec, got {type(worker).__name__}"
                )
        if not isinstance(self.communication, CommunicationModel):
            raise ConfigurationError(
                "communication must be a CommunicationModel, got "
                f"{type(self.communication).__name__}"
            )
        object.__setattr__(self, "workers", tuple(self.workers))

    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """Number of worker nodes ``n``."""
        return len(self.workers)

    def delay_models(self) -> List[DelayModel]:
        """List of the workers' compute delay models, in worker order."""
        return [worker.compute for worker in self.workers]

    # ------------------------------------------------------------------ #
    @classmethod
    def homogeneous(
        cls,
        num_workers: int,
        compute: DelayModel,
        communication: Optional[CommunicationModel] = None,
    ) -> "ClusterSpec":
        """Build a cluster of ``num_workers`` identical workers."""
        check_positive_int(num_workers, "num_workers")
        workers = tuple(
            WorkerSpec(compute=compute, name=f"worker-{i}") for i in range(num_workers)
        )
        if communication is None:
            return cls(workers=workers)
        return cls(workers=workers, communication=communication)

    @classmethod
    def shifted_exponential(
        cls,
        stragglings: Sequence[float],
        shifts: Sequence[float],
        communication: Optional[CommunicationModel] = None,
    ) -> "ClusterSpec":
        """Build a heterogeneous cluster from per-worker ``(mu_i, a_i)`` arrays.

        This is the cluster family of the paper's Section IV: worker ``i`` has
        a shift-exponential completion time with straggling parameter
        ``stragglings[i]`` and shift parameter ``shifts[i]``.
        """
        stragglings = np.asarray(stragglings, dtype=float)
        shifts = np.asarray(shifts, dtype=float)
        if stragglings.shape != shifts.shape or stragglings.ndim != 1:
            raise ConfigurationError(
                "stragglings and shifts must be 1-D arrays of equal length"
            )
        workers = tuple(
            WorkerSpec(
                compute=ShiftedExponentialDelay(straggling=float(mu), shift=float(a)),
                name=f"worker-{i}",
            )
            for i, (mu, a) in enumerate(zip(stragglings, shifts))
        )
        if communication is None:
            return cls(workers=workers)
        return cls(workers=workers, communication=communication)

    @classmethod
    def paper_fig5_cluster(
        cls,
        num_workers: int = 100,
        num_fast: int = 5,
        slow_straggling: float = 1.0,
        fast_straggling: float = 20.0,
        shift: float = 20.0,
        communication: Optional[CommunicationModel] = None,
    ) -> "ClusterSpec":
        """The heterogeneous cluster of the paper's Fig. 5.

        ``n = 100`` workers, all with shift parameter ``a_i = 20``;
        95 workers with straggling parameter ``mu_i = 1`` and 5 with
        ``mu_i = 20``.
        """
        check_positive_int(num_workers, "num_workers")
        if not (0 <= num_fast <= num_workers):
            raise ConfigurationError(
                f"num_fast must lie in [0, {num_workers}], got {num_fast}"
            )
        stragglings = np.full(num_workers, slow_straggling, dtype=float)
        if num_fast:
            stragglings[-num_fast:] = fast_straggling
        shifts = np.full(num_workers, shift, dtype=float)
        return cls.shifted_exponential(stragglings, shifts, communication=communication)

    # ------------------------------------------------------------------ #
    def straggling_parameters(self) -> np.ndarray:
        """Per-worker straggling parameters ``mu_i`` (shift-exponential clusters only)."""
        return np.array([self._shift_exp(i).straggling for i in range(self.num_workers)])

    def shift_parameters(self) -> np.ndarray:
        """Per-worker shift parameters ``a_i`` (shift-exponential clusters only)."""
        return np.array([self._shift_exp(i).shift for i in range(self.num_workers)])

    def _shift_exp(self, index: int) -> ShiftedExponentialDelay:
        model = self.workers[index].compute
        if not isinstance(model, ShiftedExponentialDelay):
            raise ConfigurationError(
                "this operation requires shift-exponential workers; worker "
                f"{index} uses {type(model).__name__}"
            )
        return model
