"""Cluster description and heterogeneous load allocation.

The homogeneous setting (Section III of the paper) only needs the number of
workers; the heterogeneous extension (Section IV) describes every worker by a
shift-exponential delay model with parameters ``(mu_i, a_i)`` and asks how
many examples each worker should be assigned. This package provides:

* :class:`WorkerSpec` / :class:`ClusterSpec` — the cluster description,
* the P2 load-allocation solver (:func:`solve_p2_allocation`) following the
  HCMM approach of Reisizadeh et al. (reference [16] of the paper),
* the proportional "load-balancing" baseline used in the paper's Fig. 5, and
* Monte-Carlo estimators of ``E[T-hat(s)]`` and of the coverage time.
"""

from repro.cluster.spec import WorkerSpec, ClusterSpec
from repro.cluster.dynamic import ChurnEvent, ClusterTimeline, DynamicClusterSpec
from repro.cluster.allocation import (
    AllocationResult,
    solve_p2_allocation,
    load_balanced_allocation,
    uniform_allocation,
    optimal_rate_per_load,
    expected_aggregate_return,
)
from repro.cluster.waiting_time import (
    estimate_expected_threshold_time,
    estimate_coverage_time,
    sample_threshold_time,
    sample_coverage_time,
)

__all__ = [
    "WorkerSpec",
    "ClusterSpec",
    "ChurnEvent",
    "ClusterTimeline",
    "DynamicClusterSpec",
    "AllocationResult",
    "solve_p2_allocation",
    "load_balanced_allocation",
    "uniform_allocation",
    "optimal_rate_per_load",
    "expected_aggregate_return",
    "estimate_expected_threshold_time",
    "estimate_coverage_time",
    "sample_threshold_time",
    "sample_coverage_time",
]
