"""Heterogeneous load allocation (problem P2 of the paper).

The paper's Theorem 2 bounds the minimum coverage time using the solution of

.. math::

    \\text{P2}: \\quad \\min_{r_1, \\ldots, r_n} E[\\hat T(s)],

the minimum expected time for the master to receive ``s`` partial gradients
(with repetitions) when worker ``i`` processes ``r_i`` examples and its
completion time is shift-exponential with parameters ``(mu_i, a_i)``.

The solver follows the HCMM approach of Reisizadeh et al. (reference [16] of
the paper): for a shift-exponential worker the *expected return rate* —
examples delivered per unit time when the worker is given ``t / s_i`` examples
and a deadline ``t`` — is maximised by a per-example time ``s_i*`` that solves

.. math::

    e^{-u}(1 + \\mu_i a_i + u) = 1, \\qquad u = \\mu_i (s_i^* - a_i),

whose solution is expressed with the Lambert-W function (branch ``-1``).
With every worker operating at its optimal per-example time, the expected
aggregate return grows linearly in the deadline ``t``, so the deadline that
delivers ``s`` expected results in closed form, and the per-worker loads are
``r_i = lambda_i t*`` with ``lambda_i = 1 / s_i*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.special import lambertw

from repro.cluster.spec import ClusterSpec
from repro.exceptions import AllocationError
from repro.utils.validation import check_positive_int

__all__ = [
    "AllocationResult",
    "optimal_rate_per_load",
    "solve_p2_allocation",
    "load_balanced_allocation",
    "uniform_allocation",
    "expected_aggregate_return",
]


@dataclass(frozen=True)
class AllocationResult:
    """Loads produced by an allocation strategy.

    Attributes
    ----------
    loads:
        Integer array ``r_i`` of examples assigned to each worker.
    deadline:
        The deadline ``t*`` the allocation targets (``nan`` for strategies
        that are not deadline-based).
    target:
        The number of partial gradients ``s`` the allocation aims to deliver.
    strategy:
        Human-readable name of the strategy.
    """

    loads: np.ndarray
    deadline: float
    target: int
    strategy: str

    def __post_init__(self) -> None:
        loads = np.asarray(self.loads, dtype=int)
        if loads.ndim != 1:
            raise AllocationError("loads must be a 1-D integer array")
        if np.any(loads < 0):
            raise AllocationError("loads must be non-negative")
        object.__setattr__(self, "loads", loads)

    @property
    def total_load(self) -> int:
        """Total number of (possibly repeated) examples assigned."""
        return int(self.loads.sum())

    @property
    def max_load(self) -> int:
        """The computational load ``r`` (largest per-worker assignment)."""
        return int(self.loads.max()) if self.loads.size else 0


def _per_worker_optimum(straggling: float, shift: float) -> tuple[float, float]:
    """Return ``(s_star, success_probability)`` for one shift-exponential worker.

    ``s_star`` is the optimal expected per-example time (load ``t / s_star``
    for deadline ``t``) and ``success_probability`` is the probability the
    worker meets the deadline under that load, which is deadline-independent.
    """
    if straggling <= 0:
        raise AllocationError(f"straggling parameter must be positive, got {straggling}")
    if shift < 0:
        raise AllocationError(f"shift parameter must be non-negative, got {shift}")
    if shift == 0.0:
        # Degenerate case: the optimal per-example time tends to zero and the
        # return rate tends to the straggling parameter. Use the exponential
        # mean 1/mu as the per-example time (load = mu * t), whose success
        # probability is 1 - 1/e.
        s_star = 1.0 / straggling
        return s_star, 1.0 - float(np.exp(-1.0))
    exponent = -(1.0 + straggling * shift)
    # v solves v * exp(-v) = exp(exponent) with v > 1, i.e. v = -W_{-1}(-e^{exponent}).
    v = -lambertw(-np.exp(exponent), k=-1).real
    u_star = v - 1.0 - straggling * shift
    if u_star < 0:
        raise AllocationError(
            "internal error: negative optimal tail parameter "
            f"(straggling={straggling}, shift={shift})"
        )
    s_star = shift + u_star / straggling
    success = 1.0 - float(np.exp(-u_star))
    return float(s_star), success


def optimal_rate_per_load(cluster: ClusterSpec) -> tuple[np.ndarray, np.ndarray]:
    """Per-worker optimal return rates and success probabilities.

    Returns
    -------
    (rates, successes):
        ``rates[i] = 1 / s_i*`` is the number of examples worker ``i`` should
        be assigned per unit of deadline; ``successes[i]`` is the probability
        it finishes by the deadline under that load.
    """
    stragglings = cluster.straggling_parameters()
    shifts = cluster.shift_parameters()
    rates = np.empty(cluster.num_workers)
    successes = np.empty(cluster.num_workers)
    for i, (mu, a) in enumerate(zip(stragglings, shifts)):
        s_star, success = _per_worker_optimum(float(mu), float(a))
        rates[i] = 1.0 / s_star
        successes[i] = success
    return rates, successes


def expected_aggregate_return(
    cluster: ClusterSpec, loads: np.ndarray, deadline: float
) -> float:
    """Expected number of partial gradients received by ``deadline``.

    ``sum_i r_i * P(T_i <= deadline)`` where ``T_i`` is the completion time of
    worker ``i`` processing ``loads[i]`` examples. Workers with zero load
    contribute nothing.
    """
    loads = np.asarray(loads, dtype=int)
    if loads.shape[0] != cluster.num_workers:
        raise AllocationError(
            f"loads has length {loads.shape[0]} but the cluster has "
            f"{cluster.num_workers} workers"
        )
    total = 0.0
    for i, model in enumerate(cluster.delay_models()):
        if loads[i] > 0:
            total += float(loads[i]) * float(model.cdf(int(loads[i]), deadline))
    return total


def solve_p2_allocation(
    cluster: ClusterSpec,
    target: int,
    *,
    max_load: Optional[int] = None,
) -> AllocationResult:
    """Solve P2 approximately: loads minimising the expected time to ``target`` results.

    Parameters
    ----------
    cluster:
        Heterogeneous cluster of shift-exponential workers.
    target:
        The number of partial gradients ``s`` the master must receive
        (``m`` for the Theorem 2 lower bound, ``floor(c m log m)`` for the
        generalized BCC upper bound).
    max_load:
        Optional cap on any single worker's load (e.g. the dataset size
        ``m``); loads are clipped and the deadline re-solved if the cap binds.

    Returns
    -------
    AllocationResult
        Integer loads (ceil-rounded so the expected return still covers the
        target) and the associated deadline ``t*``.
    """
    check_positive_int(target, "target")
    rates, successes = optimal_rate_per_load(cluster)
    effective_rate = float(np.sum(rates * successes))
    if effective_rate <= 0:
        raise AllocationError("the cluster has zero aggregate return rate")
    deadline = target / effective_rate
    loads = np.ceil(rates * deadline).astype(int)

    if max_load is not None:
        check_positive_int(max_load, "max_load")
        if np.any(loads > max_load):
            capped = np.minimum(loads, max_load)
            # Re-solve the deadline for the uncapped workers so the expected
            # return still reaches the target with the capped contribution.
            capped_mask = loads > max_load
            capped_return = float(np.sum(capped[capped_mask] * successes[capped_mask]))
            remaining_rate = float(
                np.sum(rates[~capped_mask] * successes[~capped_mask])
            )
            remaining_target = max(target - capped_return, 0.0)
            if remaining_rate > 0 and remaining_target > 0:
                deadline = remaining_target / remaining_rate
                uncapped_loads = np.ceil(rates * deadline).astype(int)
                loads = np.where(capped_mask, max_load, np.minimum(uncapped_loads, max_load))
            else:
                loads = capped
    return AllocationResult(
        loads=loads, deadline=float(deadline), target=int(target), strategy="p2-hcmm"
    )


def load_balanced_allocation(cluster: ClusterSpec, num_examples: int) -> AllocationResult:
    """The paper's "LB" baseline: loads proportional to worker speed, no repetition.

    ``r_i = round(mu_i / sum(mu) * m)`` with leftover examples assigned to the
    fastest workers so the loads sum exactly to ``num_examples``.
    """
    check_positive_int(num_examples, "num_examples")
    stragglings = cluster.straggling_parameters()
    raw = stragglings / stragglings.sum() * num_examples
    loads = np.floor(raw).astype(int)
    deficit = num_examples - int(loads.sum())
    if deficit > 0:
        # Give the remaining examples to the workers with the largest
        # fractional parts (ties broken toward faster workers).
        order = np.argsort(-(raw - loads) - 1e-9 * np.arange(len(raw)))
        loads[order[:deficit]] += 1
    if int(loads.sum()) != num_examples:
        raise AllocationError("load-balanced allocation failed to cover the dataset")
    return AllocationResult(
        loads=loads, deadline=float("nan"), target=int(num_examples), strategy="load-balanced"
    )


def uniform_allocation(cluster: ClusterSpec, num_examples: int) -> AllocationResult:
    """Equal split of ``num_examples`` across all workers (uncoded homogeneous baseline)."""
    check_positive_int(num_examples, "num_examples")
    n = cluster.num_workers
    base = num_examples // n
    loads = np.full(n, base, dtype=int)
    loads[: num_examples - base * n] += 1
    return AllocationResult(
        loads=loads, deadline=float("nan"), target=int(num_examples), strategy="uniform"
    )
