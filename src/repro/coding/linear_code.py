"""Generic linear gradient codes.

A linear gradient code over ``k`` data partitions is an encoding matrix
``B`` of shape ``(n, k)``: worker ``i`` computes the partial-gradient sums
``g_1, ..., g_k`` of the partitions in its support (the nonzero entries of
row ``i``) and transmits the single vector ``sum_j B[i, j] * g_j``. The
master, having received messages from a worker subset ``W``, recovers the
total gradient whenever the all-ones row vector lies in the row space of
``B[W]``: it finds coefficients ``a`` with ``a^T B[W] = 1^T`` and outputs
``sum_{i in W} a_i z_i``.

This captures the cyclic-repetition scheme of Tandon et al., the
Reed-Solomon construction of Halbawi et al., and the cyclic-MDS construction
of Raviv et al.; they differ only in how ``B`` is built.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.coding.assignment import DataAssignment
from repro.exceptions import ConfigurationError, DecodingError
from repro.utils.validation import check_array_2d

__all__ = ["LinearGradientCode"]


class LinearGradientCode:
    """A linear gradient code defined by its encoding matrix ``B``.

    Parameters
    ----------
    encoding_matrix:
        Real matrix of shape ``(num_workers, num_partitions)``.
    name:
        Identifier used in reports.
    decoding_tolerance:
        Maximum allowed residual ``||a^T B_W - 1||_inf`` for a worker subset
        to be considered decodable.
    """

    def __init__(
        self,
        encoding_matrix: np.ndarray,
        name: str = "linear-code",
        decoding_tolerance: float = 1e-6,
    ) -> None:
        matrix = check_array_2d(encoding_matrix, "encoding_matrix")
        if not np.all(np.isfinite(matrix)):
            raise DecodingError("the encoding matrix must contain only finite entries")
        self.encoding_matrix = matrix
        self.name = name
        self.decoding_tolerance = float(decoding_tolerance)
        if self.decoding_tolerance <= 0:
            raise ConfigurationError("decoding_tolerance must be positive")

    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """Number of workers ``n`` (rows of ``B``)."""
        return self.encoding_matrix.shape[0]

    @property
    def num_partitions(self) -> int:
        """Number of data partitions ``k`` (columns of ``B``)."""
        return self.encoding_matrix.shape[1]

    def support(self, worker: int) -> np.ndarray:
        """Data-partition indices worker ``worker`` must process (nonzero columns)."""
        self._check_worker(worker)
        return np.flatnonzero(self.encoding_matrix[worker])

    def computational_load(self) -> int:
        """Maximum support size across workers (in partitions)."""
        return int(np.max(np.count_nonzero(self.encoding_matrix, axis=1)))

    def to_assignment(self) -> DataAssignment:
        """The placement implied by the code's supports, at partition granularity."""
        assignments = tuple(self.support(i) for i in range(self.num_workers))
        return DataAssignment(num_examples=self.num_partitions, assignments=assignments)

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #
    def encode(self, worker: int, partition_gradients: np.ndarray) -> np.ndarray:
        """Compute worker ``worker``'s coded message.

        Parameters
        ----------
        partition_gradients:
            Array of shape ``(k, p)`` whose row ``j`` is the summed partial
            gradient of partition ``j``. Only the rows in the worker's
            support are read; the others may contain garbage (a real worker
            never computes them).
        """
        self._check_worker(worker)
        gradients = np.asarray(partition_gradients, dtype=float)
        if gradients.ndim != 2 or gradients.shape[0] != self.num_partitions:
            raise DecodingError(
                "partition_gradients must have shape (num_partitions, p), got "
                f"{gradients.shape}"
            )
        support = self.support(worker)
        coefficients = self.encoding_matrix[worker, support]
        return coefficients @ gradients[support]

    def decoding_vector(self, workers: Sequence[int] | np.ndarray) -> np.ndarray:
        """Coefficients ``a`` with ``a^T B[workers] = 1^T``.

        Raises
        ------
        DecodingError
            If no such coefficients exist (within tolerance), i.e. the subset
            is not decodable.
        """
        workers = self._check_workers(workers)
        submatrix = self.encoding_matrix[workers]  # (w, k)
        target = np.ones(self.num_partitions)
        solution, *_ = np.linalg.lstsq(submatrix.T, target, rcond=None)
        residual = submatrix.T @ solution - target
        if np.max(np.abs(residual)) > self.decoding_tolerance:
            raise DecodingError(
                f"worker subset of size {len(workers)} is not decodable for "
                f"code {self.name!r} (residual {np.max(np.abs(residual)):.2e})"
            )
        return solution

    def is_decodable(self, workers: Sequence[int] | np.ndarray) -> bool:
        """True when the master can recover the gradient from ``workers``' messages."""
        try:
            self.decoding_vector(workers)
            return True
        except DecodingError:
            return False

    def decode(
        self, workers: Sequence[int] | np.ndarray, messages: np.ndarray
    ) -> np.ndarray:
        """Reconstruct the *sum* of all partition gradients from received messages.

        Parameters
        ----------
        workers:
            Indices of the workers whose messages were received, in the same
            order as the rows of ``messages``.
        messages:
            Array of shape ``(len(workers), p)``.
        """
        workers = self._check_workers(workers)
        received = np.asarray(messages, dtype=float)
        if received.ndim != 2 or received.shape[0] != len(workers):
            raise DecodingError(
                f"messages must have shape (len(workers), p), got {received.shape}"
            )
        coefficients = self.decoding_vector(workers)
        return coefficients @ received

    # ------------------------------------------------------------------ #
    def minimum_decodable_size(self) -> int:
        """Smallest ``w`` such that *some* worker subset of size ``w`` decodes.

        Used by tests on small codes; exhaustive only over contiguous subsets
        plus a random sample to stay cheap.
        """
        for size in range(1, self.num_workers + 1):
            for start in range(self.num_workers):
                subset = [(start + offset) % self.num_workers for offset in range(size)]
                if self.is_decodable(subset):
                    return size
        raise DecodingError(f"code {self.name!r} is never decodable")

    # ------------------------------------------------------------------ #
    def _check_worker(self, worker: int) -> None:
        if not (0 <= worker < self.num_workers):
            raise DecodingError(
                f"worker index must lie in [0, {self.num_workers}), got {worker}"
            )

    def _check_workers(self, workers: Sequence[int] | np.ndarray) -> np.ndarray:
        workers = np.asarray(workers, dtype=int)
        if workers.ndim != 1 or workers.size == 0:
            raise DecodingError("workers must be a non-empty 1-D index sequence")
        if np.unique(workers).size != workers.size:
            raise DecodingError("workers must not contain duplicates")
        for worker in workers:
            self._check_worker(int(worker))
        return workers

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, n={self.num_workers}, "
            f"k={self.num_partitions})"
        )
