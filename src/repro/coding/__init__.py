"""Data placement and gradient-coding substrate.

Two layers live here:

* **Placement** — which example (or data partition) indices each worker
  processes, represented by :class:`DataAssignment` and produced by the
  placement generators (uncoded split, BCC random batching, random subsets,
  cyclic windows, heterogeneous loads).
* **Codes** — how a worker's locally computed partial gradients are combined
  into its message and how the master reconstructs the full gradient:
  :class:`LinearGradientCode` with the cyclic-repetition construction of
  Tandon et al., the fractional-repetition construction, and a deterministic
  Reed-Solomon-style variant.
"""

from repro.coding.assignment import DataAssignment
from repro.coding.placement import (
    uncoded_placement,
    bcc_placement,
    random_subset_placement,
    cyclic_placement,
    heterogeneous_random_placement,
    group_placement,
)
from repro.coding.linear_code import LinearGradientCode
from repro.coding.cyclic_repetition import CyclicRepetitionCode
from repro.coding.fractional import FractionalRepetitionCode
from repro.coding.reed_solomon import ReedSolomonStyleCode

__all__ = [
    "DataAssignment",
    "uncoded_placement",
    "bcc_placement",
    "random_subset_placement",
    "cyclic_placement",
    "heterogeneous_random_placement",
    "group_placement",
    "LinearGradientCode",
    "CyclicRepetitionCode",
    "FractionalRepetitionCode",
    "ReedSolomonStyleCode",
]
