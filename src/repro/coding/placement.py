"""Placement generators — how the data items are distributed across workers.

Each generator returns a :class:`~repro.coding.assignment.DataAssignment`
(plus scheme-specific side information where relevant). Items may be single
examples or whole batches; the callers decide the granularity.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.coding.assignment import DataAssignment
from repro.datasets.batching import BatchSpec, contiguous_partition
from repro.exceptions import AssignmentError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "uncoded_placement",
    "bcc_placement",
    "random_subset_placement",
    "cyclic_placement",
    "heterogeneous_random_placement",
    "group_placement",
]


def uncoded_placement(num_examples: int, num_workers: int) -> DataAssignment:
    """Disjoint, no-redundancy split: worker ``i`` gets the ``i``-th contiguous block.

    This is the paper's "uncoded" baseline; the master must wait for every
    worker.
    """
    m = check_positive_int(num_examples, "num_examples")
    n = check_positive_int(num_workers, "num_workers")
    if n > m:
        raise AssignmentError(
            f"the uncoded scheme cannot give {n} workers non-empty shares of "
            f"{m} examples"
        )
    spec = contiguous_partition(m, n)
    return DataAssignment(num_examples=m, assignments=spec.batches)


def bcc_placement(
    batch_spec: BatchSpec, num_workers: int, rng: RandomState = None
) -> Tuple[DataAssignment, np.ndarray]:
    """The BCC data distribution: each worker picks one batch uniformly at random.

    Parameters
    ----------
    batch_spec:
        The partition of the examples into ``ceil(m/r)`` batches.
    num_workers:
        Number of workers drawing batches independently.

    Returns
    -------
    (assignment, batch_choices):
        ``assignment`` maps workers to *example* indices (the contents of
        their chosen batch); ``batch_choices[i]`` is the batch id worker ``i``
        selected. Note the assignment is random and need not cover every
        batch — the BCC master simply keeps waiting until it does (across the
        workers that do report), and the scheme's analysis (Theorem 1)
        assumes ``n`` is large enough for coverage to occur with high
        probability.
    """
    n = check_positive_int(num_workers, "num_workers")
    generator = as_generator(rng)
    batch_choices = generator.integers(0, batch_spec.num_batches, size=n)
    assignments = tuple(batch_spec.batch_indices(int(b)) for b in batch_choices)
    assignment = DataAssignment(num_examples=batch_spec.num_examples, assignments=assignments)
    return assignment, batch_choices


def random_subset_placement(
    num_examples: int, num_workers: int, load: int, rng: RandomState = None
) -> DataAssignment:
    """The simple randomized baseline: each worker picks ``load`` distinct examples.

    Selection is uniform without replacement, independently across workers
    (the scheme sketched in the paper's "Prior Art" section, Eq. 5–6).
    """
    m = check_positive_int(num_examples, "num_examples")
    n = check_positive_int(num_workers, "num_workers")
    r = check_positive_int(load, "load")
    if r > m:
        raise AssignmentError(f"load {r} cannot exceed the number of examples {m}")
    generator = as_generator(rng)
    assignments = tuple(
        generator.choice(m, size=r, replace=False) for _ in range(n)
    )
    return DataAssignment(num_examples=m, assignments=assignments)


def cyclic_placement(num_items: int, num_workers: int, load: int) -> DataAssignment:
    """Cyclic windows: worker ``i`` holds items ``{i, i+1, ..., i+load-1} mod m``.

    This is the support structure of the cyclic-repetition, Reed-Solomon and
    cyclic-MDS gradient codes. The usual setting has ``num_items ==
    num_workers`` (one data partition per worker); the function also accepts
    ``num_items < num_workers`` in which case the windows wrap over the
    smaller item range.
    """
    m = check_positive_int(num_items, "num_items")
    n = check_positive_int(num_workers, "num_workers")
    r = check_positive_int(load, "load")
    if r > m:
        raise AssignmentError(f"load {r} cannot exceed the number of items {m}")
    assignments = tuple(
        np.sort((np.arange(r) + i) % m) for i in range(n)
    )
    return DataAssignment(num_examples=m, assignments=assignments)


def heterogeneous_random_placement(
    num_examples: int,
    loads: Sequence[int],
    rng: RandomState = None,
    *,
    with_replacement: bool = False,
) -> DataAssignment:
    """Generalized-BCC placement: worker ``i`` picks ``loads[i]`` examples at random.

    ``with_replacement=False`` (default) matches the scheme ``G0`` of the
    paper's Theorem 2 proof (each worker samples without replacement);
    ``True`` gives the relaxed scheme ``G1`` used in the analysis. With
    replacement, duplicates within a worker are discarded (processing an
    example twice adds nothing), which can only help coverage.
    """
    m = check_positive_int(num_examples, "num_examples")
    loads = np.asarray(loads, dtype=int)
    if loads.ndim != 1 or loads.size == 0:
        raise AssignmentError("loads must be a non-empty 1-D integer sequence")
    if np.any(loads < 0):
        raise AssignmentError("loads must be non-negative")
    if not with_replacement and np.any(loads > m):
        raise AssignmentError(
            "a load exceeds the number of examples and sampling is without replacement"
        )
    generator = as_generator(rng)
    assignments = []
    for load in loads:
        if load == 0:
            assignments.append(np.array([], dtype=int))
        elif with_replacement:
            picks = generator.integers(0, m, size=int(load))
            assignments.append(np.unique(picks))
        else:
            assignments.append(
                np.sort(generator.choice(m, size=int(min(load, m)), replace=False))
            )
    return DataAssignment(num_examples=m, assignments=tuple(assignments))


def group_placement(num_examples: int, num_groups: int, workers_per_group: int) -> DataAssignment:
    """Fractional-repetition placement: groups of workers replicate disjoint shares.

    The ``num_examples`` items are split into ``workers_per_group`` disjoint
    shares; each of the ``num_groups`` groups contains ``workers_per_group``
    workers, and the ``j``-th worker of every group holds the ``j``-th share.
    Equivalently each group jointly holds the entire dataset, giving
    ``num_groups``-fold replication. Total workers = ``num_groups *
    workers_per_group``.
    """
    m = check_positive_int(num_examples, "num_examples")
    g = check_positive_int(num_groups, "num_groups")
    w = check_positive_int(workers_per_group, "workers_per_group")
    if w > m:
        raise AssignmentError(
            f"cannot split {m} items into {w} non-empty shares per group"
        )
    shares = contiguous_partition(m, w).batches
    assignments = []
    for _group in range(g):
        for j in range(w):
            assignments.append(shares[j])
    return DataAssignment(num_examples=m, assignments=tuple(assignments))
