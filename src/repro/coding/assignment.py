"""The data-to-worker assignment (the bipartite graph ``G`` of the paper).

An assignment records, for every worker, the indices of the training examples
(or data partitions) it processes locally. The paper represents this as a
bipartite graph between data vertices and worker vertices; here the same
object exposes both the per-worker index sets and the binary assignment
matrix, plus the graph view for callers that have ``networkx`` installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import AssignmentError
from repro.utils.validation import check_positive_int

__all__ = ["DataAssignment"]


@dataclass(frozen=True)
class DataAssignment:
    """Which examples each worker processes.

    Attributes
    ----------
    num_examples:
        Total number of data items ``m`` being distributed (examples, or
        batches when the scheme assigns whole batches).
    assignments:
        Tuple of 1-D integer arrays; ``assignments[i]`` lists the item
        indices worker ``i`` processes. Arrays may be empty (idle worker) but
        must not contain duplicates or out-of-range indices.
    """

    num_examples: int
    assignments: tuple

    def __post_init__(self) -> None:
        check_positive_int(self.num_examples, "num_examples")
        if len(self.assignments) == 0:
            raise AssignmentError("an assignment needs at least one worker")
        normalised: List[np.ndarray] = []
        for i, indices in enumerate(self.assignments):
            idx = np.asarray(indices, dtype=int)
            if idx.ndim != 1:
                raise AssignmentError(f"worker {i} assignment must be a 1-D index array")
            if idx.size:
                if idx.min() < 0 or idx.max() >= self.num_examples:
                    raise AssignmentError(
                        f"worker {i} assignment references indices outside "
                        f"[0, {self.num_examples})"
                    )
                if np.unique(idx).size != idx.size:
                    raise AssignmentError(
                        f"worker {i} assignment contains duplicate indices"
                    )
            normalised.append(idx.copy())
        object.__setattr__(self, "assignments", tuple(normalised))

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """Number of workers ``n``."""
        return len(self.assignments)

    @property
    def loads(self) -> np.ndarray:
        """Per-worker loads ``r_i = |G_i|``."""
        return np.array([len(a) for a in self.assignments], dtype=int)

    @property
    def computational_load(self) -> int:
        """The paper's Definition 1: ``r = max_i r_i``."""
        return int(self.loads.max())

    @property
    def total_load(self) -> int:
        """Total number of (example, worker) pairs, i.e. total redundancy."""
        return int(self.loads.sum())

    @property
    def redundancy(self) -> float:
        """Average number of workers processing each example."""
        return self.total_load / self.num_examples

    def worker_indices(self, worker: int) -> np.ndarray:
        """Return the index set ``G_i`` of worker ``worker``."""
        if not (0 <= worker < self.num_workers):
            raise AssignmentError(
                f"worker must lie in [0, {self.num_workers}), got {worker}"
            )
        return self.assignments[worker]

    # ------------------------------------------------------------------ #
    # Coverage
    # ------------------------------------------------------------------ #
    def covered_examples(self, workers: Sequence[int] | np.ndarray) -> np.ndarray:
        """Boolean mask of examples covered by the union of ``workers``' sets."""
        covered = np.zeros(self.num_examples, dtype=bool)
        for worker in np.asarray(workers, dtype=int):
            indices = self.worker_indices(int(worker))
            if indices.size:
                covered[indices] = True
        return covered

    def covers_all(self, workers: Sequence[int] | np.ndarray) -> bool:
        """True when the union of ``workers``' sets equals the whole dataset."""
        return bool(self.covered_examples(workers).all())

    def is_complete(self) -> bool:
        """True when every example is processed by at least one worker.

        This is the feasibility requirement ``N(k_1) u ... u N(k_n) = {d_j}``
        from the paper's problem formulation.
        """
        return self.covers_all(np.arange(self.num_workers))

    def example_multiplicity(self) -> np.ndarray:
        """Number of workers processing each example."""
        counts = np.zeros(self.num_examples, dtype=int)
        for indices in self.assignments:
            if indices.size:
                counts[indices] += 1
        return counts

    # ------------------------------------------------------------------ #
    # Alternative views
    # ------------------------------------------------------------------ #
    def assignment_matrix(self) -> np.ndarray:
        """Binary ``(n, m)`` matrix with ``A[i, j] = 1`` iff worker ``i`` holds item ``j``."""
        matrix = np.zeros((self.num_workers, self.num_examples), dtype=int)
        for i, indices in enumerate(self.assignments):
            if indices.size:
                matrix[i, indices] = 1
        return matrix

    def to_bipartite_graph(self):
        """Return the paper's bipartite graph as a :class:`networkx.Graph`.

        Data vertices are labelled ``("d", j)`` and worker vertices
        ``("k", i)``. Requires the optional ``networkx`` dependency.
        """
        try:
            import networkx as nx
        except ImportError as error:  # pragma: no cover - optional dependency
            raise ImportError(
                "networkx is required for to_bipartite_graph(); install the "
                "'graph' extra"
            ) from error
        graph = nx.Graph()
        graph.add_nodes_from((("d", j) for j in range(self.num_examples)), bipartite=0)
        graph.add_nodes_from((("k", i) for i in range(self.num_workers)), bipartite=1)
        for i, indices in enumerate(self.assignments):
            graph.add_edges_from((("k", i), ("d", int(j))) for j in indices)
        return graph

    # ------------------------------------------------------------------ #
    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "DataAssignment":
        """Build an assignment from a binary ``(n, m)`` matrix."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise AssignmentError("assignment matrix must be 2-dimensional")
        assignments = tuple(np.flatnonzero(row) for row in matrix)
        return cls(num_examples=matrix.shape[1], assignments=assignments)

    def describe(self) -> str:
        """One-line summary used in logs and reports."""
        return (
            f"DataAssignment(n={self.num_workers}, m={self.num_examples}, "
            f"r={self.computational_load}, redundancy={self.redundancy:.2f})"
        )
