"""The fractional-repetition gradient code of Tandon et al.

The ``n`` workers are split into ``s + 1`` groups of ``n / (s + 1)`` workers
each (requires ``(s + 1) | n``). Within a group the ``n`` data partitions are
split disjointly across the group's workers, so every group holds a full copy
of the dataset. Each worker simply sends the *sum* of its partitions'
gradients (all encoding coefficients are one). The master can decode as soon
as the received workers contain one complete group — guaranteed after any
``n - s`` arrivals, but often much earlier (the paper's footnote 2 notes this
opportunistic behaviour), which the decoder here exploits.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.coding.linear_code import LinearGradientCode
from repro.exceptions import ConfigurationError, DecodingError
from repro.utils.validation import check_positive_int

__all__ = ["FractionalRepetitionCode"]


class FractionalRepetitionCode(LinearGradientCode):
    """Fractional-repetition gradient code with ``num_stragglers`` tolerance.

    Parameters
    ----------
    num_workers:
        Number of workers ``n`` (= number of data partitions).
    num_stragglers:
        Straggler tolerance ``s``; ``s + 1`` must divide ``n``. Each worker's
        load is ``s + 1`` partitions.
    """

    def __init__(self, num_workers: int, num_stragglers: int) -> None:
        n = check_positive_int(num_workers, "num_workers")
        s = int(num_stragglers)
        if s < 0 or s >= n:
            raise ConfigurationError(
                f"num_stragglers must lie in [0, num_workers), got {s} for n={n}"
            )
        if n % (s + 1) != 0:
            raise ConfigurationError(
                f"the fractional repetition scheme requires (s + 1) | n; "
                f"got n={n}, s={s}"
            )
        matrix, groups = self._build_matrix(n, s)
        super().__init__(matrix, name=f"fractional-repetition(s={s})")
        self.num_stragglers = s
        self.groups = groups

    @staticmethod
    def _build_matrix(n: int, s: int) -> tuple[np.ndarray, list]:
        group_size = n // (s + 1)
        partitions_per_worker = s + 1
        matrix = np.zeros((n, n))
        groups = []
        worker = 0
        for _group in range(s + 1):
            members = []
            for j in range(group_size):
                start = j * partitions_per_worker
                matrix[worker, start : start + partitions_per_worker] = 1.0
                members.append(worker)
                worker += 1
            groups.append(tuple(members))
        return matrix, groups

    # ------------------------------------------------------------------ #
    @property
    def recovery_threshold(self) -> int:
        """Worst-case wait: ``n - s`` workers (often decodable earlier)."""
        return self.num_workers - self.num_stragglers

    def complete_group(self, workers: Sequence[int] | np.ndarray) -> Optional[int]:
        """Return the id of a group entirely contained in ``workers``, if any."""
        received = set(int(w) for w in np.asarray(workers, dtype=int))
        for group_id, members in enumerate(self.groups):
            if all(member in received for member in members):
                return group_id
        return None

    def is_decodable(self, workers: Sequence[int] | np.ndarray) -> bool:
        """Decodable exactly when some replication group has fully reported.

        (The generic least-squares check of the base class would accept more
        exotic combinations across groups that also sum to the all-ones
        vector; restricting to complete groups matches the scheme as
        published and keeps decoding a pure summation.)
        """
        return self.complete_group(workers) is not None

    def decoding_vector(self, workers: Sequence[int] | np.ndarray) -> np.ndarray:
        workers = np.asarray(workers, dtype=int)
        group_id = self.complete_group(workers)
        if group_id is None:
            raise DecodingError(
                "no replication group has fully reported; cannot decode yet"
            )
        members = set(self.groups[group_id])
        coefficients = np.array(
            [1.0 if int(w) in members else 0.0 for w in workers], dtype=float
        )
        return coefficients
