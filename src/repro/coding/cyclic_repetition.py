"""The cyclic-repetition gradient code of Tandon et al. (reference [7]).

Construction (their randomized Algorithm): choose an auxiliary matrix ``H``
of shape ``(s, n)`` — ``s`` is the number of stragglers to tolerate — with
i.i.d. Gaussian entries in its first ``n - 1`` columns and the last column
set to minus the sum of the others (so every row of ``H`` sums to zero).
Row ``i`` of the encoding matrix ``B`` is supported on the cyclic window
``{i, i+1, ..., i+s} mod n``; its first coefficient is fixed to 1 and the
remaining ``s`` coefficients are chosen so the row is orthogonal to every row
of ``H`` (an ``s x s`` linear solve per worker). With probability one over
the Gaussian draw, the all-ones vector lies in the row space of any
``n - s`` rows of ``B``, so the master can decode after hearing from the
fastest ``n - s`` workers — the recovery threshold ``K = n - s = m - r + 1``
of the paper's Eq. (7).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.coding.linear_code import LinearGradientCode
from repro.exceptions import ConfigurationError, DecodingError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["CyclicRepetitionCode"]


class CyclicRepetitionCode(LinearGradientCode):
    """Cyclic-repetition gradient code tolerating ``num_stragglers`` stragglers.

    Parameters
    ----------
    num_workers:
        Number of workers ``n``; also the number of data partitions (the
        scheme is defined for ``m = n`` — when the dataset has more examples
        than workers, group examples into ``n`` partitions first).
    num_stragglers:
        The worst-case number of stragglers ``s`` the code tolerates; each
        worker's computational load is ``s + 1`` partitions.
    seed:
        Seed for the Gaussian auxiliary matrix. The construction succeeds
        with probability one; a failed draw (degenerate ``s x s`` system)
        raises and a different seed can be supplied.
    """

    def __init__(
        self,
        num_workers: int,
        num_stragglers: int,
        seed: RandomState = None,
        decoding_tolerance: float = 1e-6,
    ) -> None:
        n = check_positive_int(num_workers, "num_workers")
        s = int(num_stragglers)
        if s < 0 or s >= n:
            raise ConfigurationError(
                f"num_stragglers must lie in [0, num_workers), got {s} for n={n}"
            )
        matrix = self._build_matrix(n, s, seed)
        super().__init__(
            matrix, name=f"cyclic-repetition(s={s})", decoding_tolerance=decoding_tolerance
        )
        self.num_stragglers = s

    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_matrix(n: int, s: int, seed: RandomState) -> np.ndarray:
        if s == 0:
            # No straggler tolerance: every worker holds exactly its own
            # partition with coefficient one (this is the uncoded scheme).
            return np.eye(n)
        rng = as_generator(seed)
        auxiliary = rng.standard_normal((s, n))
        auxiliary[:, -1] = -auxiliary[:, :-1].sum(axis=1)

        matrix = np.zeros((n, n))
        for i in range(n):
            window = (i + np.arange(s + 1)) % n
            head, tail = window[0], window[1:]
            # Solve H[:, tail] @ x = -H[:, head] so that the row (1, x) on the
            # window is orthogonal to every row of H.
            try:
                coefficients = np.linalg.solve(auxiliary[:, tail], -auxiliary[:, head])
            except np.linalg.LinAlgError as error:
                raise DecodingError(
                    "degenerate auxiliary matrix while building the cyclic "
                    "repetition code; retry with a different seed"
                ) from error
            matrix[i, head] = 1.0
            matrix[i, tail] = coefficients
        return matrix

    # ------------------------------------------------------------------ #
    @property
    def recovery_threshold(self) -> int:
        """Worst-case number of workers the master waits for: ``n - s``."""
        return self.num_workers - self.num_stragglers

    @classmethod
    def from_load(
        cls,
        num_workers: int,
        load: int,
        seed: RandomState = None,
    ) -> "CyclicRepetitionCode":
        """Build the code from the computational load ``r`` (``s = r - 1``)."""
        r = check_positive_int(load, "load")
        return cls(num_workers=num_workers, num_stragglers=r - 1, seed=seed)
