"""A deterministic Reed-Solomon-style gradient code.

Halbawi et al. (reference [8]) and Raviv et al. (reference [9]) replace the
random coefficients of the cyclic-repetition construction with deterministic
ones derived from Reed-Solomon / cyclic-MDS codes, achieving exactly the same
``(load, recovery-threshold)`` operating point: tolerate ``s`` stragglers
with load ``s + 1`` and worst-case threshold ``n - s``.

This implementation keeps the defining properties of those constructions —
cyclic supports of size ``s + 1``, a *deterministic, parameter-only*
coefficient matrix (no user-supplied randomness), and decodability of the
all-ones vector from any ``n - s`` rows — while building the coefficients
over the reals: the auxiliary matrix ``H`` whose null space the rows must lie
in is derived from a seed fixed by ``(n, s)``, its columns are adjusted to
sum to zero, and the construction verifies that every cyclic survivor window
decodes (retrying with the next derived seed in the measure-zero degenerate
case). Two calls with the same ``(n, s)`` always produce the same matrix.
"""

from __future__ import annotations

import numpy as np

from repro.coding.linear_code import LinearGradientCode
from repro.exceptions import ConfigurationError, DecodingError
from repro.utils.validation import check_positive_int

__all__ = ["ReedSolomonStyleCode"]


class ReedSolomonStyleCode(LinearGradientCode):
    """Deterministic cyclic gradient code (Reed-Solomon-style operating point).

    Parameters
    ----------
    num_workers:
        Number of workers ``n`` (= data partitions).
    num_stragglers:
        Straggler tolerance ``s``; the load is ``s + 1`` and the worst-case
        recovery threshold ``n - s``.
    """

    #: Number of derived seeds tried before giving up on a degenerate draw.
    _MAX_ATTEMPTS = 16

    def __init__(
        self,
        num_workers: int,
        num_stragglers: int,
        decoding_tolerance: float = 1e-6,
    ) -> None:
        n = check_positive_int(num_workers, "num_workers")
        s = int(num_stragglers)
        if s < 0 or s >= n:
            raise ConfigurationError(
                f"num_stragglers must lie in [0, num_workers), got {s} for n={n}"
            )
        matrix = self._build_matrix(n, s, decoding_tolerance)
        super().__init__(
            matrix, name=f"reed-solomon-style(s={s})", decoding_tolerance=decoding_tolerance
        )
        self.num_stragglers = s

    # ------------------------------------------------------------------ #
    @classmethod
    def _build_matrix(cls, n: int, s: int, tolerance: float) -> np.ndarray:
        if s == 0:
            return np.eye(n)
        last_error: Exception | None = None
        for attempt in range(cls._MAX_ATTEMPTS):
            # A seed fixed by (n, s, attempt) makes the construction a pure
            # function of the code parameters.
            # reprolint: allow[RNG001] reason=seed is a pure function of the code parameters; the construction is deterministic
            rng = np.random.default_rng(np.random.SeedSequence(entropy=(n, s, attempt)))
            auxiliary = rng.standard_normal((s, n))
            auxiliary[:, -1] = -auxiliary[:, :-1].sum(axis=1)
            try:
                matrix = cls._solve_rows(n, s, auxiliary)
            except np.linalg.LinAlgError as error:  # pragma: no cover - measure zero
                last_error = error
                continue
            if cls._windows_decode(matrix, n, s, tolerance):
                return matrix
        raise DecodingError(
            "failed to build a Reed-Solomon-style code for "
            f"n={n}, s={s} after {cls._MAX_ATTEMPTS} attempts"
        ) from last_error

    @staticmethod
    def _solve_rows(n: int, s: int, auxiliary: np.ndarray) -> np.ndarray:
        matrix = np.zeros((n, n))
        for i in range(n):
            window = (i + np.arange(s + 1)) % n
            head, tail = window[0], window[1:]
            coefficients = np.linalg.solve(auxiliary[:, tail], -auxiliary[:, head])
            matrix[i, head] = 1.0
            matrix[i, tail] = coefficients
        return matrix

    @staticmethod
    def _windows_decode(matrix: np.ndarray, n: int, s: int, tolerance: float) -> bool:
        """Check that every cyclic window of ``n - s`` rows spans the all-ones vector."""
        probe = LinearGradientCode(matrix, decoding_tolerance=tolerance)
        for start in range(n):
            survivors = [(start + offset) % n for offset in range(n - s)]
            if not probe.is_decodable(survivors):
                return False
        return True

    @property
    def recovery_threshold(self) -> int:
        """Worst-case number of workers the master waits for: ``n - s``."""
        return self.num_workers - self.num_stragglers
