"""Distributed gradient-descent schemes (the paper's core subject).

A *scheme* decides three things:

1. **Placement** — which data units each worker processes (a unit is a
   training example, or a batch treated as a "super example" as in the
   paper's experiments).
2. **Encoding** — how a worker turns the partial gradients of its units into
   the message it sends the master.
3. **Aggregation** — when the master has heard from enough workers, and how
   it reconstructs the full gradient from the messages it kept.

Calling :meth:`Scheme.build_plan` freezes the (possibly random) placement for
a job and returns an :class:`ExecutionPlan`, which both the discrete-event
simulator (:mod:`repro.simulation`) and the multiprocessing runtime
(:mod:`repro.runtime`) consume.

Available schemes:

* :class:`BCCScheme` — the paper's Batched Coupon's Collector (Section III).
* :class:`UncodedScheme` — disjoint split, wait for all workers.
* :class:`SimpleRandomizedScheme` — random subsets, per-example messages
  (the "prior art" baseline of Eq. 5–6).
* :class:`CyclicRepetitionScheme`, :class:`ReedSolomonScheme`,
  :class:`FractionalRepetitionScheme` — the coding-theoretic baselines
  (references [7]–[9]).
* :class:`GeneralizedBCCScheme` — the heterogeneous extension (Section IV).
* :class:`LoadBalancedScheme` — the heterogeneous "LB" baseline of Fig. 5.
"""

from repro.schemes.base import (
    Scheme,
    ExecutionPlan,
    MasterAggregator,
    CountAggregator,
    BatchCoverageAggregator,
    UnitCoverageAggregator,
    CodedAggregator,
)
from repro.schemes.bcc import BCCScheme
from repro.schemes.uncoded import UncodedScheme
from repro.schemes.randomized import SimpleRandomizedScheme
from repro.schemes.coded import (
    CyclicRepetitionScheme,
    ReedSolomonScheme,
    FractionalRepetitionScheme,
)
from repro.schemes.heterogeneous import GeneralizedBCCScheme, LoadBalancedScheme
from repro.schemes.approximate import IgnoreStragglersScheme, PartialSumAggregator
from repro.schemes.registry import (
    register_scheme,
    available_schemes,
    get_scheme_class,
    scheme_accepts,
    scheme_from_config,
    scheme_registry,
    make_scheme,
)

__all__ = [
    "Scheme",
    "ExecutionPlan",
    "MasterAggregator",
    "CountAggregator",
    "BatchCoverageAggregator",
    "UnitCoverageAggregator",
    "CodedAggregator",
    "BCCScheme",
    "UncodedScheme",
    "SimpleRandomizedScheme",
    "CyclicRepetitionScheme",
    "ReedSolomonScheme",
    "FractionalRepetitionScheme",
    "GeneralizedBCCScheme",
    "LoadBalancedScheme",
    "IgnoreStragglersScheme",
    "PartialSumAggregator",
    "register_scheme",
    "available_schemes",
    "get_scheme_class",
    "scheme_accepts",
    "scheme_from_config",
    "scheme_registry",
    "make_scheme",
]
