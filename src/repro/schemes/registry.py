"""A small factory so experiments and the CLI-style examples can name schemes by string."""

from __future__ import annotations

from typing import Callable, Dict

from repro.exceptions import ConfigurationError
from repro.schemes.approximate import IgnoreStragglersScheme
from repro.schemes.base import Scheme
from repro.schemes.bcc import BCCScheme
from repro.schemes.coded import (
    CyclicRepetitionScheme,
    FractionalRepetitionScheme,
    ReedSolomonScheme,
)
from repro.schemes.randomized import SimpleRandomizedScheme
from repro.schemes.uncoded import UncodedScheme

__all__ = ["scheme_registry", "make_scheme"]


def scheme_registry() -> Dict[str, Callable[..., Scheme]]:
    """Mapping from scheme name to constructor.

    The heterogeneous schemes (generalized BCC, load balanced) are not listed
    because they require a cluster or explicit loads; construct them directly.
    """
    return {
        "bcc": BCCScheme,
        "uncoded": lambda load=None: UncodedScheme(),
        "randomized": SimpleRandomizedScheme,
        "cyclic-repetition": CyclicRepetitionScheme,
        "reed-solomon": ReedSolomonScheme,
        "fractional-repetition": FractionalRepetitionScheme,
        "ignore-stragglers": lambda load=None: IgnoreStragglersScheme(),
    }


def make_scheme(name: str, load: int = 1) -> Scheme:
    """Construct a homogeneous scheme by name.

    Parameters
    ----------
    name:
        One of ``bcc``, ``uncoded``, ``randomized``, ``cyclic-repetition``,
        ``reed-solomon``, ``fractional-repetition``.
    load:
        Computational load ``r`` (ignored by the uncoded scheme).
    """
    registry = scheme_registry()
    if name not in registry:
        raise ConfigurationError(
            f"unknown scheme {name!r}; available: {sorted(registry)}"
        )
    if name == "uncoded":
        return registry[name]()
    return registry[name](load)
