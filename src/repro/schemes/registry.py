"""Config-driven scheme registry.

Schemes register themselves with the :func:`register_scheme` decorator::

    @register_scheme("bcc")
    class BCCScheme(Scheme):
        ...

and become nameable everywhere a configuration is accepted — the
:class:`~repro.api.JobSpec` front door, the sweep engine, and the CLI::

    scheme_from_config("uncoded")
    scheme_from_config({"name": "bcc", "load": 10})
    scheme_from_config({"name": "generalized-bcc"}, cluster=my_cluster)

Construction goes through :meth:`Scheme.from_config`, which validates every
key against the scheme's constructor (inapplicable parameters raise
:class:`~repro.exceptions.ConfigurationError` rather than being silently
dropped) and injects the ambient cluster into the heterogeneous schemes.

:func:`make_scheme` and :func:`scheme_registry` are the legacy entry points
kept as thin deprecated shims; new code should use
:func:`scheme_from_config` / :func:`available_schemes`.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Mapping, Optional, Type, Union

from repro.exceptions import ConfigurationError
from repro.schemes.base import Scheme

__all__ = [
    "register_scheme",
    "available_schemes",
    "get_scheme_class",
    "scheme_accepts",
    "scheme_from_config",
    "scheme_registry",
    "make_scheme",
]

#: A value that can be resolved into a scheme: an instance, a registered
#: name, or a config mapping with a ``name`` key plus constructor kwargs.
SchemeLike = Union[Scheme, str, Mapping[str, object]]

_REGISTRY: Dict[str, Type[Scheme]] = {}


def register_scheme(
    name: Optional[str] = None,
) -> Callable[[Type[Scheme]], Type[Scheme]]:
    """Class decorator registering a :class:`Scheme` under ``name``.

    ``name`` defaults to the class's ``name`` attribute. Registering two
    different classes under one name is a configuration error; re-decorating
    the same class (e.g. on module reload) is harmless.
    """

    def decorator(cls: Type[Scheme]) -> Type[Scheme]:
        key = name if name is not None else cls.name
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise ConfigurationError(
                f"scheme name {key!r} is already registered to "
                f"{existing.__name__}"
            )
        _REGISTRY[key] = cls
        cls.name = key
        return cls

    return decorator


def available_schemes() -> List[str]:
    """Sorted names of every registered scheme (homogeneous and heterogeneous)."""
    return sorted(_REGISTRY)


def get_scheme_class(name: str) -> Type[Scheme]:
    """Look up a registered scheme class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {name!r}; available: {available_schemes()}"
        ) from None


def scheme_accepts(name: str, parameter: str) -> bool:
    """Whether the named scheme's constructor takes ``parameter``."""
    return parameter in get_scheme_class(name).constructor_parameters()


def scheme_from_config(
    config: SchemeLike,
    *,
    cluster: Optional[object] = None,
    **kwargs: object,
) -> Scheme:
    """Resolve a scheme instance from a name, config mapping, or instance.

    Parameters
    ----------
    config:
        A :class:`Scheme` instance (returned unchanged), a registered scheme
        name, or a mapping with a ``name`` key whose remaining keys are
        constructor arguments.
    cluster:
        Ambient cluster, forwarded to :meth:`Scheme.from_config` so the
        heterogeneous schemes (``generalized-bcc``, ``load-balanced``) can
        derive their per-worker loads from it.
    kwargs:
        Extra constructor arguments merged over the config mapping.
    """
    if isinstance(config, Scheme):
        if kwargs:
            raise ConfigurationError(
                "cannot apply configuration overrides to an already-built "
                f"scheme instance {config!r}"
            )
        return config
    if isinstance(config, str):
        return get_scheme_class(config).from_config(kwargs, cluster=cluster)
    if isinstance(config, Mapping):
        options = dict(config)
        name = options.pop("name", None)
        if not isinstance(name, str):
            raise ConfigurationError(
                "a scheme config mapping needs a string 'name' key; got "
                f"{config!r}"
            )
        options.update(kwargs)
        return get_scheme_class(name).from_config(options, cluster=cluster)
    raise ConfigurationError(
        f"cannot build a scheme from {type(config).__name__}; expected a "
        "Scheme, a registered name, or a config mapping"
    )


# --------------------------------------------------------------------------- #
# Legacy shims
# --------------------------------------------------------------------------- #
#: Names the pre-registry factory exposed; the heterogeneous schemes are
#: excluded because they cannot be built from a bare ``load``.
_LEGACY_NAMES = (
    "bcc",
    "uncoded",
    "randomized",
    "cyclic-repetition",
    "reed-solomon",
    "fractional-repetition",
    "ignore-stragglers",
)


_DEPRECATION_POINTER = (
    "see the scheme-registry page of the documentation site "
    "(docs/registry.rst) for the replacement API"
)


def scheme_registry() -> Dict[str, Callable[..., Scheme]]:
    """Deprecated mapping from legacy scheme name to constructor.

    Kept for backward compatibility with the pre-``register_scheme`` API; it
    lists only the schemes constructible from a bare ``load``. New code
    should use :func:`available_schemes` and :func:`scheme_from_config`.

    .. deprecated::
        Use :func:`available_schemes` / :func:`scheme_from_config`.
    """
    warnings.warn(
        "scheme_registry() is deprecated; use available_schemes() and "
        f"scheme_from_config() instead — {_DEPRECATION_POINTER}",
        DeprecationWarning,
        stacklevel=2,
    )

    def legacy_constructor(key: str) -> Callable[..., Scheme]:
        def build(load: Optional[int] = None) -> Scheme:
            return make_scheme(key) if load is None else make_scheme(key, load=load)

        return build

    return {key: legacy_constructor(key) for key in _LEGACY_NAMES}


def make_scheme(name: str, load: int = 1, **kwargs: object) -> Scheme:
    """Construct a scheme by name (deprecated shim over the config registry).

    .. deprecated::
        Use :func:`scheme_from_config` — it validates every parameter against
        the scheme's constructor instead of silently ignoring them.

    Parameters
    ----------
    name:
        Any registered scheme name (see :func:`available_schemes`).
    load:
        Computational load ``r`` for the schemes that take one. Passing a
        non-default load to a scheme without a ``load`` parameter warns and
        ignores it (the historical behaviour); the strict path is
        :func:`scheme_from_config`, which raises instead.
    kwargs:
        Additional constructor arguments — e.g.
        ``make_scheme("generalized-bcc", loads=[2, 0, 3])`` or
        ``make_scheme("load-balanced", cluster=my_cluster)`` — so the
        heterogeneous schemes are constructible by name too.
    """
    warnings.warn(
        "make_scheme() is deprecated; use scheme_from_config() instead — "
        f"{_DEPRECATION_POINTER}",
        DeprecationWarning,
        stacklevel=2,
    )
    cls = get_scheme_class(name)
    options: Dict[str, object] = dict(kwargs)
    cluster = options.pop("cluster", None)
    if "load" in cls.constructor_parameters():
        options.setdefault("load", load)
    elif load != 1:
        warnings.warn(
            f"scheme {name!r} takes no computational load; ignoring load={load} "
            "(scheme_from_config raises on inapplicable parameters)",
            UserWarning,
            stacklevel=2,
        )
    return cls.from_config(options, cluster=cluster)
