"""Coding-theoretic baselines: cyclic repetition, Reed-Solomon style, fractional repetition.

These are the straggler-mitigation schemes the paper compares against
(references [7]–[9]). All three operate on ``m = n`` data partitions (when
the job has more units than workers the caller groups units into ``n``
partitions first — the simulator and runtime do this automatically via the
unit granularity), tolerate ``s = load - 1`` stragglers in the worst case,
and send a single coded vector per worker, so ``K = L = n - s = m - r + 1``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.thresholds import (
    cyclic_repetition_communication_load,
    cyclic_repetition_recovery_threshold,
)
from repro.coding.cyclic_repetition import CyclicRepetitionCode
from repro.coding.fractional import FractionalRepetitionCode
from repro.coding.linear_code import LinearGradientCode
from repro.coding.reed_solomon import ReedSolomonStyleCode
from repro.cluster.spec import ClusterSpec
from repro.analysis.analytic import (
    AnalyticIteration,
    DEFAULT_QUANTILES,
    fractional_group_runtime,
    homogeneous_compute_parameters,
    order_statistic_runtime,
    transfer_parameters,
)
from repro.exceptions import ConfigurationError
from repro.schemes.base import CodedAggregator, ExecutionPlan, Scheme
from repro.schemes.registry import register_scheme
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "CyclicRepetitionScheme",
    "ReedSolomonScheme",
    "FractionalRepetitionScheme",
]


class _LinearCodeScheme(Scheme):
    """Shared plumbing for schemes backed by a :class:`LinearGradientCode`.

    Parameters
    ----------
    load:
        Computational load ``r``; the code tolerates ``r - 1`` stragglers.
    check_every:
        Run the master's (O(n^3) rank) decodability test only every this many
        arrivals once the worst-case threshold ``n - s`` is reached. ``1``
        (the default) checks every arrival past the threshold.
    """

    name = "linear-code"

    def __init__(self, load: int, check_every: int = 1) -> None:
        self.load = check_positive_int(load, "load")
        self.check_every = check_positive_int(check_every, "check_every")

    # Subclasses build the concrete code for ``num_workers`` workers.
    def _build_code(self, num_workers: int, rng: RandomState) -> LinearGradientCode:
        raise NotImplementedError

    def build_plan(
        self, num_units: int, num_workers: int, rng: RandomState = None
    ) -> ExecutionPlan:
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        if m != n:
            raise ConfigurationError(
                f"{self.name} operates on one data partition per worker "
                f"(m = n); got m={m}, n={n}. Group the units into n partitions "
                "first (the simulator's unit granularity does this)."
            )
        if self.load > m:
            raise ConfigurationError(
                f"load {self.load} exceeds the number of data units {m}"
            )
        code = self._build_code(n, rng)
        assignment = code.to_assignment()

        check_every = self.check_every

        def aggregator_factory() -> CodedAggregator:
            return CodedAggregator(code=code, check_every=check_every)

        def encoder(worker: int, unit_gradients: np.ndarray) -> np.ndarray:
            support = code.support(worker)
            coefficients = code.encoding_matrix[worker, support]
            return coefficients @ unit_gradients

        return ExecutionPlan(
            scheme_name=self.name,
            num_units=m,
            unit_assignment=assignment,
            message_sizes=np.ones(n),
            aggregator_factory=aggregator_factory,
            encoder=encoder,
            metadata={"code": code, "load": self.load},
        )

    def _check_analytic_dimensions(self, num_units: int, num_workers: int) -> None:
        m = check_positive_int(num_units, "num_units")
        if m != num_workers:
            raise ConfigurationError(
                f"{self.name} operates on one data partition per worker "
                f"(m = n); got m={m}, n={num_workers}. Group the units into "
                "n partitions first (the simulator's unit granularity does this)."
            )
        if self.load > m:
            raise ConfigurationError(
                f"load {self.load} exceeds the number of data units {m}"
            )

    def analytic_runtime(
        self,
        cluster: ClusterSpec,
        num_units: int,
        *,
        unit_size: int = 1,
        serialize_master_link: bool = True,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> AnalyticIteration:
        """Closed form: the ``(n - r + 1)``-th order statistic of the arrivals.

        The worst-case code designs decode after exactly ``n - s = n - r + 1``
        workers regardless of which workers straggle, so the stopping index
        is deterministic and the iteration time is a plain order statistic.
        """
        n = cluster.num_workers
        self._check_analytic_dimensions(num_units, n)
        det_e, tail_e = homogeneous_compute_parameters(cluster)
        fixed, jitter = transfer_parameters(cluster.communication, 1.0)
        examples = self.load * unit_size
        return order_statistic_runtime(
            scheme=self.name,
            num_workers=n,
            threshold=float(n - self.load + 1),
            compute_deterministic=det_e * examples,
            compute_tail_mean=tail_e * examples,
            transfer_fixed=fixed,
            transfer_jitter_mean=jitter,
            message_size=1.0,
            serialize_master_link=serialize_master_link,
            quantiles=quantiles,
        )

    def expected_recovery_threshold(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return cyclic_repetition_recovery_threshold(num_units, self.load)

    def expected_communication_load(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return cyclic_repetition_communication_load(num_units, self.load)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(load={self.load})"


@register_scheme("cyclic-repetition")
class CyclicRepetitionScheme(_LinearCodeScheme):
    """The cyclic-repetition gradient-coding scheme of Tandon et al. [7].

    Each worker holds ``load`` cyclically consecutive partitions and sends a
    designed linear combination of their gradient sums; the master decodes
    after hearing from the fastest ``n - load + 1`` workers regardless of
    which ``load - 1`` workers straggle.
    """

    name = "cyclic-repetition"

    def _build_code(self, num_workers: int, rng: RandomState) -> LinearGradientCode:
        # The coefficient draw is part of the (offline) code design; derive it
        # from the supplied generator so runs remain reproducible.
        seed = as_generator(rng)
        return CyclicRepetitionCode.from_load(num_workers, self.load, seed=seed)


@register_scheme("reed-solomon")
class ReedSolomonScheme(_LinearCodeScheme):
    """Deterministic Reed-Solomon-style variant (references [8], [9]).

    Identical load / threshold to the cyclic-repetition scheme; the code
    coefficients are deterministic rather than randomly drawn.
    """

    name = "reed-solomon"

    def _build_code(self, num_workers: int, rng: RandomState) -> LinearGradientCode:
        return ReedSolomonStyleCode(num_workers, self.load - 1)


@register_scheme("fractional-repetition")
class FractionalRepetitionScheme(_LinearCodeScheme):
    """The fractional-repetition scheme of Tandon et al. [7].

    Requires ``load | n``. Workers are organised into ``load`` groups that
    each replicate the whole dataset; the master decodes as soon as one group
    has fully reported — guaranteed within ``n - load + 1`` arrivals but
    frequently earlier (the opportunistic behaviour noted in the paper's
    footnote 2).
    """

    name = "fractional-repetition"

    def _build_code(self, num_workers: int, rng: RandomState) -> LinearGradientCode:
        return FractionalRepetitionCode(num_workers, self.load - 1)

    def analytic_runtime(
        self,
        cluster: ClusterSpec,
        num_units: int,
        *,
        unit_size: int = 1,
        serialize_master_link: bool = True,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> AnalyticIteration:
        """Closed form for the opportunistic stopping rule.

        The master decodes when the first of the ``r`` replication groups has
        fully reported, i.e. at the *minimum over groups of the group-wise
        maximum* — an alternating harmonic sum in closed form (parallel
        link), or the exact expected stopping index fed to the serialised
        recurrence (serialised link). This is the opportunistic behaviour of
        the paper's footnote 2, frequently much earlier than the worst-case
        ``n - r + 1``.
        """
        n = cluster.num_workers
        self._check_analytic_dimensions(num_units, n)
        if n % self.load != 0:
            raise ConfigurationError(
                f"the fractional repetition scheme requires (s + 1) | n; "
                f"got n={n}, s={self.load - 1}"
            )
        det_e, tail_e = homogeneous_compute_parameters(cluster)
        fixed, jitter = transfer_parameters(cluster.communication, 1.0)
        examples = self.load * unit_size
        return fractional_group_runtime(
            scheme=self.name,
            num_groups=self.load,
            group_size=n // self.load,
            compute_deterministic=det_e * examples,
            compute_tail_mean=tail_e * examples,
            transfer_fixed=fixed,
            transfer_jitter_mean=jitter,
            message_size=1.0,
            serialize_master_link=serialize_master_link,
            quantiles=quantiles,
        )
