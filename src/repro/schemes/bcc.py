"""The Batched Coupon's Collector scheme (paper Section III)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.thresholds import bcc_communication_load, bcc_recovery_threshold
from repro.coding.placement import bcc_placement
from repro.datasets.batching import contiguous_partition
from repro.cluster.spec import ClusterSpec
from repro.analysis.analytic import (
    AnalyticIteration,
    DEFAULT_QUANTILES,
    coupon_threshold_pmf,
    homogeneous_compute_parameters,
    order_statistic_runtime,
    transfer_parameters,
)
from repro.analysis.coupon import harmonic_number
from repro.exceptions import ConfigurationError
from repro.schemes.registry import register_scheme
from repro.schemes.base import (
    BatchCoverageAggregator,
    ExecutionPlan,
    Scheme,
    sum_encoder,
)
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int

__all__ = ["BCCScheme"]


@register_scheme("bcc")
class BCCScheme(Scheme):
    """Batched Coupon's Collector distributed gradient descent.

    Parameters
    ----------
    load:
        The computational load ``r``: the number of data units in each batch,
        i.e. the number of units every worker processes. The units are
        partitioned into ``ceil(m/r)`` batches; each worker independently
        selects one batch uniformly at random, computes the sum of its
        partial gradients and sends that single vector to the master. The
        master keeps the first message per batch and stops as soon as every
        batch is covered.

    Notes
    -----
    * The placement is decentralised: worker choices are i.i.d. uniform, so a
      fresh plan can be drawn without any coordination (the paper's
      "scalability" property). :meth:`Scheme.build_feasible_plan` re-draws in
      the rare event that some batch was selected by nobody.
    * The analytical recovery threshold is
      ``K_BCC(r) = ceil(m/r) * H_{ceil(m/r)}`` and the communication load
      equals it, since every message has unit size (Theorem 1).
    * When ``load`` does not divide the number of units, the paper zero-pads
      the last batch so every worker processes exactly ``r`` units. Padding
      with fake data is pointless in an implementation, so the units are
      instead split into ``ceil(m/r)`` *balanced* batches (sizes differing by
      at most one, all ``<= load``), which keeps the workers statistically
      exchangeable — the property the zero-padding exists to provide.
    """

    name = "bcc"

    def __init__(self, load: int) -> None:
        self.load = check_positive_int(load, "load")

    # ------------------------------------------------------------------ #
    def build_plan(
        self, num_units: int, num_workers: int, rng: RandomState = None
    ) -> ExecutionPlan:
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        if self.load > m:
            raise ConfigurationError(
                f"load {self.load} exceeds the number of data units {m}"
            )
        num_batches = -(-m // self.load)
        if num_batches > n:
            raise ConfigurationError(
                f"BCC needs at least as many workers as batches; got "
                f"{num_batches} batches for {n} workers (increase the load)"
            )
        batch_spec = contiguous_partition(m, num_batches)
        assignment, batch_choices = bcc_placement(batch_spec, n, rng)

        worker_batches = [int(b) for b in batch_choices]

        def aggregator_factory() -> BatchCoverageAggregator:
            return BatchCoverageAggregator(
                num_batches=batch_spec.num_batches, worker_batches=worker_batches
            )

        return ExecutionPlan(
            scheme_name=self.name,
            num_units=m,
            unit_assignment=assignment,
            message_sizes=np.ones(n),
            aggregator_factory=aggregator_factory,
            encoder=sum_encoder,
            metadata={
                "batch_spec": batch_spec,
                "batch_choices": np.asarray(batch_choices, dtype=int),
                "load": self.load,
            },
        )

    # ------------------------------------------------------------------ #
    def analytic_runtime(
        self,
        cluster: ClusterSpec,
        num_units: int,
        *,
        unit_size: int = 1,
        serialize_master_link: bool = True,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> AnalyticIteration:
        """Closed form: coupon-collector stopping index over i.i.d. arrivals.

        The batch ids arriving at the master are i.i.d. uniform over the
        ``N = ceil(m/r)`` batches, so the recovery threshold is the classic
        coupon-collector stopping time — evaluated as its exact distribution
        conditioned on feasibility (``K <= n``) via the collected-types
        Markov chain (:func:`~repro.analysis.analytic.coupon_threshold_pmf`),
        else as the ``N H_N`` mean capped at ``n``. The iteration time is the
        corresponding mixture of arrival order statistics.
        """
        m = check_positive_int(num_units, "num_units")
        n = cluster.num_workers
        if self.load > m:
            raise ConfigurationError(
                f"load {self.load} exceeds the number of data units {m}"
            )
        num_batches = -(-m // self.load)
        if num_batches > n:
            raise ConfigurationError(
                f"BCC needs at least as many workers as batches; got "
                f"{num_batches} batches for {n} workers (increase the load)"
            )
        det_e, tail_e = homogeneous_compute_parameters(cluster)
        fixed, jitter = transfer_parameters(cluster.communication, 1.0)
        # Balanced batches hold m/N units on average (exactly r when r | m).
        examples = (m / num_batches) * unit_size
        pmf = coupon_threshold_pmf(num_batches, n)
        threshold = (
            pmf
            if pmf is not None
            else min(num_batches * harmonic_number(num_batches), float(n))
        )
        return order_statistic_runtime(
            scheme=self.name,
            num_workers=n,
            threshold=threshold,
            compute_deterministic=det_e * examples,
            compute_tail_mean=tail_e * examples,
            transfer_fixed=fixed,
            transfer_jitter_mean=jitter,
            message_size=1.0,
            serialize_master_link=serialize_master_link,
            quantiles=quantiles,
            details={"num_batches": float(num_batches)},
        )

    def expected_recovery_threshold(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return bcc_recovery_threshold(num_units, self.load)

    def expected_communication_load(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return bcc_communication_load(num_units, self.load)

    def __repr__(self) -> str:
        return f"BCCScheme(load={self.load})"
