"""Heterogeneous-cluster schemes (paper Section IV)."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.cluster.allocation import (
    load_balanced_allocation,
    solve_p2_allocation,
)
from repro.cluster.spec import ClusterSpec
from repro.coding.placement import heterogeneous_random_placement
from repro.coding.assignment import DataAssignment
from repro.analysis.analytic import (
    AnalyticIteration,
    DEFAULT_QUANTILES,
    coverage_runtime,
    maximum_runtime,
    transfer_parameters,
    worker_compute_parameters,
)
from repro.exceptions import AnalyticIntractableError, ConfigurationError
from repro.schemes.base import (
    CountAggregator,
    ExecutionPlan,
    Scheme,
    UnitCoverageAggregator,
    identity_encoder,
    sum_encoder,
)
from repro.schemes.registry import register_scheme
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["GeneralizedBCCScheme", "LoadBalancedScheme"]


@register_scheme("generalized-bcc")
class GeneralizedBCCScheme(Scheme):
    """The generalized BCC scheme for heterogeneous clusters.

    Worker ``i`` independently selects ``loads[i]`` units uniformly at random
    (without replacement, the placement ``G0`` of the Theorem 2 proof) and —
    following the paper's Section IV system model — communicates each of its
    computed partial gradients separately. The master stops as soon as it has
    received at least one copy of every unit's gradient ("coverage").

    The per-worker loads can be given explicitly, or derived from a
    :class:`~repro.cluster.ClusterSpec` by solving the load-allocation
    problem P2 with the inflated target ``floor(c m log m)`` from Theorem 2
    (``target_scale`` overrides the multiplier ``c log m`` if desired).

    Parameters
    ----------
    loads:
        Explicit per-worker loads; mutually exclusive with ``cluster``.
    cluster:
        Cluster description used to compute P2-optimal loads.
    target_scale:
        When deriving loads from a cluster, the target is
        ``ceil(target_scale * m)``; defaults to ``log m`` (i.e. the paper's
        ``m log m`` target with ``c`` folded into the bound evaluation).
    """

    name = "generalized-bcc"

    def __init__(
        self,
        loads: Optional[Sequence[int]] = None,
        cluster: Optional[ClusterSpec] = None,
        target_scale: Optional[float] = None,
    ) -> None:
        if (loads is None) == (cluster is None):
            raise ConfigurationError(
                "provide exactly one of `loads` or `cluster` to GeneralizedBCCScheme"
            )
        self._explicit_loads = None if loads is None else np.asarray(loads, dtype=int)
        if self._explicit_loads is not None and np.any(self._explicit_loads < 0):
            raise ConfigurationError("loads must be non-negative")
        self.cluster = cluster
        self.target_scale = target_scale

    # ------------------------------------------------------------------ #
    def resolve_loads(self, num_units: int, num_workers: int) -> np.ndarray:
        """Return the per-worker loads the plan will use."""
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        if self._explicit_loads is not None:
            if self._explicit_loads.shape[0] != n:
                raise ConfigurationError(
                    f"explicit loads have length {self._explicit_loads.shape[0]} "
                    f"but the plan has {n} workers"
                )
            return np.minimum(self._explicit_loads, m)
        assert self.cluster is not None
        if self.cluster.num_workers != n:
            raise ConfigurationError(
                f"the cluster has {self.cluster.num_workers} workers but the "
                f"plan needs {n}"
            )
        scale = self.target_scale if self.target_scale is not None else math.log(max(m, 2))
        target = max(int(math.ceil(scale * m)), m)
        allocation = solve_p2_allocation(self.cluster, target=target, max_load=m)
        return allocation.loads

    def build_plan(
        self, num_units: int, num_workers: int, rng: RandomState = None
    ) -> ExecutionPlan:
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        loads = self.resolve_loads(m, n)
        generator = as_generator(rng)
        assignment = heterogeneous_random_placement(m, loads, generator)

        def aggregator_factory() -> UnitCoverageAggregator:
            return UnitCoverageAggregator(num_units=m, assignment=assignment)

        return ExecutionPlan(
            scheme_name=self.name,
            num_units=m,
            unit_assignment=assignment,
            message_sizes=assignment.loads.astype(float),
            aggregator_factory=aggregator_factory,
            encoder=identity_encoder,
            metadata={"loads": loads},
        )

    def analytic_runtime(
        self,
        cluster: ClusterSpec,
        num_units: int,
        *,
        unit_size: int = 1,
        serialize_master_link: bool = True,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> AnalyticIteration:
        """Coverage closed form for heterogeneous random placements.

        A unit is uncovered at time ``t`` with probability
        ``prod_i (1 - (l_i/m) F_i(t))`` over the workers' arrival CDFs; the
        Poissonised completion CDF ``(1 - rho)^m`` is integrated by
        deterministic quadrature (see
        :func:`~repro.analysis.analytic.coverage_runtime`). Only the parallel
        master link is covered — serialising heterogeneous per-unit messages
        has no tractable form.
        """
        if serialize_master_link:
            raise AnalyticIntractableError(
                "the generalized BCC coverage rule has no closed form under a "
                "serialised master link; use serialize_master_link=False or a "
                "simulation backend"
            )
        m = check_positive_int(num_units, "num_units")
        n = cluster.num_workers
        loads = self.resolve_loads(m, n)
        arrival = []
        compute = []
        for worker in range(n):
            det_e, tail_e = worker_compute_parameters(cluster.workers[worker].compute)
            examples = int(loads[worker]) * unit_size
            fixed, jitter = transfer_parameters(
                cluster.communication, float(loads[worker])
            )
            compute.append((det_e * examples, tail_e * examples))
            arrival.append((det_e * examples + fixed, tail_e * examples + jitter))
        return coverage_runtime(
            scheme=self.name,
            num_units=m,
            worker_loads=loads,
            arrival_parameters=arrival,
            compute_parameters=compute,
            quantiles=quantiles,
            details={"total_load": float(np.sum(loads))},
        )

    def __repr__(self) -> str:
        source = "explicit" if self._explicit_loads is not None else "cluster-p2"
        return f"GeneralizedBCCScheme(loads={source})"


@register_scheme("load-balanced")
class LoadBalancedScheme(Scheme):
    """The "LB" baseline of the paper's Fig. 5.

    The units are split *without repetition* across the workers, with worker
    ``i`` receiving a share proportional to its speed (straggling parameter).
    Because there is no redundancy, the master must wait for every worker
    that holds at least one unit. Workers send the per-unit gradients
    (matching the Section IV uncoded communication model), though with a
    disjoint placement a summed message would be equivalent for recovery.
    """

    name = "load-balanced"

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        loads: Optional[Sequence[int]] = None,
    ) -> None:
        if (loads is None) == (cluster is None):
            raise ConfigurationError(
                "provide exactly one of `loads` or `cluster` to LoadBalancedScheme"
            )
        self.cluster = cluster
        self._explicit_loads = None if loads is None else np.asarray(loads, dtype=int)

    def resolve_loads(self, num_units: int, num_workers: int) -> np.ndarray:
        """Per-worker share sizes (they sum to ``num_units``)."""
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        if self._explicit_loads is not None:
            loads = self._explicit_loads
            if loads.shape[0] != n:
                raise ConfigurationError(
                    f"explicit loads have length {loads.shape[0]} but the plan "
                    f"has {n} workers"
                )
            if int(loads.sum()) != m:
                raise ConfigurationError(
                    "load-balanced loads must sum to the number of units "
                    f"({int(loads.sum())} != {m})"
                )
            return loads
        assert self.cluster is not None
        if self.cluster.num_workers != n:
            raise ConfigurationError(
                f"the cluster has {self.cluster.num_workers} workers but the "
                f"plan needs {n}"
            )
        return load_balanced_allocation(self.cluster, m).loads

    def build_plan(
        self, num_units: int, num_workers: int, rng: RandomState = None
    ) -> ExecutionPlan:
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        loads = self.resolve_loads(m, n)
        boundaries = np.concatenate([[0], np.cumsum(loads)])
        assignments = tuple(
            np.arange(boundaries[i], boundaries[i + 1]) for i in range(n)
        )
        assignment = DataAssignment(num_examples=m, assignments=assignments)
        required = [i for i in range(n) if loads[i] > 0]

        def aggregator_factory() -> CountAggregator:
            return CountAggregator(required_workers=required)

        # With a disjoint placement the master can aggregate summed messages,
        # mirroring the uncoded scheme's communication (one unit per worker).
        return ExecutionPlan(
            scheme_name=self.name,
            num_units=m,
            unit_assignment=assignment,
            message_sizes=(loads > 0).astype(float),
            aggregator_factory=aggregator_factory,
            encoder=sum_encoder,
            metadata={"loads": loads},
        )

    def analytic_runtime(
        self,
        cluster: ClusterSpec,
        num_units: int,
        *,
        unit_size: int = 1,
        serialize_master_link: bool = True,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> AnalyticIteration:
        """Group-wise maximum over every worker that holds at least one unit.

        The disjoint placement makes the iteration end at the maximum of the
        active workers' independent arrivals; the product-of-CDFs survival
        function is integrated exactly (workers with identical speed and
        load collapse into groups contributing a power of their shared CDF).
        Parallel master link only.
        """
        if serialize_master_link:
            raise AnalyticIntractableError(
                "the load-balanced closed form covers the parallel master "
                "link only; use serialize_master_link=False or a simulation "
                "backend"
            )
        m = check_positive_int(num_units, "num_units")
        n = cluster.num_workers
        loads = self.resolve_loads(m, n)
        fixed, jitter = transfer_parameters(cluster.communication, 1.0)
        arrival = []
        compute = []
        for worker in range(n):
            if loads[worker] <= 0:
                continue
            det_e, tail_e = worker_compute_parameters(cluster.workers[worker].compute)
            examples = int(loads[worker]) * unit_size
            compute.append((det_e * examples, tail_e * examples))
            arrival.append((det_e * examples + fixed, tail_e * examples + jitter))
        return maximum_runtime(
            scheme=self.name,
            arrival_parameters=arrival,
            compute_parameters=compute,
            communication_load=float(len(arrival)),
            quantiles=quantiles,
            details={"active_workers": float(len(arrival))},
        )

    def __repr__(self) -> str:
        source = "explicit" if self._explicit_loads is not None else "cluster-proportional"
        return f"LoadBalancedScheme(loads={source})"
