"""The uncoded baseline: disjoint split, wait for every worker."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.thresholds import (
    uncoded_communication_load,
    uncoded_recovery_threshold,
)
from repro.coding.placement import uncoded_placement
from repro.schemes.base import CountAggregator, ExecutionPlan, Scheme, sum_encoder
from repro.schemes.registry import register_scheme
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int

__all__ = ["UncodedScheme"]


@register_scheme("uncoded")
class UncodedScheme(Scheme):
    """No redundancy: the units are split evenly and every worker must report.

    Worker ``i`` receives the ``i``-th contiguous block of units, sends the
    sum of its partial gradients, and the master waits for all ``n`` workers
    (``K = L = n``). This is the first baseline in the paper's experiments.
    """

    name = "uncoded"

    def build_plan(
        self, num_units: int, num_workers: int, rng: RandomState = None
    ) -> ExecutionPlan:
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        assignment = uncoded_placement(m, n)

        def aggregator_factory() -> CountAggregator:
            return CountAggregator(required_workers=range(n))

        return ExecutionPlan(
            scheme_name=self.name,
            num_units=m,
            unit_assignment=assignment,
            message_sizes=np.ones(n),
            aggregator_factory=aggregator_factory,
            encoder=sum_encoder,
            metadata={},
        )

    def expected_recovery_threshold(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return uncoded_recovery_threshold(num_units, num_workers)

    def expected_communication_load(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return uncoded_communication_load(num_units, num_workers)
