"""The uncoded baseline: disjoint split, wait for every worker."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.thresholds import (
    uncoded_communication_load,
    uncoded_recovery_threshold,
)
from repro.coding.placement import uncoded_placement
from repro.cluster.spec import ClusterSpec
from repro.analysis.analytic import (
    AnalyticIteration,
    DEFAULT_QUANTILES,
    homogeneous_compute_parameters,
    maximum_runtime,
    order_statistic_runtime,
    transfer_parameters,
)
from repro.exceptions import AnalyticIntractableError
from repro.schemes.base import CountAggregator, ExecutionPlan, Scheme, sum_encoder
from repro.schemes.registry import register_scheme
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int

__all__ = ["UncodedScheme"]


@register_scheme("uncoded")
class UncodedScheme(Scheme):
    """No redundancy: the units are split evenly and every worker must report.

    Worker ``i`` receives the ``i``-th contiguous block of units, sends the
    sum of its partial gradients, and the master waits for all ``n`` workers
    (``K = L = n``). This is the first baseline in the paper's experiments.
    """

    name = "uncoded"

    def build_plan(
        self, num_units: int, num_workers: int, rng: RandomState = None
    ) -> ExecutionPlan:
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        assignment = uncoded_placement(m, n)

        def aggregator_factory() -> CountAggregator:
            return CountAggregator(required_workers=range(n))

        return ExecutionPlan(
            scheme_name=self.name,
            num_units=m,
            unit_assignment=assignment,
            message_sizes=np.ones(n),
            aggregator_factory=aggregator_factory,
            encoder=sum_encoder,
            metadata={},
        )

    def analytic_runtime(
        self,
        cluster: ClusterSpec,
        num_units: int,
        *,
        unit_size: int = 1,
        serialize_master_link: bool = True,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> AnalyticIteration:
        """Closed form: the iteration ends at the *maximum* of ``n`` arrivals.

        With ``n | m`` the workers are exchangeable and the ``n``-th order
        statistic applies directly; an uneven split makes the heavier workers
        a separate group, handled exactly (parallel link) by the group-wise
        product-of-CDFs maximum, and approximately (serialised link) by
        charging every worker the heavier load.
        """
        m = check_positive_int(num_units, "num_units")
        n = cluster.num_workers
        if m < n:
            raise AnalyticIntractableError(
                f"the uncoded scheme needs every worker to hold data; "
                f"m={m} units cannot cover n={n} workers"
            )
        det_e, tail_e = homogeneous_compute_parameters(cluster)
        fixed, jitter = transfer_parameters(cluster.communication, 1.0)
        base, remainder = divmod(m, n)
        if remainder == 0 or serialize_master_link:
            # Serialised + uneven: the heavier workers dominate the queue.
            units = base + (1 if remainder else 0)
            examples = units * unit_size
            return order_statistic_runtime(
                scheme=self.name,
                num_workers=n,
                threshold=float(n),
                compute_deterministic=det_e * examples,
                compute_tail_mean=tail_e * examples,
                transfer_fixed=fixed,
                transfer_jitter_mean=jitter,
                message_size=1.0,
                serialize_master_link=serialize_master_link,
                quantiles=quantiles,
            )
        arrival = []
        compute = []
        for worker in range(n):
            units = base + (1 if worker < remainder else 0)
            examples = units * unit_size
            compute.append((det_e * examples, tail_e * examples))
            arrival.append((det_e * examples + fixed, tail_e * examples + jitter))
        return maximum_runtime(
            scheme=self.name,
            arrival_parameters=arrival,
            compute_parameters=compute,
            communication_load=float(n),
            quantiles=quantiles,
        )

    def expected_recovery_threshold(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return uncoded_recovery_threshold(num_units, num_workers)

    def expected_communication_load(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return uncoded_communication_load(num_units, num_workers)
