"""Scheme, ExecutionPlan and master-side aggregators.

Terminology
-----------
*Unit*
    The granularity at which data is placed and accounted. In the paper's
    EC2 experiments a unit is a batch of 100 examples treated as one "super
    example"; in the purely analytical results a unit is a single example.
    Message sizes are measured in units of one gradient vector regardless.

*Execution plan*
    A frozen placement plus the worker-side encoder and a factory for
    master-side aggregators. One plan is built per training job (the paper
    loads data onto the workers once, before the iterations start); a fresh
    aggregator is created for every iteration.

*Aggregator*
    The master-side state machine for one iteration: it is fed
    ``(worker, message)`` pairs in arrival order, reports when enough
    messages have been received (the scheme's stopping rule) and finally
    decodes the sum of all units' gradients.

Timing-only mode
----------------
The discrete-event simulator often only needs the *stopping rule*, not the
numerical gradient. Aggregators therefore accept ``message=None``; they then
track completion exactly as they would with real messages but skip storage,
and :meth:`MasterAggregator.decode` is unavailable.
"""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.analysis.analytic import AnalyticIteration, DEFAULT_QUANTILES
from repro.coding.assignment import DataAssignment
from repro.coding.linear_code import LinearGradientCode
from repro.exceptions import (
    AnalyticIntractableError,
    ConfigurationError,
    CoverageError,
    DecodingError,
)
from repro.utils.rng import RandomState

__all__ = [
    "MasterAggregator",
    "CountAggregator",
    "BatchCoverageAggregator",
    "UnitCoverageAggregator",
    "CodedAggregator",
    "ExecutionPlan",
    "Scheme",
]


# --------------------------------------------------------------------------- #
# Aggregators
# --------------------------------------------------------------------------- #
class MasterAggregator(abc.ABC):
    """Master-side per-iteration state: stopping rule plus decoding."""

    def __init__(self) -> None:
        self._received_workers: List[int] = []
        self._messages_kept = 0

    # -- stopping rule -------------------------------------------------- #
    @abc.abstractmethod
    def _accept(self, worker: int, message: Optional[np.ndarray]) -> bool:
        """Process one arrival; return True if the message was *kept*."""

    @abc.abstractmethod
    def is_complete(self) -> bool:
        """True once the master can recover the full gradient."""

    @abc.abstractmethod
    def decode(self) -> np.ndarray:
        """Return the *sum* of every unit's gradient (caller divides by ``m``)."""

    # -- shared bookkeeping --------------------------------------------- #
    def receive(self, worker: int, message: Optional[np.ndarray] = None) -> bool:
        """Feed one arrival to the aggregator.

        Parameters
        ----------
        worker:
            Index of the worker whose message arrived.
        message:
            The worker's message, or ``None`` in timing-only mode.

        Returns
        -------
        bool
            ``True`` once the aggregator is complete (this arrival may or may
            not have been the deciding one).
        """
        if self.is_complete():
            # Late arrivals after completion are ignored entirely; the paper's
            # master simply stops listening.
            return True
        self._received_workers.append(int(worker))
        if self._accept(int(worker), message):
            self._messages_kept += 1
        return self.is_complete()

    @property
    def workers_heard(self) -> int:
        """Number of worker messages received before (and including) completion."""
        return len(self._received_workers)

    @property
    def received_workers(self) -> List[int]:
        """Worker indices in arrival order."""
        return list(self._received_workers)

    @property
    def messages_kept(self) -> int:
        """Number of messages the master stored (i.e. did not discard)."""
        return self._messages_kept


class CountAggregator(MasterAggregator):
    """Wait for a fixed set of workers (the uncoded / load-balanced rule).

    The master keeps every message from a worker in ``required_workers`` and
    is complete when all of them have reported. Decoding is a plain sum.
    """

    def __init__(self, required_workers: Sequence[int]) -> None:
        super().__init__()
        self._required = set(int(w) for w in required_workers)
        if not self._required:
            raise CoverageError("CountAggregator needs at least one required worker")
        self._pending = set(self._required)
        self._sum: Optional[np.ndarray] = None

    def _accept(self, worker: int, message: Optional[np.ndarray]) -> bool:
        if worker not in self._pending:
            return False
        self._pending.discard(worker)
        if message is not None:
            message = np.asarray(message, dtype=float)
            self._sum = message.copy() if self._sum is None else self._sum + message
        return True

    @property
    def required_workers(self) -> List[int]:
        """Sorted worker indices the master waits for (the stopping rule)."""
        return sorted(self._required)

    def is_complete(self) -> bool:
        return not self._pending

    def decode(self) -> np.ndarray:
        if not self.is_complete():
            raise DecodingError("cannot decode before all required workers reported")
        if self._sum is None:
            raise DecodingError("decode() is unavailable in timing-only mode")
        return self._sum


class BatchCoverageAggregator(MasterAggregator):
    """The BCC master rule (Section III-A, "Data Aggregation at the Master").

    Each arriving message is the summed gradient of one batch; the master
    keeps the first message per batch, discards repeats, and is complete when
    every batch has been seen. Decoding sums the kept messages.
    """

    def __init__(self, num_batches: int, worker_batches: Sequence[int]) -> None:
        super().__init__()
        if num_batches < 1:
            raise CoverageError("num_batches must be positive")
        self._num_batches = int(num_batches)
        self._worker_batches = [int(b) for b in worker_batches]
        self._seen = np.zeros(self._num_batches, dtype=bool)
        self._sum: Optional[np.ndarray] = None

    def _accept(self, worker: int, message: Optional[np.ndarray]) -> bool:
        batch = self._worker_batches[worker]
        if self._seen[batch]:
            return False
        self._seen[batch] = True
        if message is not None:
            message = np.asarray(message, dtype=float)
            self._sum = message.copy() if self._sum is None else self._sum + message
        return True

    def is_complete(self) -> bool:
        return bool(self._seen.all())

    def decode(self) -> np.ndarray:
        if not self.is_complete():
            raise DecodingError("cannot decode before all batches are covered")
        if self._sum is None:
            raise DecodingError("decode() is unavailable in timing-only mode")
        return self._sum

    @property
    def batches_covered(self) -> int:
        """Number of distinct batches received so far."""
        return int(self._seen.sum())

    @property
    def num_batches(self) -> int:
        """Number of batches that must be covered for completion."""
        return self._num_batches

    @property
    def worker_batches(self) -> List[int]:
        """Batch id each worker's message carries, in worker order."""
        return list(self._worker_batches)


class UnitCoverageAggregator(MasterAggregator):
    """Coverage at unit granularity with per-unit messages.

    Used by the simple randomized scheme and the generalized BCC scheme:
    worker ``i``'s message is the stacked matrix of its units' gradients (one
    row per unit, in the order of its assignment). The master keeps the first
    gradient it sees for each unit and is complete once every unit is
    covered. Decoding sums one kept gradient per unit.
    """

    def __init__(self, num_units: int, assignment: DataAssignment) -> None:
        super().__init__()
        self._num_units = int(num_units)
        self._assignment = assignment
        self._covered = np.zeros(self._num_units, dtype=bool)
        self._unit_gradients: Dict[int, np.ndarray] = {}

    def _accept(self, worker: int, message: Optional[np.ndarray]) -> bool:
        units = self._assignment.worker_indices(worker)
        if units.size == 0:
            return False
        new_units = units[~self._covered[units]]
        if new_units.size == 0:
            return False
        if message is not None:
            message = np.asarray(message, dtype=float)
            if message.ndim != 2 or message.shape[0] != units.size:
                raise DecodingError(
                    f"worker {worker} sent a message of shape {message.shape}; "
                    f"expected ({units.size}, p)"
                )
            position = {int(unit): row for row, unit in enumerate(units)}
            for unit in new_units:
                self._unit_gradients[int(unit)] = message[position[int(unit)]]
        self._covered[new_units] = True
        return True

    def is_complete(self) -> bool:
        return bool(self._covered.all())

    def decode(self) -> np.ndarray:
        if not self.is_complete():
            raise DecodingError("cannot decode before every unit is covered")
        if len(self._unit_gradients) != self._num_units:
            raise DecodingError("decode() is unavailable in timing-only mode")
        return np.sum(
            [self._unit_gradients[unit] for unit in range(self._num_units)], axis=0
        )

    @property
    def units_covered(self) -> int:
        """Number of distinct units received so far."""
        return int(self._covered.sum())

    @property
    def num_units(self) -> int:
        """Number of units that must be covered for completion."""
        return self._num_units

    @property
    def assignment(self) -> DataAssignment:
        """The worker-to-unit placement the coverage rule runs over."""
        return self._assignment


class CodedAggregator(MasterAggregator):
    """Aggregator for linear gradient codes (cyclic repetition, RS, fractional).

    The master stores every received coded message and is complete once the
    received worker set is decodable. For the worst-case designs this happens
    exactly when ``n - s`` workers have reported; the fractional-repetition
    code's overridden ``is_decodable`` completes earlier when a whole
    replication group has reported.
    """

    def __init__(self, code: LinearGradientCode, *, check_every: int = 1) -> None:
        super().__init__()
        self._code = code
        self._messages: Dict[int, np.ndarray] = {}
        self._workers: List[int] = []
        self._complete = False
        self._check_every = max(int(check_every), 1)
        self._minimum_needed = max(
            1, code.num_workers - getattr(code, "num_stragglers", 0)
        )
        self._decodability_checks = 0

    def _accept(self, worker: int, message: Optional[np.ndarray]) -> bool:
        self._workers.append(worker)
        if message is not None:
            self._messages[worker] = np.asarray(message, dtype=float)
        # Only run the (comparatively expensive, O(n^3) rank) decodability
        # check at the first plausible completion point — the worst-case
        # threshold ``n - s`` — and every ``check_every`` arrivals after it,
        # plus unconditionally on the last worker so completion is never
        # skipped past. Opportunistic codes (fractional repetition overrides
        # ``is_decodable`` with a cheap group test) are checked every arrival.
        if not self._complete:
            count = len(self._workers)
            if self.opportunistic:
                due = True
            elif count < self._minimum_needed:
                due = False
            else:
                due = (
                    (count - self._minimum_needed) % self._check_every == 0
                    or count >= self._code.num_workers
                )
            if due:
                self._decodability_checks += 1
                self._complete = self._code.is_decodable(self._workers)
        return True

    @property
    def decodability_checks(self) -> int:
        """Number of times the (expensive) decodability test actually ran."""
        return self._decodability_checks

    @property
    def code(self) -> LinearGradientCode:
        """The linear gradient code deciding decodability."""
        return self._code

    @property
    def check_every(self) -> int:
        """Decodability-check cadence past the worst-case threshold."""
        return self._check_every

    @property
    def minimum_needed(self) -> int:
        """Arrival count at which the first decodability check is due."""
        return self._minimum_needed

    @property
    def opportunistic(self) -> bool:
        """Whether the code's cheap decodability test runs on every arrival."""
        return type(self._code).is_decodable is not LinearGradientCode.is_decodable

    def is_complete(self) -> bool:
        return self._complete

    def decode(self) -> np.ndarray:
        if not self._complete:
            raise DecodingError("the received worker set is not decodable yet")
        if len(self._messages) != len(self._workers):
            raise DecodingError("decode() is unavailable in timing-only mode")
        stacked = np.vstack([self._messages[w] for w in self._workers])
        return self._code.decode(self._workers, stacked)


# --------------------------------------------------------------------------- #
# Execution plan
# --------------------------------------------------------------------------- #
Encoder = Callable[[int, np.ndarray], np.ndarray]
"""``encoder(worker, unit_gradients) -> message``; ``unit_gradients`` has one
row per unit of the worker's assignment, in assignment order."""


@dataclass
class ExecutionPlan:
    """A frozen placement plus encoding and aggregation for one training job.

    Attributes
    ----------
    scheme_name:
        Name of the scheme that produced the plan.
    num_units:
        Number of data units being distributed.
    unit_assignment:
        Placement at unit granularity (worker -> unit indices).
    message_sizes:
        Per-worker message size in gradient units (1.0 for summed/coded
        messages, the worker's load for per-unit messages).
    aggregator_factory:
        Zero-argument callable returning a fresh aggregator for an iteration.
    encoder:
        Worker-side encoder; see :data:`Encoder`.
    metadata:
        Scheme-specific extras (e.g. the BCC batch choices, coded scheme's
        encoding matrix) surfaced for inspection and tests.
    """

    scheme_name: str
    num_units: int
    unit_assignment: DataAssignment
    message_sizes: np.ndarray
    aggregator_factory: Callable[[], MasterAggregator]
    encoder: Encoder
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        sizes = np.asarray(self.message_sizes, dtype=float)
        if sizes.shape[0] != self.unit_assignment.num_workers:
            raise CoverageError(
                "message_sizes must have one entry per worker "
                f"({sizes.shape[0]} != {self.unit_assignment.num_workers})"
            )
        if np.any(sizes < 0):
            raise CoverageError("message sizes must be non-negative")
        self.message_sizes = sizes

    @property
    def num_workers(self) -> int:
        """Number of workers in the plan."""
        return self.unit_assignment.num_workers

    @property
    def computational_load_units(self) -> int:
        """The computational load ``r`` in units (paper Definition 1)."""
        return self.unit_assignment.computational_load

    def worker_units(self, worker: int) -> np.ndarray:
        """Unit indices assigned to ``worker``."""
        return self.unit_assignment.worker_indices(worker)

    def encode(self, worker: int, unit_gradients: np.ndarray) -> np.ndarray:
        """Run the worker-side encoder for ``worker``."""
        return self.encoder(worker, np.asarray(unit_gradients, dtype=float))

    def new_aggregator(self) -> MasterAggregator:
        """Create a fresh master aggregator for one iteration."""
        return self.aggregator_factory()

    def can_ever_complete(self) -> bool:
        """Whether coverage/decodability is achievable with *all* workers reporting.

        A BCC plan whose random batch choices happen to miss a batch cannot
        complete no matter how long the master waits; callers use this to
        re-draw the placement (or fail loudly) before running a job.
        """
        aggregator = self.new_aggregator()
        for worker in range(self.num_workers):
            if aggregator.receive(worker, None):
                return True
        return aggregator.is_complete()


# --------------------------------------------------------------------------- #
# Scheme interface
# --------------------------------------------------------------------------- #
class Scheme(abc.ABC):
    """A distributed-GD scheme: placement + encoding + aggregation rules."""

    #: Human-readable scheme name (class attribute overridden by subclasses).
    name: str = "scheme"

    #: Constructor parameters that pin the per-worker placement. The ambient
    #: cluster :meth:`from_config` receives is only injected when the config
    #: sets none of these, so an explicit placement (e.g. ``loads``) is never
    #: combined with — or silently shadowed by — the job's cluster.
    #: Subclasses with other placement inputs extend this tuple.
    placement_parameters: Sequence[str] = ("cluster", "loads")

    @abc.abstractmethod
    def build_plan(
        self, num_units: int, num_workers: int, rng: RandomState = None
    ) -> ExecutionPlan:
        """Freeze a placement for ``num_units`` data units over ``num_workers`` workers."""

    # ------------------------------------------------------------------ #
    @classmethod
    def constructor_parameters(cls) -> List[str]:
        """Names of the keyword parameters the scheme's constructor accepts."""
        if cls.__init__ is object.__init__:
            return []
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, parameter in signature.parameters.items()
            if name != "self"
            and parameter.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        ]

    @classmethod
    def from_config(
        cls,
        config: Optional[Mapping[str, object]] = None,
        *,
        cluster: Optional[object] = None,
        **kwargs: object,
    ) -> "Scheme":
        """Construct the scheme from a plain configuration mapping.

        This is the config-driven entry point the registry and the
        :class:`~repro.api.JobSpec` machinery use: every key must name a
        constructor parameter (a ``name`` key identifying the scheme itself
        is tolerated and dropped), and inapplicable keys raise
        :class:`~repro.exceptions.ConfigurationError` instead of being
        silently ignored.

        Parameters
        ----------
        config:
            Mapping of constructor keyword arguments (merged with ``kwargs``).
        cluster:
            Ambient :class:`~repro.cluster.ClusterSpec`. Schemes whose
            constructor accepts a ``cluster`` parameter (the heterogeneous
            ones) receive it automatically unless the config already pins the
            placement via explicit ``cluster``/``loads`` entries; every other
            scheme ignores it, so callers can always pass the job's cluster.
        """
        options: Dict[str, object] = {**(dict(config) if config else {}), **kwargs}
        declared_name = options.pop("name", None)
        if declared_name is not None and declared_name != cls.name:
            raise ConfigurationError(
                f"config names scheme {declared_name!r} but was routed to "
                f"{cls.name!r}"
            )
        accepted = cls.constructor_parameters()
        accepts_var_kwargs = cls.__init__ is not object.__init__ and any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in inspect.signature(cls.__init__).parameters.values()
        )
        if not accepts_var_kwargs:
            unknown = sorted(set(options) - set(accepted))
            if unknown:
                raise ConfigurationError(
                    f"scheme {cls.name!r} does not accept the parameter(s) "
                    f"{unknown}; accepted parameters: {sorted(accepted)}"
                )
        if (
            cluster is not None
            and "cluster" in accepted
            and not any(parameter in options for parameter in cls.placement_parameters)
        ):
            options["cluster"] = cluster
        return cls(**options)

    # ------------------------------------------------------------------ #
    def analytic_runtime(
        self,
        cluster: ClusterSpec,
        num_units: int,
        *,
        unit_size: int = 1,
        serialize_master_link: bool = True,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> AnalyticIteration:
        """Closed-form expected per-iteration runtime of this scheme.

        This is the hook behind :class:`~repro.api.backends.AnalyticBackend`:
        given the cluster (whose :class:`~repro.stragglers.base.DelayModel`
        and :class:`~repro.stragglers.communication.CommunicationModel`
        supply the arrival-time distributions), return an
        :class:`~repro.analysis.analytic.AnalyticIteration` describing the
        expected iteration time, its order-statistic quantiles, and the
        expected recovery threshold / communication load — without simulating
        a single iteration.

        Subclasses implement it for the regimes their stopping rule admits in
        closed form; the base implementation (and any implementation asked
        for an uncovered configuration, e.g. Pareto workers or a serialised
        link on a heterogeneous cluster) raises
        :class:`~repro.exceptions.AnalyticIntractableError` so callers can
        fall back to a simulation backend.

        Parameters
        ----------
        cluster:
            The :class:`~repro.cluster.ClusterSpec` whose delay and
            communication models parameterise the closed forms.
        num_units:
            Number of data units ``m``.
        unit_size:
            Examples per unit (scales the computation-time parameters).
        serialize_master_link:
            Whether master-side receptions are serialised over one link.
        quantiles:
            Quantile levels to evaluate alongside the mean.
        """
        raise AnalyticIntractableError(
            f"scheme {self.name!r} has no closed-form runtime model; run it "
            "on a simulation backend instead"
        )

    def expected_recovery_threshold(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        """The scheme's analytical recovery threshold, if known (else ``None``)."""
        return None

    def expected_communication_load(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        """The scheme's analytical communication load, if known (else ``None``)."""
        return None

    def build_feasible_plan(
        self,
        num_units: int,
        num_workers: int,
        rng: RandomState = None,
        *,
        max_attempts: int = 100,
    ) -> ExecutionPlan:
        """Build a plan, re-drawing a random placement until it can complete.

        Deterministic schemes succeed on the first attempt; the BCC scheme
        re-draws its batch choices in the (rare, for ``n`` comfortably above
        ``(m/r) log(m/r)``) event that some batch was never selected.
        """
        from repro.utils.rng import as_generator

        generator = as_generator(rng)
        last_plan: Optional[ExecutionPlan] = None
        for _attempt in range(max(int(max_attempts), 1)):
            plan = self.build_plan(num_units, num_workers, generator)
            if plan.can_ever_complete():
                return plan
            last_plan = plan
        raise CoverageError(
            f"scheme {self.name!r} failed to produce a feasible placement in "
            f"{max_attempts} attempts (num_units={num_units}, "
            f"num_workers={num_workers})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def sum_encoder(worker: int, unit_gradients: np.ndarray) -> np.ndarray:
    """Encoder that sums the worker's unit gradients into a single vector (Eq. 12)."""
    return unit_gradients.sum(axis=0)


def identity_encoder(worker: int, unit_gradients: np.ndarray) -> np.ndarray:
    """Encoder that forwards every unit gradient unchanged (one row per unit)."""
    return unit_gradients
