"""The simple randomized baseline (paper "Prior Art", Eq. 5–6)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.thresholds import (
    randomized_communication_load,
    randomized_recovery_threshold,
)
from repro.coding.placement import random_subset_placement
from repro.exceptions import ConfigurationError
from repro.schemes.base import (
    ExecutionPlan,
    Scheme,
    UnitCoverageAggregator,
    identity_encoder,
)
from repro.schemes.registry import register_scheme
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int

__all__ = ["SimpleRandomizedScheme"]


@register_scheme("randomized")
class SimpleRandomizedScheme(Scheme):
    """Random subsets without batching, per-unit messages.

    Each worker selects ``load`` units uniformly at random (without
    replacement) and communicates *each* computed partial gradient
    individually, so its message size is ``load`` gradient units. The master
    keeps the first copy of every unit's gradient and stops at coverage.
    Compared with BCC this achieves a similar recovery threshold
    (``~ (m/r) log m``) but an ``r`` times larger communication load
    (``~ m log m``), which is the comparison the paper draws in Eq. (5)–(6).
    """

    name = "randomized"

    def __init__(self, load: int) -> None:
        self.load = check_positive_int(load, "load")

    def build_plan(
        self, num_units: int, num_workers: int, rng: RandomState = None
    ) -> ExecutionPlan:
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        if self.load > m:
            raise ConfigurationError(
                f"load {self.load} exceeds the number of data units {m}"
            )
        assignment = random_subset_placement(m, n, self.load, rng)

        def aggregator_factory() -> UnitCoverageAggregator:
            return UnitCoverageAggregator(num_units=m, assignment=assignment)

        return ExecutionPlan(
            scheme_name=self.name,
            num_units=m,
            unit_assignment=assignment,
            message_sizes=np.full(n, float(self.load)),
            aggregator_factory=aggregator_factory,
            encoder=identity_encoder,
            metadata={"load": self.load},
        )

    def expected_recovery_threshold(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return randomized_recovery_threshold(num_units, self.load)

    def expected_communication_load(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return randomized_communication_load(num_units, self.load)

    def __repr__(self) -> str:
        return f"SimpleRandomizedScheme(load={self.load})"
