"""The simple randomized baseline (paper "Prior Art", Eq. 5–6)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.thresholds import (
    randomized_communication_load,
    randomized_recovery_threshold,
)
from repro.coding.placement import random_subset_placement
from repro.cluster.spec import ClusterSpec
from repro.analysis.analytic import (
    AnalyticIteration,
    DEFAULT_QUANTILES,
    homogeneous_compute_parameters,
    order_statistic_runtime,
    randomized_threshold_pmf,
    transfer_parameters,
)
from repro.exceptions import ConfigurationError
from repro.schemes.base import (
    ExecutionPlan,
    Scheme,
    UnitCoverageAggregator,
    identity_encoder,
)
from repro.schemes.registry import register_scheme
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int

__all__ = ["SimpleRandomizedScheme"]


@register_scheme("randomized")
class SimpleRandomizedScheme(Scheme):
    """Random subsets without batching, per-unit messages.

    Each worker selects ``load`` units uniformly at random (without
    replacement) and communicates *each* computed partial gradient
    individually, so its message size is ``load`` gradient units. The master
    keeps the first copy of every unit's gradient and stops at coverage.
    Compared with BCC this achieves a similar recovery threshold
    (``~ (m/r) log m``) but an ``r`` times larger communication load
    (``~ m log m``), which is the comparison the paper draws in Eq. (5)–(6).
    """

    name = "randomized"

    def __init__(self, load: int) -> None:
        self.load = check_positive_int(load, "load")

    def build_plan(
        self, num_units: int, num_workers: int, rng: RandomState = None
    ) -> ExecutionPlan:
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        if self.load > m:
            raise ConfigurationError(
                f"load {self.load} exceeds the number of data units {m}"
            )
        assignment = random_subset_placement(m, n, self.load, rng)

        def aggregator_factory() -> UnitCoverageAggregator:
            return UnitCoverageAggregator(num_units=m, assignment=assignment)

        return ExecutionPlan(
            scheme_name=self.name,
            num_units=m,
            unit_assignment=assignment,
            message_sizes=np.full(n, float(self.load)),
            aggregator_factory=aggregator_factory,
            encoder=identity_encoder,
            metadata={"load": self.load},
        )

    def analytic_runtime(
        self,
        cluster: ClusterSpec,
        num_units: int,
        *,
        unit_size: int = 1,
        serialize_master_link: bool = True,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> AnalyticIteration:
        """Closed form: exact expected coverage index over i.i.d. arrivals.

        The stopping index — workers until the random ``r``-subsets cover
        all ``m`` units — is evaluated as its exact distribution conditioned
        on feasibility (``K <= n``) via the covered-units Markov chain
        (:func:`~repro.analysis.analytic.randomized_threshold_pmf`); when the
        problem is too large for the exact program the unconditional
        expectation (:func:`~repro.analysis.thresholds.randomized_recovery_threshold`)
        capped at ``n`` stands in. The iteration time is the corresponding
        mixture of arrival order statistics with ``r``-unit messages.
        """
        m = check_positive_int(num_units, "num_units")
        n = cluster.num_workers
        if self.load > m:
            raise ConfigurationError(
                f"load {self.load} exceeds the number of data units {m}"
            )
        det_e, tail_e = homogeneous_compute_parameters(cluster)
        fixed, jitter = transfer_parameters(cluster.communication, float(self.load))
        examples = self.load * unit_size
        threshold = randomized_threshold_pmf(m, self.load, n)
        if threshold is None:
            # Past the exact program's size cap the paper's asymptotic
            # (exact inclusion–exclusion is itself rational arithmetic over
            # C(m, .), so switch forms around a few hundred units).
            expected_k = randomized_recovery_threshold(m, self.load, exact=m <= 400)
            threshold = min(expected_k, float(n))
        return order_statistic_runtime(
            scheme=self.name,
            num_workers=n,
            threshold=threshold,
            compute_deterministic=det_e * examples,
            compute_tail_mean=tail_e * examples,
            transfer_fixed=fixed,
            transfer_jitter_mean=jitter,
            message_size=float(self.load),
            serialize_master_link=serialize_master_link,
            quantiles=quantiles,
        )

    def expected_recovery_threshold(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return randomized_recovery_threshold(num_units, self.load)

    def expected_communication_load(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return randomized_communication_load(num_units, self.load)

    def __repr__(self) -> str:
        return f"SimpleRandomizedScheme(load={self.load})"
