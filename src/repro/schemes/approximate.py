"""Approximate-gradient baseline: ignore the stragglers.

Every scheme in the paper recovers the *exact* gradient. A natural cheaper
alternative — common practice in large-scale SGD systems and the implicit
comparison point of the gradient-coding literature — is to simply proceed
with whatever partial gradients have arrived once a fixed fraction of the
workers has reported, rescaling by the number of examples actually covered.
The update direction is then a biased-but-close estimate of the true
gradient, and the iteration finishes as early as the chosen fraction allows.

The scheme is included as an extension (it is not evaluated in the paper) so
that the cost of exactness can be quantified: the convergence ablation runs
BCC and the ignore-stragglers scheme under the same simulated time budget and
compares the loss reached.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.coding.placement import uncoded_placement
from repro.cluster.spec import ClusterSpec
from repro.analysis.analytic import (
    AnalyticIteration,
    DEFAULT_QUANTILES,
    homogeneous_compute_parameters,
    order_statistic_runtime,
    transfer_parameters,
)
from repro.exceptions import AnalyticIntractableError, ConfigurationError, DecodingError
from repro.schemes.base import ExecutionPlan, MasterAggregator, Scheme, sum_encoder
from repro.schemes.registry import register_scheme
from repro.utils.rng import RandomState
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["IgnoreStragglersScheme", "PartialSumAggregator"]


class PartialSumAggregator(MasterAggregator):
    """Completes after a fixed number of workers; decodes a rescaled partial sum.

    Parameters
    ----------
    required_count:
        Number of worker messages to wait for.
    worker_example_counts:
        Number of training examples behind each worker's message, used to
        rescale the partial sum to an estimate of the full-dataset sum:
        ``decode() = (total_examples / covered_examples) * sum(received)``.
    total_examples:
        Total number of examples in the dataset.
    """

    def __init__(
        self,
        required_count: int,
        worker_example_counts: np.ndarray,
        total_examples: int,
    ) -> None:
        super().__init__()
        self._required_count = check_positive_int(required_count, "required_count")
        self._example_counts = np.asarray(worker_example_counts, dtype=int)
        self._total_examples = check_positive_int(total_examples, "total_examples")
        self._covered_examples = 0
        self._sum: Optional[np.ndarray] = None
        self._kept = 0

    def _accept(self, worker: int, message: Optional[np.ndarray]) -> bool:
        if self._example_counts[worker] == 0:
            return False
        self._kept += 1
        self._covered_examples += int(self._example_counts[worker])
        if message is not None:
            message = np.asarray(message, dtype=float)
            self._sum = message.copy() if self._sum is None else self._sum + message
        return True

    def is_complete(self) -> bool:
        return self._kept >= self._required_count

    def decode(self) -> np.ndarray:
        if not self.is_complete():
            raise DecodingError(
                f"only {self._kept} of the required {self._required_count} "
                "messages have arrived"
            )
        if self._sum is None:
            raise DecodingError("decode() is unavailable in timing-only mode")
        scale = self._total_examples / float(self._covered_examples)
        return scale * self._sum

    @property
    def covered_examples(self) -> int:
        """Number of examples represented in the kept messages."""
        return self._covered_examples

    @property
    def required_count(self) -> int:
        """Number of eligible worker messages the master waits for."""
        return self._required_count

    @property
    def example_counts(self) -> np.ndarray:
        """Per-worker example counts (zero-count workers are ignored)."""
        return self._example_counts.copy()


@register_scheme("ignore-stragglers")
class IgnoreStragglersScheme(Scheme):
    """Disjoint placement, but the master only waits for a fraction of workers.

    Parameters
    ----------
    wait_fraction:
        Fraction of the workers the master waits for each iteration, in
        ``(0, 1]``. ``1.0`` degenerates to the exact uncoded scheme.

    Notes
    -----
    * The decoded vector is an *estimate*: the sum of the received workers'
      partial gradients rescaled by the inverse of the covered fraction. With
      a disjoint placement and exchangeable workers this estimate is unbiased
      over the randomness of which workers respond first only when response
      order is independent of the data — which holds in the simulator — but
      individual iterations use a strict subset of the data, like mini-batch
      SGD.
    * ``expected_recovery_threshold`` is ``ceil(wait_fraction * n)`` and the
      communication load equals it (unit-size summed messages).
    """

    name = "ignore-stragglers"

    def __init__(self, wait_fraction: float = 0.9) -> None:
        self.wait_fraction = check_in_range(
            wait_fraction, "wait_fraction", low=0.0, high=1.0, inclusive=True
        )
        if self.wait_fraction <= 0.0:
            raise ConfigurationError("wait_fraction must be strictly positive")

    def _required_workers(self, num_workers: int) -> int:
        return max(1, int(np.ceil(self.wait_fraction * num_workers)))

    def build_plan(
        self, num_units: int, num_workers: int, rng: RandomState = None
    ) -> ExecutionPlan:
        m = check_positive_int(num_units, "num_units")
        n = check_positive_int(num_workers, "num_workers")
        assignment = uncoded_placement(m, n)
        required = self._required_workers(n)
        example_counts = assignment.loads

        def aggregator_factory() -> PartialSumAggregator:
            return PartialSumAggregator(
                required_count=required,
                worker_example_counts=example_counts,
                total_examples=m,
            )

        return ExecutionPlan(
            scheme_name=self.name,
            num_units=m,
            unit_assignment=assignment,
            message_sizes=np.ones(n),
            aggregator_factory=aggregator_factory,
            encoder=sum_encoder,
            metadata={"wait_fraction": self.wait_fraction, "required_workers": required},
        )

    def analytic_runtime(
        self,
        cluster: ClusterSpec,
        num_units: int,
        *,
        unit_size: int = 1,
        serialize_master_link: bool = True,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> AnalyticIteration:
        """Closed form: the ``ceil(wait_fraction * n)``-th arrival.

        The stopping index is fixed by construction; only the first
        ``K`` (exchangeable) workers matter, so the balanced split's ±1 unit
        imbalance is folded into the average per-worker load.
        """
        m = check_positive_int(num_units, "num_units")
        n = cluster.num_workers
        if m < n:
            raise AnalyticIntractableError(
                f"the ignore-stragglers closed form needs every worker to "
                f"hold data; m={m} units cannot cover n={n} workers"
            )
        det_e, tail_e = homogeneous_compute_parameters(cluster)
        fixed, jitter = transfer_parameters(cluster.communication, 1.0)
        examples = (m / n) * unit_size
        required = self._required_workers(n)
        return order_statistic_runtime(
            scheme=self.name,
            num_workers=n,
            threshold=float(required),
            compute_deterministic=det_e * examples,
            compute_tail_mean=tail_e * examples,
            transfer_fixed=fixed,
            transfer_jitter_mean=jitter,
            message_size=1.0,
            serialize_master_link=serialize_master_link,
            quantiles=quantiles,
            details={"wait_fraction": self.wait_fraction},
        )

    def expected_recovery_threshold(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return float(self._required_workers(num_workers))

    def expected_communication_load(
        self, num_units: int, num_workers: int
    ) -> Optional[float]:
        return float(self._required_workers(num_workers))

    def __repr__(self) -> str:
        return f"IgnoreStragglersScheme(wait_fraction={self.wait_fraction!r})"
