"""Reproduction of Fig. 4 and Tables I / II: EC2-style running-time comparison.

The paper runs 100 iterations of Nesterov-accelerated logistic regression
under three schemes (uncoded, cyclic repetition, BCC) in two scenarios:

* scenario one — ``n = 50`` workers, ``m = 50`` data batches of 100 points;
* scenario two — ``n = 100`` workers, ``m = 100`` data batches of 100 points;

with computational load ``r = 10`` batches for the coded/BCC schemes. The
driver here runs the same configuration on the EC2-like simulated cluster and
reports the same breakdown rows as Tables I and II (recovery threshold,
communication time, computation time, total running time) plus the relative
speed-ups quoted in the text.

By default the run is timing-only (the table's numbers do not depend on the
actual gradient values); pass ``semantic=True`` to also train the paper's
logistic model under simulated time and obtain the loss trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.api import JobSpec, Sweep, Workload, run_sweep
from repro.datasets.batching import make_batches
from repro.datasets.synthetic import LogisticDataConfig, make_paper_logistic_data
from repro.experiments.ec2 import EC2LikeConfig, ec2_like_cluster
from repro.gradients.logistic import LogisticLoss
from repro.optim.nesterov import NesterovAcceleratedGradient
from repro.optim.schedules import ConstantSchedule
from repro.schemes.base import Scheme
from repro.schemes.bcc import BCCScheme
from repro.schemes.coded import CyclicRepetitionScheme
from repro.schemes.uncoded import UncodedScheme
from repro.simulation.job import JobResult
from repro.utils.rng import RandomState, as_generator
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive_int

__all__ = ["ScenarioConfig", "ScenarioResult", "run_scenario", "default_schemes"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Configuration of one Fig. 4 scenario.

    The defaults correspond to the paper's scenario one; ``scenario_two()``
    builds the other.
    """

    name: str = "scenario-one"
    num_workers: int = 50
    num_batches: int = 50
    points_per_batch: int = 100
    load: int = 10
    num_iterations: int = 100
    num_features: int = 8000
    ec2: EC2LikeConfig = field(default_factory=EC2LikeConfig)

    def __post_init__(self) -> None:
        check_positive_int(self.num_workers, "num_workers")
        check_positive_int(self.num_batches, "num_batches")
        check_positive_int(self.points_per_batch, "points_per_batch")
        check_positive_int(self.load, "load")
        check_positive_int(self.num_iterations, "num_iterations")
        check_positive_int(self.num_features, "num_features")

    @classmethod
    def scenario_one(cls, **overrides) -> "ScenarioConfig":
        """The paper's scenario one (n = 50, m = 50 batches)."""
        return cls(name="scenario-one", num_workers=50, num_batches=50, **overrides)

    @classmethod
    def scenario_two(cls, **overrides) -> "ScenarioConfig":
        """The paper's scenario two (n = 100, m = 100 batches)."""
        return cls(name="scenario-two", num_workers=100, num_batches=100, **overrides)

    @property
    def num_examples(self) -> int:
        """Total number of training examples."""
        return self.num_batches * self.points_per_batch


def default_schemes(config: ScenarioConfig) -> Dict[str, Scheme]:
    """The three schemes compared in Fig. 4, keyed by report name."""
    return {
        "uncoded": UncodedScheme(),
        "cyclic-repetition": CyclicRepetitionScheme(config.load),
        "bcc": BCCScheme(config.load),
    }


@dataclass
class ScenarioResult:
    """Per-scheme breakdown rows (Tables I / II) for one scenario."""

    config: ScenarioConfig
    jobs: Dict[str, JobResult] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def row(self, scheme: str) -> dict:
        """The table row for one scheme (paper's column order)."""
        job = self.jobs[scheme]
        return {
            "scheme": scheme,
            "recovery_threshold": job.average_recovery_threshold,
            "communication_time": job.total_communication_time,
            "computation_time": job.total_computation_time,
            "total_time": job.total_time,
        }

    def speedup_over(self, scheme: str, baseline: str) -> float:
        """Relative reduction in total running time of ``scheme`` vs ``baseline``.

        The paper quotes e.g. "BCC speeds up the job execution by 85.4 % over
        the uncoded scheme", which is ``1 - total(BCC) / total(uncoded)``.
        """
        return 1.0 - self.jobs[scheme].total_time / self.jobs[baseline].total_time

    def render(self) -> str:
        """Monospace rendering of the Table I / II breakdown."""
        table = TextTable(
            [
                "scheme",
                "recovery threshold",
                "communication time (s)",
                "computation time (s)",
                "total running time (s)",
            ],
            title=(
                f"{self.config.name}: n={self.config.num_workers}, "
                f"m={self.config.num_batches} batches x "
                f"{self.config.points_per_batch} points, r={self.config.load}, "
                f"{self.config.num_iterations} iterations"
            ),
        )
        for scheme in self.jobs:
            row = self.row(scheme)
            table.add_row(
                [
                    row["scheme"],
                    row["recovery_threshold"],
                    row["communication_time"],
                    row["computation_time"],
                    row["total_time"],
                ]
            )
        return table.render()


def run_scenario(
    config: Optional[ScenarioConfig] = None,
    *,
    schemes: Optional[Dict[str, Scheme]] = None,
    rng: RandomState = 0,
    semantic: bool = False,
    num_iterations: Optional[int] = None,
    backend: Optional[str] = None,
) -> ScenarioResult:
    """Run one Fig. 4 scenario on the EC2-like simulated cluster.

    Parameters
    ----------
    config:
        Scenario parameters; defaults to scenario one.
    schemes:
        Mapping report-name -> scheme; defaults to the paper's three.
    semantic:
        If True, generate the paper's synthetic logistic dataset and actually
        train it with Nesterov's method under simulated time (slower; the
        timing breakdown is identical in distribution to the timing-only run).
    num_iterations:
        Override the scenario's iteration count (useful for quick checks).
    backend:
        Override the timing-only backend: ``"analytic"`` regenerates the
        Table I/II breakdown from the closed forms instead of Monte-Carlo
        simulation (ignored when ``semantic=True``).
    """
    config = config or ScenarioConfig.scenario_one()
    if num_iterations is not None:
        config = ScenarioConfig(
            name=config.name,
            num_workers=config.num_workers,
            num_batches=config.num_batches,
            points_per_batch=config.points_per_batch,
            load=config.load,
            num_iterations=int(num_iterations),
            num_features=config.num_features,
            ec2=config.ec2,
        )
    schemes = schemes or default_schemes(config)
    generator = as_generator(rng)
    cluster = ec2_like_cluster(config.num_workers, config.ec2)

    base = JobSpec(
        scheme=next(iter(schemes.values())),
        cluster=cluster,
        num_iterations=config.num_iterations,
        serialize_master_link=False,
        seed=generator,
    )
    if not semantic:
        base = base.replace(
            num_units=config.num_batches, unit_size=config.points_per_batch
        )
        backend = backend or "timing"
    else:
        data_config = LogisticDataConfig(
            num_examples=config.num_examples, num_features=config.num_features
        )
        dataset, _true_weights = make_paper_logistic_data(data_config, seed=generator)
        unit_spec = make_batches(dataset.num_examples, config.points_per_batch)
        base = base.replace(
            workload=Workload(
                model=LogisticLoss(),
                dataset=dataset,
                optimizer=NesterovAcceleratedGradient(ConstantSchedule(0.5)),
                unit_spec=unit_spec,
            )
        )
        backend = "semantic"

    sweep = Sweep(
        base,
        parameters={"scheme": list(schemes.values())},
        backend=backend,
        seed_strategy="shared",
    )
    result = ScenarioResult(config=config)
    for name, record in zip(schemes, run_sweep(sweep).records):
        result.jobs[name] = record.result
    return result
