"""Ablation studies for the design choices called out in DESIGN.md.

Each function sweeps one design dimension on the simulator and returns a list
of plain dictionaries (one per configuration) so the benchmark harness can
print them as tables and tests can assert on the qualitative shapes:

1. :func:`load_sweep` — the computational load ``r`` drives the whole
   recovery-threshold / run-time tradeoff.
2. :func:`straggler_intensity_sweep` — BCC's advantage grows as network
   (communication) straggling intensifies.
3. :func:`delay_model_comparison` — BCC needs no knowledge of the delay
   distribution (universality): it wins under exponential, Pareto and
   bimodal stragglers alike.
4. :func:`communication_ratio_sweep` — in-worker compression (summing)
   matters more as communication gets more expensive: BCC vs the simple
   randomized scheme.
5. :func:`allocation_strategy_comparison` — P2-optimal loads vs proportional
   (LB) vs uniform loads on a heterogeneous cluster.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api import JobSpec, RunResult, Sweep, run_sweep
from repro.cluster.allocation import (
    load_balanced_allocation,
    solve_p2_allocation,
    uniform_allocation,
)
from repro.cluster.spec import ClusterSpec
from repro.cluster.waiting_time import sample_completion_times, sample_coverage_time
from repro.coding.placement import heterogeneous_random_placement
from repro.experiments.ec2 import EC2LikeConfig, ec2_like_cluster
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import (
    BimodalStragglerDelay,
    ExponentialDelay,
    ParetoDelay,
    ShiftedExponentialDelay,
)
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "load_sweep",
    "straggler_intensity_sweep",
    "delay_model_comparison",
    "communication_ratio_sweep",
    "allocation_strategy_comparison",
    "exactness_under_time_budget",
]


def load_sweep(
    loads: Sequence[int] = (5, 10, 25),
    *,
    num_batches: int = 50,
    num_workers: int = 50,
    num_iterations: int = 20,
    rng: RandomState = 0,
) -> List[Dict[str, float]]:
    """Sweep the computational load ``r`` for the BCC scheme on the EC2-like cluster."""
    for load in loads:
        check_positive_int(load, "load")
    sweep = Sweep(
        JobSpec(
            scheme={"name": "bcc"},
            cluster=ec2_like_cluster(num_workers),
            num_units=num_batches,
            num_iterations=num_iterations,
            unit_size=100,
            serialize_master_link=False,
            seed=as_generator(rng),
        ),
        parameters={"scheme.load": [int(load) for load in loads]},
        seed_strategy="shared",
    )
    rows: List[Dict[str, float]] = []
    for record in run_sweep(sweep).records:
        job = record.result
        rows.append(
            {
                "load": float(record.params["scheme.load"]),
                "recovery_threshold": job.average_recovery_threshold,
                "total_time": job.total_time,
                "computation_time": job.total_computation_time,
                "communication_time": job.total_communication_time,
            }
        )
    return rows


def straggler_intensity_sweep(
    jitters: Sequence[float] = (0.01, 0.06, 0.2),
    *,
    num_batches: int = 50,
    num_workers: int = 50,
    load: int = 10,
    num_iterations: int = 20,
    rng: RandomState = 0,
) -> List[Dict[str, float]]:
    """Compare BCC and uncoded total times as network straggling intensifies.

    On the paper's EC2 cluster the dominant source of straggling is the
    per-message transfer-time variability, modelled here as the exponential
    communication jitter. The uncoded scheme waits for the slowest of all
    ``n`` transfers while BCC only needs the fastest ~``(m/r) log(m/r)``, so
    the BCC speed-up should grow with the jitter.
    """
    clusters = [
        ec2_like_cluster(num_workers, EC2LikeConfig(comm_jitter=float(jitter)))
        for jitter in jitters
    ]
    sweep = Sweep(
        JobSpec(
            scheme={"name": "bcc", "load": load},
            cluster=clusters[0],
            num_units=num_batches,
            num_iterations=num_iterations,
            unit_size=100,
            serialize_master_link=False,
            seed=as_generator(rng),
        ),
        parameters={
            "cluster": clusters,
            "scheme": [{"name": "bcc", "load": load}, {"name": "uncoded"}],
        },
        seed_strategy="shared",
    )
    records = run_sweep(sweep).records
    rows: List[Dict[str, float]] = []
    for index, jitter in enumerate(jitters):
        bcc_job = records[2 * index].result
        uncoded_job = records[2 * index + 1].result
        rows.append(
            {
                "comm_jitter": float(jitter),
                "bcc_total_time": bcc_job.total_time,
                "uncoded_total_time": uncoded_job.total_time,
                "speedup": 1.0 - bcc_job.total_time / uncoded_job.total_time,
            }
        )
    return rows


def delay_model_comparison(
    *,
    num_batches: int = 50,
    num_workers: int = 50,
    load: int = 10,
    num_iterations: int = 20,
    rng: RandomState = 0,
) -> List[Dict[str, float]]:
    """BCC vs cyclic repetition vs uncoded under three different delay families.

    BCC requires no knowledge of the delay distribution; this ablation checks
    its advantage is not an artefact of the shift-exponential assumption.
    """
    communication = LinearCommunicationModel(latency=1e-3, seconds_per_unit=2e-3, jitter=6e-2)
    delay_families = {
        "shift-exponential": ShiftedExponentialDelay(straggling=1e5, shift=1e-5),
        "pareto": ParetoDelay(alpha=2.0, scale=1.5e-5),
        "bimodal": BimodalStragglerDelay(
            seconds_per_example=1e-5, straggle_probability=0.1, slowdown=20.0
        ),
    }
    clusters = [
        ClusterSpec.homogeneous(num_workers, delay, communication)
        for delay in delay_families.values()
    ]
    scheme_configs = [
        {"name": "bcc", "load": load},
        {"name": "cyclic-repetition", "load": load},
        {"name": "uncoded"},
    ]
    sweep = Sweep(
        JobSpec(
            scheme=scheme_configs[0],
            cluster=clusters[0],
            num_units=num_batches,
            num_iterations=num_iterations,
            unit_size=100,
            serialize_master_link=False,
            seed=as_generator(rng),
        ),
        parameters={"cluster": clusters, "scheme": scheme_configs},
        seed_strategy="shared",
    )
    records = run_sweep(sweep).records
    rows: List[Dict[str, float]] = []
    for index, family_name in enumerate(delay_families):
        times = [records[3 * index + offset].result.total_time for offset in range(3)]
        rows.append(
            {
                "delay_model": family_name,
                "bcc_total_time": times[0],
                "cyclic_total_time": times[1],
                "uncoded_total_time": times[2],
            }
        )
    return rows


def communication_ratio_sweep(
    comm_costs: Sequence[float] = (1e-3, 1e-2, 1e-1),
    *,
    num_units: int = 50,
    num_workers: int = 50,
    load: int = 10,
    num_iterations: int = 20,
    rng: RandomState = 0,
) -> List[Dict[str, float]]:
    """BCC (summed messages) vs simple randomized (per-unit messages) as
    communication becomes more expensive relative to computation.

    The randomized scheme's communication load is ``load`` times larger, so
    its disadvantage should widen with the per-unit communication cost.
    """
    compute = ShiftedExponentialDelay(straggling=1e4, shift=1e-4)
    clusters = [
        ClusterSpec.homogeneous(
            num_workers,
            compute,
            LinearCommunicationModel(
                latency=1e-4, seconds_per_unit=float(cost), jitter=float(cost) / 2.0
            ),
        )
        for cost in comm_costs
    ]
    sweep = Sweep(
        JobSpec(
            scheme={"name": "bcc", "load": load},
            cluster=clusters[0],
            num_units=num_units,
            num_iterations=num_iterations,
            serialize_master_link=True,
            seed=as_generator(rng),
        ),
        parameters={
            "cluster": clusters,
            "scheme": [
                {"name": "bcc", "load": load},
                {"name": "randomized", "load": load},
            ],
        },
        seed_strategy="shared",
    )
    records = run_sweep(sweep).records
    rows: List[Dict[str, float]] = []
    for index, cost in enumerate(comm_costs):
        bcc_job = records[2 * index].result
        randomized_job = records[2 * index + 1].result
        rows.append(
            {
                "comm_seconds_per_unit": float(cost),
                "bcc_total_time": bcc_job.total_time,
                "randomized_total_time": randomized_job.total_time,
                "bcc_communication_load": bcc_job.average_communication_load,
                "randomized_communication_load": randomized_job.average_communication_load,
            }
        )
    return rows


def allocation_strategy_comparison(
    num_examples: int = 200,
    cluster: Optional[ClusterSpec] = None,
    *,
    num_trials: int = 100,
    rng: RandomState = 0,
) -> List[Dict[str, float]]:
    """Average completion time of three heterogeneous load-allocation strategies.

    * ``p2-random`` — P2-optimal loads with random (generalized BCC) placement
      and coverage-based stopping;
    * ``load-balanced`` — proportional loads, disjoint placement, wait for all;
    * ``uniform`` — equal loads, disjoint placement, wait for all.

    The paper's claim (Fig. 5) is that ``p2-random`` beats ``load-balanced``.
    The ``uniform`` row is included as an additional reference point: when the
    deterministic per-example cost dominates (large shift parameters) the
    redundancy the coverage target demands is expensive, and a plain even
    split can be competitive — the ablation makes that trade-off visible.
    """
    check_positive_int(num_examples, "num_examples")
    cluster = cluster or ClusterSpec.paper_fig5_cluster(num_workers=50, num_fast=3)

    def allocation_runner(spec: JobSpec) -> RunResult:
        """Monte-Carlo one allocation strategy's average completion time."""
        gen = spec.rng()
        strategy = str(spec.scheme)
        if strategy in ("load-balanced", "uniform"):
            # Wait-for-all strategies.
            allocate = (
                load_balanced_allocation if strategy == "load-balanced" else uniform_allocation
            )
            allocation = allocate(spec.cluster, num_examples)
            times = sample_completion_times(
                spec.cluster, allocation.loads, rng=gen, num_trials=num_trials
            )
            per_trial = np.nanmax(np.where(np.isfinite(times), times, np.nan), axis=1)
            average = float(np.mean(per_trial))
            total_load = float(allocation.total_load)
        else:
            # Generalized BCC with P2-optimal loads, coverage-based stopping.
            target = max(
                int(math.floor(num_examples * math.log(num_examples))), num_examples
            )
            p2 = solve_p2_allocation(spec.cluster, target=target, max_load=num_examples)

            def assignment_sampler(g: np.random.Generator):
                return heterogeneous_random_placement(
                    num_examples, p2.loads, g
                ).assignments

            coverage_times = sample_coverage_time(
                spec.cluster,
                num_examples,
                assignment_sampler,
                rng=gen,
                num_trials=num_trials,
            )
            average = float(np.mean(coverage_times[np.isfinite(coverage_times)]))
            total_load = float(p2.total_load)
        return RunResult(
            scheme_name=strategy,
            backend="allocation-monte-carlo",
            extras={"average_time": average, "total_load": total_load},
        )

    sweep = Sweep(
        JobSpec(
            scheme="load-balanced",
            cluster=cluster,
            num_units=num_examples,
            seed=as_generator(rng),
        ),
        parameters={"scheme": ["load-balanced", "uniform", "p2-random"]},
        backend=allocation_runner,
        seed_strategy="shared",
    )
    return [
        {
            "strategy": record.result.scheme_name,
            "average_time": record.result.extras["average_time"],
            "total_load": record.result.extras["total_load"],
        }
        for record in run_sweep(sweep).records
    ]


def exactness_under_time_budget(
    time_budgets: Sequence[float] = (0.5, 1.5, 4.0),
    *,
    num_workers: int = 20,
    num_batches: int = 20,
    points_per_batch: int = 25,
    num_features: int = 200,
    load: int = 5,
    wait_fraction: float = 0.6,
    max_iterations: int = 120,
    rng: RandomState = 0,
) -> List[Dict[str, float]]:
    """Exact BCC vs the approximate ignore-stragglers baseline per time budget.

    Both schemes train the paper's synthetic logistic model under simulated
    EC2-like time; for each wall-clock budget the row reports the training
    loss each scheme has reached by that time. The ignore-stragglers scheme
    finishes iterations sooner but its update is computed from a subset of
    the data, so exact BCC should reach lower loss for equal time once the
    budget is large enough for a handful of BCC iterations.
    """
    from repro.api import Workload
    from repro.datasets.batching import make_batches
    from repro.datasets.synthetic import LogisticDataConfig, make_paper_logistic_data
    from repro.gradients.logistic import LogisticLoss
    from repro.optim.nesterov import NesterovAcceleratedGradient

    generator = as_generator(rng)
    cluster = ec2_like_cluster(num_workers)
    config = LogisticDataConfig(
        num_examples=num_batches * points_per_batch, num_features=num_features
    )
    dataset, _ = make_paper_logistic_data(config, seed=generator)
    unit_spec = make_batches(dataset.num_examples, points_per_batch)

    scheme_configs = {
        "uncoded": {"name": "uncoded"},
        "ignore-stragglers": {
            "name": "ignore-stragglers",
            "wait_fraction": wait_fraction,
        },
        "bcc": {"name": "bcc", "load": load},
    }
    sweep = Sweep(
        JobSpec(
            scheme=scheme_configs["uncoded"],
            cluster=cluster,
            num_iterations=max_iterations,
            serialize_master_link=False,
            seed=generator,
            workload=Workload(
                model=LogisticLoss(),
                dataset=dataset,
                optimizer=NesterovAcceleratedGradient(0.3),
                unit_spec=unit_spec,
            ),
        ),
        parameters={"scheme": list(scheme_configs.values())},
        backend="semantic",
        seed_strategy="shared",
    )
    runs = {
        name: record.result
        for name, record in zip(scheme_configs, run_sweep(sweep).records)
    }

    def loss_at_budget(run, budget: float) -> float:
        elapsed = 0.0
        reached = run.training.losses[0]
        for outcome, record in zip(run.iterations, run.training.history):
            elapsed += outcome.total_time
            if elapsed > budget:
                break
            reached = record.loss
        return float(reached)

    rows: List[Dict[str, float]] = []
    for budget in time_budgets:
        rows.append(
            {
                "time_budget": float(budget),
                "uncoded_loss": loss_at_budget(runs["uncoded"], float(budget)),
                "ignore_stragglers_loss": loss_at_budget(
                    runs["ignore-stragglers"], float(budget)
                ),
                "bcc_loss": loss_at_budget(runs["bcc"], float(budget)),
            }
        )
    return rows
