"""Command-line entry point for regenerating the paper's artefacts.

Usage::

    python -m repro.experiments.cli fig2
    python -m repro.experiments.cli table1 --iterations 100 --seed 0
    python -m repro.experiments.cli fig5 --trials 300
    python -m repro.experiments.cli theorem1
    python -m repro.experiments.cli theorem2
    python -m repro.experiments.cli sweep --scheme bcc --scheme uncoded \
        --loads 5,10,25 --workers 50 --units 50 --trials 3 --parallel 4 \
        --engine vectorized
    python -m repro.experiments.cli sweep --scheme bcc --loads 10 \
        --trials 256 --engine vectorized --trial-batching always \
        --record summary
    python -m repro.experiments.cli sweep --dynamics markov:slowdown=8 \
        --scheme bcc --scheme cyclic-repetition --loads 10
    python -m repro.experiments.cli tune --workers 50 --loads 5,10,25 \
        --units 50,100 --top-k 5 --trials 8
    python -m repro.experiments.cli tune --quick --json
    python -m repro.experiments.cli churn --workers 20 --iterations 30
    python -m repro.experiments.cli validate --quick --no-append
    python -m repro.experiments.cli validate --scenario markov-bursts

Each sub-command runs the corresponding experiment driver at (scaled-down by
default, paper-scale via flags) settings and prints the reproduced table to
stdout. ``sweep`` is the generic front door: it builds a
:class:`~repro.api.JobSpec` grid over schemes and computational loads and
runs it through :func:`~repro.api.run_sweep` on the chosen backend. The
benchmark harness remains the canonical way to regenerate every artefact
with assertions; the CLI is for quick interactive runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.validation import (
    append_validation_record,
    golden_scenarios,
    validate_scenario,
)
from repro.api import JobSpec, Sweep, Workload, run_sweep
from repro.cluster.spec import ClusterSpec
from repro.devtools import cli as lint_cli
from repro.experiments.churn import (
    ChurnAblationConfig,
    available_dynamics,
    dynamics_from_spec,
    run_churn_ablation,
)
from repro.experiments.ec2 import ec2_like_cluster
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig4 import ScenarioConfig, run_scenario
from repro.experiments.fig5 import run_fig5
from repro.experiments.theorems import run_theorem1_validation, run_theorem2_validation
from repro.schemes.registry import available_schemes, scheme_accepts
from repro.utils.timing import utc_timestamp

__all__ = [
    "build_parser",
    "main",
    "run_cli_sweep",
    "run_cli_tune",
    "run_cli_validate",
]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the experiment CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the BCC paper.",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    subparsers = parser.add_subparsers(dest="experiment", required=True)

    fig2 = subparsers.add_parser("fig2", help="Fig. 2: recovery threshold vs load")
    fig2.add_argument("--examples", type=int, default=100, help="number of examples m")
    fig2.add_argument("--workers", type=int, default=100, help="number of workers n")
    fig2.add_argument(
        "--trials", type=int, default=20, help="Monte-Carlo trials per load (0 to skip)"
    )
    fig2.add_argument(
        "--backend",
        choices=("timing", "analytic"),
        default="timing",
        help=(
            "estimator for the cross-check columns: Monte-Carlo simulation "
            "(timing) or the closed-form analytic backend"
        ),
    )

    for name, help_text in (
        ("table1", "Table I: scenario one breakdown"),
        ("table2", "Table II: scenario two breakdown"),
    ):
        scenario = subparsers.add_parser(name, help=help_text)
        scenario.add_argument(
            "--iterations", type=int, default=100, help="GD iterations (default: 100)"
        )
        scenario.add_argument(
            "--backend",
            choices=("timing", "analytic"),
            default="timing",
            help="Monte-Carlo simulation or closed-form analytic breakdown",
        )

    fig5 = subparsers.add_parser("fig5", help="Fig. 5: heterogeneous LB vs generalized BCC")
    fig5.add_argument("--examples", type=int, default=500, help="number of examples m")
    fig5.add_argument("--trials", type=int, default=200, help="Monte-Carlo trials")

    theorem1 = subparsers.add_parser("theorem1", help="Theorem 1 validation")
    theorem1.add_argument("--examples", type=int, default=100)
    theorem1.add_argument("--trials", type=int, default=1000)
    theorem1.add_argument(
        "--estimator",
        choices=("monte-carlo", "analytic"),
        default="monte-carlo",
        help="cross-check column: sampled draws or the analytic backend",
    )

    theorem2 = subparsers.add_parser("theorem2", help="Theorem 2 validation")
    theorem2.add_argument("--examples", type=int, default=100)
    theorem2.add_argument("--trials", type=int, default=200)
    theorem2.add_argument("--workers", type=int, default=50)
    theorem2.add_argument(
        "--analytic",
        action="store_true",
        help="also print the closed-form coverage-time estimate",
    )

    sweep = subparsers.add_parser(
        "sweep", help="generic scheme/load sweep through the unified API"
    )
    sweep.add_argument(
        "--scheme",
        action="append",
        dest="schemes",
        metavar="NAME",
        help=(
            "scheme to include (repeatable); default: bcc and uncoded. "
            f"available: {', '.join(available_schemes())}"
        ),
    )
    sweep.add_argument(
        "--loads",
        type=lambda text: [int(part) for part in text.split(",") if part],
        default=[5, 10, 25],
        metavar="R1,R2,...",
        help="computational loads for the schemes that take one (default: 5,10,25)",
    )
    sweep.add_argument("--workers", type=int, default=50, help="cluster size n")
    sweep.add_argument("--units", type=int, default=50, help="data units m")
    sweep.add_argument(
        "--unit-size", type=int, default=100, help="examples per unit (default: 100)"
    )
    sweep.add_argument(
        "--iterations", type=int, default=20, help="GD iterations per run"
    )
    sweep.add_argument(
        "--trials", type=int, default=1, help="Monte-Carlo trials per configuration"
    )
    sweep.add_argument(
        "--backend",
        choices=("timing", "semantic", "analytic"),
        default="timing",
        help=(
            "timing-only simulation, semantic training under simulated time, "
            "or closed-form analytic expected runtimes (no simulation at all)"
        ),
    )
    sweep.add_argument(
        "--engine",
        choices=("loop", "vectorized", "auto"),
        default="auto",
        help=(
            "timing-engine for the timing backend: the Python per-iteration "
            "loop, the NumPy batch engine, or size-based auto selection "
            "(both produce identical results; ignored by --backend semantic)"
        ),
    )
    sweep.add_argument(
        "--kernels",
        choices=("auto", "numba", "cext", "numpy"),
        default="auto",
        help=(
            "hot-loop kernel backend for the vectorized engine: numba-JIT "
            "(soft dependency), the build-on-first-use C extension, the "
            "NumPy reference, or auto (numba when installed, else numpy); "
            "all backends are bit-identical, only speed differs"
        ),
    )
    sweep.add_argument(
        "--dynamics",
        metavar="NAME[:k=v,...]",
        default=None,
        help=(
            "run the sweep on a dynamic cluster: a registered worker process "
            "with optional parameters (e.g. markov:slowdown=8,p_slow=0.1) or "
            "the scripted churn scenario; available: "
            f"{', '.join(available_dynamics())} (simulation backends only)"
        ),
    )
    sweep.add_argument(
        "--features",
        type=int,
        default=100,
        help="synthetic-dataset feature count for the semantic backend",
    )
    sweep.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="run up to N trials concurrently (default: serial)",
    )
    sweep.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help=(
            "pool type for --parallel; the simulation is CPU-bound, so "
            "processes (the default) are what actually speed it up"
        ),
    )
    sweep.add_argument(
        "--nodes",
        metavar="HOST:PORT,...",
        default=None,
        help=(
            "shard the sweep's cells across running 'repro serve' nodes "
            "(comma-separated addresses) with pull-based work stealing; "
            "overrides --executor/--parallel — concurrency then belongs "
            "to the nodes"
        ),
    )
    sweep.add_argument(
        "--record",
        choices=("full", "summary"),
        default="full",
        help=(
            "what each task ships back: the full per-iteration log or just "
            "aggregate statistics (identical tables, far less pickling "
            "under --parallel)"
        ),
    )
    sweep.add_argument(
        "--trial-batching",
        dest="trial_batching",
        choices=("auto", "always", "never"),
        default="auto",
        help=(
            "dispatch whole cells as single trial-batched vectorized runs: "
            "'auto' only where bit-identical to per-trial execution, "
            "'always' also for random placements (one frozen placement per "
            "cell), 'never' keeps one task per (cell, trial)"
        ),
    )
    sweep.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help=(
            "serve repeated cells from a content-addressed result cache "
            "persisted in DIR (summary-form results survive across runs; "
            "keys fingerprint the full spec + seed + backend identity)"
        ),
    )

    tune = subparsers.add_parser(
        "tune",
        help="recommend the best (scheme, m, unit_size) for a cluster profile",
        description=(
            "Two-stage scheme auto-tuner: score every candidate in the "
            "(scheme, load, m, unit_size) grid with the closed-form analytic "
            "oracle, prune to the top-k frontier, confirm the survivors with "
            "trial-batched Monte-Carlo simulation, and print the ranked "
            "recommendation with confidence intervals and the analytic-vs-"
            "simulated sanity ratio."
        ),
    )
    tune.add_argument(
        "--scheme",
        action="append",
        dest="schemes",
        metavar="NAME",
        help=(
            "candidate scheme (repeatable); default: every homogeneous-"
            f"cluster scheme. available: {', '.join(available_schemes())}"
        ),
    )
    tune.add_argument(
        "--loads",
        type=lambda text: [int(part) for part in text.split(",") if part],
        default=[5, 10, 25],
        metavar="R1,R2,...",
        help="computational loads tried for load-taking schemes (default: 5,10,25)",
    )
    tune.add_argument("--workers", type=int, default=50, help="cluster size n")
    tune.add_argument(
        "--units",
        type=lambda text: [int(part) for part in text.split(",") if part],
        default=[50],
        metavar="M1,M2,...",
        help="data-unit counts m to try (default: 50)",
    )
    tune.add_argument(
        "--unit-sizes",
        dest="unit_sizes",
        type=lambda text: [int(part) for part in text.split(",") if part],
        default=[100],
        metavar="U1,U2,...",
        help="examples-per-unit values to try (default: 100)",
    )
    tune.add_argument(
        "--iterations", type=int, default=20, help="GD iterations per candidate"
    )
    tune.add_argument(
        "--trials",
        type=int,
        default=8,
        help="Monte-Carlo trials per confirmed candidate (default: 8)",
    )
    tune.add_argument(
        "--top-k",
        dest="top_k",
        type=int,
        default=5,
        help="analytic frontier size confirmed by simulation (default: 5)",
    )
    tune.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="CELLS",
        help="hard cap on simulated candidates (default: uncapped)",
    )
    tune.add_argument(
        "--dynamics",
        metavar="NAME[:k=v,...]",
        default=None,
        help=(
            "confirm candidates on a dynamic cluster (analytic pruning then "
            "ranks the stationary base as a proxy); available: "
            f"{', '.join(available_dynamics())}"
        ),
    )
    tune.add_argument(
        "--engine",
        choices=("loop", "vectorized", "auto"),
        default="auto",
        help="timing engine for the confirmation stage",
    )
    tune.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level of the reported intervals (default: 0.95)",
    )
    tune.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help=(
            "run the confirmation stage through a result cache persisted in "
            "DIR (repeat tunes and later sweeps re-simulate nothing)"
        ),
    )
    tune.add_argument(
        "--quick",
        action="store_true",
        help=(
            "scaled-down smoke run (fewer trials/iterations, truncated "
            "grid) — exercises the pipeline, not the calibration"
        ),
    )
    tune.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the full machine-readable report instead of the table",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the async sweep service over line-delimited JSON on TCP",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8123, help="TCP port")
    serve.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persist the result cache's disk tier in DIR",
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help="concurrent task slots (default: unbounded)",
    )
    serve.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="CELLS",
        help="reject submissions spanning more than CELLS sweep cells",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="exit after the first connection closes (scripted/CI use)",
    )
    serve.add_argument(
        "--join",
        metavar="HOST:PORT",
        default=None,
        help=(
            "worker mode: instead of listening, dial out to a waiting "
            "distributed-sweep coordinator (repro sweep --nodes / "
            "DistributedExecutor(listen=...)) and serve task leases over "
            "that connection until the coordinator hangs up"
        ),
    )
    serve.add_argument(
        "--self-test",
        dest="self_test",
        action="store_true",
        help=(
            "serve on an ephemeral port, submit the same sweep twice over "
            "TCP, and require the resubmission to be served from cache"
        ),
    )

    validate = subparsers.add_parser(
        "validate",
        help="cross-validate real multiprocess GD against the simulators",
        description=(
            "Run the pinned golden straggler scenarios on real worker "
            "processes with injected faults, replay the identical timeline "
            "through the timing simulator, and gate on the observed-vs-"
            "predicted runtime ratio per scheme. Appends a machine-readable "
            "record to the benchmark history and exits non-zero if any "
            "scheme lands outside the documented tolerance."
        ),
    )
    validate.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        choices=[scenario.name for scenario in golden_scenarios()],
        help="scenario to run (repeatable; default: all golden scenarios)",
    )
    validate.add_argument(
        "--quick",
        action="store_true",
        help=(
            "scaled-down smoke run: fewer iterations and trials, doubled "
            "tolerance — checks the loop end-to-end, not the calibration"
        ),
    )
    validate.add_argument(
        "--bench",
        default="benchmarks/BENCH_sweep.json",
        help="benchmark history JSON to append to",
    )
    validate.add_argument(
        "--no-append",
        action="store_true",
        help="print the comparison tables without touching the history file",
    )

    lint = subparsers.add_parser(
        "lint",
        help="statically check the library's determinism/parity/exception contracts",
    )
    lint_cli.build_parser(lint)

    churn = subparsers.add_parser(
        "churn",
        help="dynamic-cluster ablation: BCC vs baselines under churn",
    )
    churn.add_argument("--workers", type=int, default=20, help="cluster size n")
    churn.add_argument("--units", type=int, default=20, help="data units m")
    churn.add_argument(
        "--unit-size", type=int, default=100, help="examples per unit"
    )
    churn.add_argument(
        "--load", type=int, default=5, help="computational load r of the coded schemes"
    )
    churn.add_argument(
        "--iterations", type=int, default=30, help="GD iterations per run"
    )
    churn.add_argument(
        "--trials", type=int, default=3, help="Monte-Carlo trials per cell"
    )
    churn.add_argument(
        "--engine",
        choices=("loop", "vectorized", "auto"),
        default="auto",
        help="timing engine (both produce identical results)",
    )

    return parser


def run_cli_sweep(args: argparse.Namespace) -> str:
    """Build and run the ``sweep`` sub-command's grid; return the table text."""
    scheme_names = args.schemes or ["bcc", "uncoded"]
    cluster = ec2_like_cluster(args.workers)
    dynamics_spec = getattr(args, "dynamics", None)
    if dynamics_spec:
        cluster = dynamics_from_spec(
            dynamics_spec, cluster, num_iterations=args.iterations
        )
    scheme_configs: List[dict] = []
    for name in scheme_names:
        if scheme_accepts(name, "load"):
            scheme_configs.extend(
                {"name": name, "load": load} for load in args.loads
            )
        else:
            scheme_configs.append({"name": name})

    workload = None
    if args.backend == "semantic":
        from repro.datasets.batching import make_batches
        from repro.datasets.synthetic import LogisticDataConfig, make_paper_logistic_data
        from repro.gradients.logistic import LogisticLoss
        from repro.optim.nesterov import NesterovAcceleratedGradient

        num_examples = args.units * args.unit_size
        dataset, _ = make_paper_logistic_data(
            LogisticDataConfig(num_examples=num_examples, num_features=args.features),
            seed=args.seed,
        )
        workload = Workload(
            model=LogisticLoss(),
            dataset=dataset,
            optimizer=NesterovAcceleratedGradient(0.3),
            unit_spec=make_batches(num_examples, args.unit_size),
        )

    base = JobSpec(
        scheme=scheme_configs[0],
        cluster=cluster,
        num_units=None if workload is not None else args.units,
        num_iterations=args.iterations,
        unit_size=None if workload is not None else args.unit_size,
        serialize_master_link=False,
        seed=args.seed,
        workload=workload,
    )
    if args.backend == "timing":
        from repro.api import TimingSimBackend

        backend = TimingSimBackend(
            engine=args.engine, kernels=getattr(args, "kernels", "auto")
        )
    else:
        # "semantic" and "analytic" resolve by name; --engine only steers the
        # timing backend.
        backend = args.backend
    sweep = Sweep(
        base,
        parameters={"scheme": scheme_configs},
        trials=args.trials,
        backend=backend,
    )
    executor = args.executor
    if getattr(args, "nodes", None):
        from repro.scheduling import DistributedExecutor

        executor = DistributedExecutor(args.nodes)
    try:
        result = run_sweep(
            sweep,
            max_workers=args.parallel,
            executor=executor,
            record=getattr(args, "record", "full"),
            trial_batching=getattr(args, "trial_batching", "auto"),
            cache=getattr(args, "cache", None),
        )
    finally:
        if not isinstance(executor, str):
            executor.close()
    dynamics_note = f", dynamics={dynamics_spec}" if dynamics_spec else ""
    table = result.to_table(
        title=(
            f"Sweep — {args.backend} backend, n={args.workers} workers, "
            f"m={args.units} units x {args.unit_size}, "
            f"{args.iterations} iterations, {args.trials} trial(s)"
            f"{dynamics_note}"
        ),
    )
    return table.render()


def run_cli_tune(args: argparse.Namespace) -> str:
    """Build and run the ``tune`` sub-command; return the rendered report."""
    from repro.tuning import TuneSpec, tune

    spec = TuneSpec(
        cluster=ec2_like_cluster(args.workers),
        schemes=None if not args.schemes else tuple(args.schemes),
        loads=tuple(args.loads),
        num_units=tuple(args.units),
        unit_sizes=tuple(args.unit_sizes),
        num_iterations=args.iterations,
        trials=args.trials,
        top_k=args.top_k,
        budget=args.budget,
        dynamics=args.dynamics,
        seed=args.seed,
        confidence=args.confidence,
        engine=args.engine,
    )
    if args.quick:
        spec = spec.quick()
    report = tune(spec, cache=args.cache)
    if args.as_json:
        return report.to_json()
    lines = [report.to_table().render()]
    if report.infeasible:
        lines.append("")
        lines.append("infeasible candidates:")
        lines.extend(
            f"  {label}: {reason}"
            for label, reason in report.infeasible.items()
        )
    if report.failures:
        lines.append("")
        lines.append("failed confirmations:")
        lines.extend(
            f"  {label}: {reason}" for label, reason in report.failures.items()
        )
    if report.ranking:
        best = report.best
        lines.append("")
        lines.append(
            f"recommendation: {best.candidate.label} at "
            f"m={best.candidate.num_units}, unit_size="
            f"{best.candidate.unit_size} "
            f"({best.simulated_seconds:.4f} s simulated mean; analytic "
            f"pruning simulated {report.pruning.get('simulated', 0)} of "
            f"{report.pruning.get('candidates', 0)} candidates)"
        )
    return "\n".join(lines)


def run_cli_validate(args: argparse.Namespace) -> int:
    """Run the ``validate`` sub-command; return a process exit code.

    Exit code 0 means every scheme of every requested scenario landed within
    its tolerance; 1 means at least one ratio fell outside the gate (the
    tables show which).
    """
    scenarios = {scenario.name: scenario for scenario in golden_scenarios()}
    names = args.scenarios or list(scenarios)
    failed = False
    for name in names:
        scenario = scenarios[name]
        if args.quick:
            scenario = scenario.quick()
        report = validate_scenario(scenario)
        print(report.to_table().render())
        print()
        if not args.no_append:
            append_validation_record(
                report, args.bench, timestamp=utc_timestamp(), quick=args.quick
            )
        if not report.all_within_tolerance:
            failed = True
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Run one experiment and print its table; return a process exit code."""
    args = build_parser().parse_args(argv)

    if args.experiment == "lint":
        return lint_cli.run(args)
    if args.experiment == "validate":
        return run_cli_validate(args)
    if args.experiment == "fig2":
        result = run_fig2(
            num_examples=args.examples,
            num_workers=args.workers,
            monte_carlo_trials=args.trials,
            rng=args.seed,
            backend=args.backend,
        )
        print(result.render())
    elif args.experiment in ("table1", "table2"):
        config = (
            ScenarioConfig.scenario_one()
            if args.experiment == "table1"
            else ScenarioConfig.scenario_two()
        )
        result = run_scenario(
            config,
            rng=args.seed,
            num_iterations=args.iterations,
            backend=args.backend,
        )
        print(result.render())
        print()
        print(
            "BCC speed-up vs uncoded: "
            f"{100 * result.speedup_over('bcc', 'uncoded'):.1f}%   "
            "vs cyclic repetition: "
            f"{100 * result.speedup_over('bcc', 'cyclic-repetition'):.1f}%"
        )
    elif args.experiment == "fig5":
        result = run_fig5(
            num_examples=args.examples, num_trials=args.trials, rng=args.seed
        )
        print(result.render())
    elif args.experiment == "theorem1":
        validation = run_theorem1_validation(
            num_examples=args.examples,
            num_trials=args.trials,
            rng=args.seed,
            estimator=args.estimator,
        )
        print(validation.render())
    elif args.experiment == "theorem2":
        cluster = ClusterSpec.paper_fig5_cluster(
            num_workers=args.workers, num_fast=max(args.workers // 20, 1), shift=5.0
        )
        validation = run_theorem2_validation(
            num_examples=args.examples,
            cluster=cluster,
            num_trials=args.trials,
            rng=args.seed,
            analytic=args.analytic,
        )
        print(validation.render())
    elif args.experiment == "sweep":
        print(run_cli_sweep(args))
    elif args.experiment == "tune":
        print(run_cli_tune(args))
    elif args.experiment == "serve":
        from repro.service.server import run_server, run_worker, self_test

        if args.self_test:
            return self_test(args.host)
        if args.join:
            from repro.scheduling import parse_endpoint

            join_host, join_port = parse_endpoint(args.join)
            return run_worker(
                join_host,
                join_port,
                cache_dir=args.cache,
                max_workers=args.max_workers,
            )
        return run_server(
            host=args.host,
            port=args.port,
            cache_dir=args.cache,
            max_workers=args.max_workers,
            cell_budget=args.budget,
            once=args.once,
        )
    elif args.experiment == "churn":
        ablation = run_churn_ablation(
            ChurnAblationConfig(
                num_workers=args.workers,
                num_units=args.units,
                unit_size=args.unit_size,
                load=args.load,
                num_iterations=args.iterations,
                trials=args.trials,
            ),
            rng=args.seed,
            engine=args.engine,
        )
        print(ablation.render())
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
