"""Command-line entry point for regenerating the paper's artefacts.

Usage::

    python -m repro.experiments.cli fig2
    python -m repro.experiments.cli table1 --iterations 100 --seed 0
    python -m repro.experiments.cli fig5 --trials 300
    python -m repro.experiments.cli theorem1
    python -m repro.experiments.cli theorem2

Each sub-command runs the corresponding experiment driver at (scaled-down by
default, paper-scale via flags) settings and prints the reproduced table to
stdout. The benchmark harness remains the canonical way to regenerate every
artefact with assertions; the CLI is for quick interactive runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cluster.spec import ClusterSpec
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig4 import ScenarioConfig, run_scenario
from repro.experiments.fig5 import run_fig5
from repro.experiments.theorems import run_theorem1_validation, run_theorem2_validation

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the experiment CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the BCC paper.",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    subparsers = parser.add_subparsers(dest="experiment", required=True)

    fig2 = subparsers.add_parser("fig2", help="Fig. 2: recovery threshold vs load")
    fig2.add_argument("--examples", type=int, default=100, help="number of examples m")
    fig2.add_argument("--workers", type=int, default=100, help="number of workers n")
    fig2.add_argument(
        "--trials", type=int, default=20, help="Monte-Carlo trials per load (0 to skip)"
    )

    for name, help_text in (
        ("table1", "Table I: scenario one breakdown"),
        ("table2", "Table II: scenario two breakdown"),
    ):
        scenario = subparsers.add_parser(name, help=help_text)
        scenario.add_argument(
            "--iterations", type=int, default=100, help="GD iterations (default: 100)"
        )

    fig5 = subparsers.add_parser("fig5", help="Fig. 5: heterogeneous LB vs generalized BCC")
    fig5.add_argument("--examples", type=int, default=500, help="number of examples m")
    fig5.add_argument("--trials", type=int, default=200, help="Monte-Carlo trials")

    theorem1 = subparsers.add_parser("theorem1", help="Theorem 1 validation")
    theorem1.add_argument("--examples", type=int, default=100)
    theorem1.add_argument("--trials", type=int, default=1000)

    theorem2 = subparsers.add_parser("theorem2", help="Theorem 2 validation")
    theorem2.add_argument("--examples", type=int, default=100)
    theorem2.add_argument("--trials", type=int, default=200)
    theorem2.add_argument("--workers", type=int, default=50)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run one experiment and print its table; return a process exit code."""
    args = build_parser().parse_args(argv)

    if args.experiment == "fig2":
        result = run_fig2(
            num_examples=args.examples,
            num_workers=args.workers,
            monte_carlo_trials=args.trials,
            rng=args.seed,
        )
        print(result.render())
    elif args.experiment in ("table1", "table2"):
        config = (
            ScenarioConfig.scenario_one()
            if args.experiment == "table1"
            else ScenarioConfig.scenario_two()
        )
        result = run_scenario(config, rng=args.seed, num_iterations=args.iterations)
        print(result.render())
        print()
        print(
            "BCC speed-up vs uncoded: "
            f"{100 * result.speedup_over('bcc', 'uncoded'):.1f}%   "
            "vs cyclic repetition: "
            f"{100 * result.speedup_over('bcc', 'cyclic-repetition'):.1f}%"
        )
    elif args.experiment == "fig5":
        result = run_fig5(
            num_examples=args.examples, num_trials=args.trials, rng=args.seed
        )
        print(result.render())
    elif args.experiment == "theorem1":
        validation = run_theorem1_validation(
            num_examples=args.examples, num_trials=args.trials, rng=args.seed
        )
        print(validation.render())
    elif args.experiment == "theorem2":
        cluster = ClusterSpec.paper_fig5_cluster(
            num_workers=args.workers, num_fast=max(args.workers // 20, 1), shift=5.0
        )
        validation = run_theorem2_validation(
            num_examples=args.examples,
            cluster=cluster,
            num_trials=args.trials,
            rng=args.seed,
        )
        print(validation.render())
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
