"""An "EC2-like" cluster calibration.

The paper's measurements were taken on t2.micro instances where communication
dominates computation. We cannot rent that hardware here, so the simulator's
cluster is calibrated to the per-message and per-example magnitudes implied by
the paper's own Tables I and II:

* **computation** — the uncoded scheme (100 examples/worker/iteration)
  accumulates ~0.23 s of computation over 100 iterations in scenario one,
  i.e. a few (tens of) microseconds per example with little variance. We use
  a deterministic 8 µs/example plus a small exponential tail (the
  shift-exponential family the paper itself adopts analytically).
* **communication** — the break-down in Table I (uncoded 28.6 s, cyclic
  repetition 12.0 s, BCC 3.0 s over 100 iterations, i.e. roughly in the ratio
  of the max / 41st / 11th order statistics of 50 transfer times) indicates
  per-message transfer times with a large random component and little
  serialisation at the master. The calibration therefore uses a small
  deterministic per-unit cost plus an exponential jitter with a ~60 ms mean,
  and the scenario driver runs the simulator with a non-serialised master
  link.

Absolute seconds are not expected to match the paper (different hardware);
the *ratios* between schemes are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec
from repro.stragglers.communication import LinearCommunicationModel
from repro.stragglers.models import ShiftedExponentialDelay
from repro.utils.validation import check_positive_int

__all__ = ["EC2LikeConfig", "ec2_like_cluster"]


@dataclass(frozen=True)
class EC2LikeConfig:
    """Calibration constants for the EC2-like simulated cluster.

    Attributes
    ----------
    seconds_per_example:
        Deterministic computation seconds per training example (the shift
        parameter of the per-example shift-exponential model).
    straggling:
        Straggling parameter ``mu`` of the shift-exponential computation
        model; the exponential tail of a task over ``k`` examples has mean
        ``k / mu`` seconds, so smaller values straggle more.
    comm_seconds_per_unit:
        Deterministic master-side transfer seconds per message unit (one
        gradient vector).
    comm_latency:
        Fixed per-message overhead in seconds.
    comm_jitter:
        Mean of the exponential jitter added to each transfer — the dominant
        communication term on the t2.micro-like network.
    """

    seconds_per_example: float = 8.0e-6
    straggling: float = 1.0e6
    comm_seconds_per_unit: float = 2.0e-3
    comm_latency: float = 1.0e-3
    comm_jitter: float = 6.0e-2


def ec2_like_cluster(
    num_workers: int, config: EC2LikeConfig = EC2LikeConfig()
) -> ClusterSpec:
    """Build a homogeneous cluster with the EC2-like calibration."""
    check_positive_int(num_workers, "num_workers")
    compute = ShiftedExponentialDelay(
        straggling=config.straggling, shift=config.seconds_per_example
    )
    communication = LinearCommunicationModel(
        latency=config.comm_latency,
        seconds_per_unit=config.comm_seconds_per_unit,
        jitter=config.comm_jitter,
    )
    return ClusterSpec.homogeneous(num_workers, compute, communication)
