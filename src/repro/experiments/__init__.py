"""Experiment drivers that regenerate every table and figure of the paper.

Each driver returns a plain result object with the same rows/series the paper
reports and a ``render()`` method producing a monospace table, so the
benchmark harness can both assert on the numbers and print them.

=====================  =====================================================
Paper artefact         Driver
=====================  =====================================================
Fig. 2                 :func:`repro.experiments.fig2.run_fig2`
Fig. 4 + Tables I/II   :func:`repro.experiments.fig4.run_scenario`
Fig. 5                 :func:`repro.experiments.fig5.run_fig5`
Theorem 1 validation   :func:`repro.experiments.theorems.run_theorem1_validation`
Theorem 2 validation   :func:`repro.experiments.theorems.run_theorem2_validation`
Ablations              :mod:`repro.experiments.ablations`
Churn ablation         :func:`repro.experiments.churn.run_churn_ablation`
=====================  =====================================================
"""

from repro.experiments.ec2 import ec2_like_cluster, EC2LikeConfig
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig4 import ScenarioConfig, ScenarioResult, run_scenario
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.theorems import (
    Theorem1Validation,
    run_theorem1_validation,
    Theorem2Validation,
    run_theorem2_validation,
)
from repro.experiments.churn import (
    ChurnAblationConfig,
    ChurnAblationResult,
    available_dynamics,
    dynamics_from_spec,
    run_churn_ablation,
)
from repro.experiments.ablations import (
    load_sweep,
    straggler_intensity_sweep,
    delay_model_comparison,
    communication_ratio_sweep,
    allocation_strategy_comparison,
    exactness_under_time_budget,
)

__all__ = [
    "ec2_like_cluster",
    "EC2LikeConfig",
    "Fig2Result",
    "run_fig2",
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "Fig5Result",
    "run_fig5",
    "Theorem1Validation",
    "run_theorem1_validation",
    "Theorem2Validation",
    "run_theorem2_validation",
    "ChurnAblationConfig",
    "ChurnAblationResult",
    "available_dynamics",
    "dynamics_from_spec",
    "run_churn_ablation",
    "load_sweep",
    "straggler_intensity_sweep",
    "delay_model_comparison",
    "communication_ratio_sweep",
    "allocation_strategy_comparison",
    "exactness_under_time_budget",
]
