"""Off-grid ablation: coded gradient schemes under dynamic clusters.

The paper's universality claim — BCC needs no knowledge of the delay
distribution — is evaluated on *stationary* clusters. This driver extends the
comparison off-grid: the same schemes run on clusters whose stragglers vary
over time (Markov slow/fast regimes, drifting slowdown), lose workers to spot
preemption, and churn (scripted leave/join events). Schemes whose placements
carry no redundancy can *fail outright* under churn — an iteration whose
required workers are vacant never completes — and the ablation reports that
as a ``FAILED`` row rather than a number, which is itself the result: BCC
and the replicated/coded schemes keep running where uncoded cannot.

The driver doubles as the home of the CLI's ``--dynamics`` parser
(:func:`dynamics_from_spec`), so ``sweep --dynamics markov:slowdown=8`` and
the ``churn`` sub-command share one scenario vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.api import JobSpec, TimingSimBackend
from repro.cluster.dynamic import ChurnEvent, DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.exceptions import ConfigurationError, SimulationError
from repro.experiments.ec2 import ec2_like_cluster
from repro.schemes.registry import scheme_accepts
from repro.stragglers.dynamics import available_processes
from repro.utils.rng import RandomState, random_seed_sequence
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive_int

__all__ = [
    "ChurnAblationConfig",
    "ChurnAblationResult",
    "available_dynamics",
    "dynamics_from_spec",
    "default_scenarios",
    "run_churn_ablation",
]

#: Scenario names accepted by :func:`dynamics_from_spec` beyond the process
#: registry: ``churn`` scripts periodic preemptions plus one permanent leave.
_SCENARIO_ONLY = ("churn",)


def available_dynamics() -> List[str]:
    """Names accepted by ``--dynamics``: registered processes + scenarios."""
    return sorted(set(available_processes()) | set(_SCENARIO_ONLY))


def _parse_value(text: str) -> object:
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def dynamics_from_spec(
    spec: str,
    base: ClusterSpec,
    *,
    num_iterations: Optional[int] = None,
) -> DynamicClusterSpec:
    """Build a :class:`DynamicClusterSpec` from a CLI-style spec string.

    The grammar is ``name[:key=value,key=value,...]`` where ``name`` is a
    registered worker process (``markov``, ``drift``, ``preempt``) or the
    scripted ``churn`` scenario::

        markov
        markov:slowdown=8,p_slow=0.1
        preempt:preempt_probability=0.05,recovery_iterations=4
        churn:period=10,recovery=3

    ``churn`` preempts worker ``t // period mod n`` every ``period``
    iterations (default 10) for ``recovery`` iterations (default 3) and
    permanently removes the last worker halfway through the job
    (``num_iterations`` sizes the schedule; it defaults to 100 events' worth).
    """
    name, _, tail = spec.partition(":")
    name = name.strip()
    options: Dict[str, object] = {}
    if tail:
        for part in tail.split(","):
            key, separator, value = part.partition("=")
            if not separator:
                raise ConfigurationError(
                    f"malformed --dynamics option {part!r}; expected key=value"
                )
            options[key.strip()] = _parse_value(value.strip())
    if name == "churn":
        period = int(options.pop("period", 10))
        recovery = int(options.pop("recovery", 3))
        if options:
            raise ConfigurationError(
                f"churn scenario does not accept the option(s) {sorted(options)}"
            )
        check_positive_int(period, "period")
        check_positive_int(recovery, "recovery")
        horizon = int(num_iterations) if num_iterations else 100
        if horizon < 2:
            raise ConfigurationError(
                "the churn scenario schedules its events across the job and "
                f"needs a horizon of at least 2 iterations, got {horizon}; "
                "use a worker process (markov/drift/preempt) for shorter jobs"
            )
        events: List[ChurnEvent] = [
            ChurnEvent(
                kind="preempt",
                worker=(start // period) % base.num_workers,
                iteration=start,
                recovery=recovery,
            )
            for start in range(period, horizon, period)
        ]
        if horizon >= 2:
            events.append(
                ChurnEvent(
                    kind="leave",
                    worker=base.num_workers - 1,
                    iteration=horizon // 2,
                )
            )
        return DynamicClusterSpec(base, events=tuple(events))
    if name not in available_processes():
        raise ConfigurationError(
            f"unknown dynamics {name!r}; available: {available_dynamics()}"
        )
    return DynamicClusterSpec(base, dynamics={"name": name, **options})


def default_scenarios(
    base: ClusterSpec, num_iterations: int
) -> Dict[str, Union[ClusterSpec, DynamicClusterSpec]]:
    """The ablation's scenario column: stationary plus four dynamic regimes."""
    return {
        "static": base,
        "markov": dynamics_from_spec(
            "markov:slowdown=8,p_slow=0.08,p_recover=0.4", base
        ),
        "drift": dynamics_from_spec("drift:final_factor=3.0", base),
        "preempt": dynamics_from_spec(
            "preempt:preempt_probability=0.03,recovery_iterations=3", base
        ),
        "churn": dynamics_from_spec(
            "churn", base, num_iterations=num_iterations
        ),
    }


@dataclass(frozen=True)
class ChurnAblationConfig:
    """Shape of the churn ablation's jobs (scaled down from the paper)."""

    num_workers: int = 20
    num_units: int = 20
    unit_size: int = 100
    load: int = 5
    num_iterations: int = 30
    trials: int = 3

    def __post_init__(self) -> None:
        for name in (
            "num_workers",
            "num_units",
            "unit_size",
            "load",
            "num_iterations",
            "trials",
        ):
            check_positive_int(getattr(self, name), name)


@dataclass
class ChurnAblationResult:
    """Per (scenario, scheme) trial-averaged metrics, ``None`` for failures."""

    config: ChurnAblationConfig
    scenario_names: List[str] = field(default_factory=list)
    scheme_names: List[str] = field(default_factory=list)
    total_times: Dict[tuple, Optional[float]] = field(default_factory=dict)
    recovery_thresholds: Dict[tuple, Optional[float]] = field(default_factory=dict)
    failures: Dict[tuple, int] = field(default_factory=dict)

    def completed(self, scenario: str, scheme: str) -> bool:
        """Whether every trial of the cell recovered the gradient."""
        return self.failures.get((scenario, scheme), 0) == 0

    def speedup_over(self, scenario: str, scheme: str, baseline: str) -> float:
        """Relative total-time reduction of ``scheme`` vs ``baseline``."""
        fast = self.total_times[(scenario, scheme)]
        slow = self.total_times[(scenario, baseline)]
        if fast is None or slow is None:
            raise SimulationError(
                f"scenario {scenario!r}: cannot compare {scheme!r} with "
                f"{baseline!r}; a cell failed to complete"
            )
        return 1.0 - fast / slow

    def render(self) -> str:
        """Monospace table, one row per scenario with per-scheme totals."""
        headers = ["scenario"]
        for scheme in self.scheme_names:
            headers += [f"{scheme} T", f"{scheme} k"]
        table = TextTable(
            headers,
            title=(
                "Churn ablation — total time T and realised threshold k, "
                f"n={self.config.num_workers}, m={self.config.num_units} "
                f"units x {self.config.unit_size}, r={self.config.load}, "
                f"{self.config.num_iterations} iterations, "
                f"{self.config.trials} trial(s)"
            ),
        )
        for scenario in self.scenario_names:
            row: List[object] = [scenario]
            for scheme in self.scheme_names:
                key = (scenario, scheme)
                if self.failures.get(key, 0):
                    row += ["FAILED", "-"]
                else:
                    row += [
                        self.total_times[key],
                        self.recovery_thresholds[key],
                    ]
            table.add_row(row)
        return table.render()


def _scheme_configs(config: ChurnAblationConfig) -> Dict[str, Mapping[str, object]]:
    """The compared schemes: the paper's three plus fractional repetition."""
    names = ("uncoded", "cyclic-repetition", "fractional-repetition", "bcc")
    configs: Dict[str, Mapping[str, object]] = {}
    for name in names:
        if scheme_accepts(name, "load"):
            configs[name] = {"name": name, "load": config.load}
        else:
            configs[name] = {"name": name}
    return configs


def run_churn_ablation(
    config: Optional[ChurnAblationConfig] = None,
    *,
    rng: RandomState = 0,
    schemes: Optional[Mapping[str, Mapping[str, object]]] = None,
    scenarios: Optional[Mapping[str, Union[ClusterSpec, DynamicClusterSpec]]] = None,
    engine: str = "auto",
) -> ChurnAblationResult:
    """Run the BCC-vs-baselines comparison across dynamic-cluster scenarios.

    Every (scenario, scheme, trial) cell runs through the unified API on the
    timing backend; a trial whose aggregator can never complete (coverage
    lost to churn) marks the cell ``FAILED`` instead of aborting the
    ablation. Trials are seeded from spawned
    :class:`numpy.random.SeedSequence` children, so cells are independent
    and the ablation is deterministic under ``rng``.
    """
    config = config or ChurnAblationConfig()
    base = ec2_like_cluster(config.num_workers)
    scenarios = dict(
        scenarios
        if scenarios is not None
        else default_scenarios(base, config.num_iterations)
    )
    schemes = dict(schemes if schemes is not None else _scheme_configs(config))
    backend = TimingSimBackend(engine=engine)

    result = ChurnAblationResult(
        config=config,
        scenario_names=list(scenarios),
        scheme_names=list(schemes),
    )
    root = random_seed_sequence(rng)
    children = iter(root.spawn(len(scenarios) * len(schemes) * config.trials))
    for scenario_name, cluster in scenarios.items():
        for scheme_name, scheme_config in schemes.items():
            totals: List[float] = []
            thresholds: List[float] = []
            failures = 0
            for _trial in range(config.trials):
                spec = JobSpec(
                    scheme=scheme_config,
                    cluster=cluster,
                    num_units=config.num_units,
                    num_iterations=config.num_iterations,
                    unit_size=config.unit_size,
                    serialize_master_link=False,
                    seed=next(children),
                )
                try:
                    run = backend.run(spec)
                except SimulationError:
                    failures += 1
                    continue
                totals.append(run.total_time)
                thresholds.append(run.average_recovery_threshold)
            key = (scenario_name, scheme_name)
            result.failures[key] = failures
            result.total_times[key] = float(np.mean(totals)) if totals else None
            result.recovery_thresholds[key] = (
                float(np.mean(thresholds)) if thresholds else None
            )
    return result
