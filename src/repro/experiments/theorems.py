"""Numerical validation of Theorem 1 and Theorem 2.

These drivers check the paper's analytical claims against simulation:

* **Theorem 1** — the Monte-Carlo estimate of the BCC scheme's recovery
  threshold matches the closed form ``ceil(m/r) H_{ceil(m/r)}`` and sits
  inside the ``[m/r, ceil(m/r) H]`` sandwich.
* **Theorem 2** — the generalized BCC scheme's measured average coverage time
  lies between the theorem's lower bound (``min E[T-hat(m)]``) and upper
  bound (``min E[T-hat(floor(c m log m))] + 1``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.bounds import Theorem2Bounds, theorem1_bounds, theorem2_bounds
from repro.analysis.coupon import simulate_coupon_draws
from repro.api import JobSpec, RunResult, Sweep, run_sweep
from repro.cluster.spec import ClusterSpec
from repro.cluster.waiting_time import estimate_coverage_time
from repro.coding.placement import heterogeneous_random_placement
from repro.cluster.allocation import solve_p2_allocation
from repro.exceptions import ConfigurationError
from repro.stragglers.communication import ZeroCommunicationModel
from repro.stragglers.models import ExponentialDelay
from repro.utils.rng import RandomState, as_generator
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive_int

__all__ = [
    "Theorem1Validation",
    "run_theorem1_validation",
    "Theorem2Validation",
    "run_theorem2_validation",
]


@dataclass
class Theorem1Validation:
    """Per-(m, r) comparison of the BCC closed form against an estimate.

    ``simulated`` holds the Monte-Carlo coupon-collector estimate by default,
    or the analytic backend's conditional expectation when the validation was
    run with ``estimator="analytic"`` (see :func:`run_theorem1_validation`).
    """

    num_examples: int
    loads: List[int]
    lower_bounds: List[float] = field(default_factory=list)
    closed_forms: List[float] = field(default_factory=list)
    simulated: List[float] = field(default_factory=list)
    estimator: str = "monte-carlo"

    def render(self) -> str:
        table = TextTable(
            ["r", "lower bound m/r", "K_BCC closed form", f"K_BCC {self.estimator}"],
            title=f"Theorem 1 validation (m={self.num_examples})",
        )
        for i, load in enumerate(self.loads):
            table.add_row(
                [load, self.lower_bounds[i], self.closed_forms[i], self.simulated[i]]
            )
        return table.render()

    def max_relative_error(self) -> float:
        """Largest |simulated - closed form| / closed form across loads."""
        errors = [
            abs(sim - closed) / closed
            for sim, closed in zip(self.simulated, self.closed_forms)
        ]
        return float(max(errors))


def run_theorem1_validation(
    num_examples: int = 100,
    loads: Optional[Sequence[int]] = None,
    *,
    num_trials: int = 500,
    rng: RandomState = 0,
    estimator: str = "monte-carlo",
) -> Theorem1Validation:
    """Check the BCC stopping time against the closed form ``ceil(m/r) H``.

    Parameters
    ----------
    estimator:
        ``"monte-carlo"`` (default) samples the coupon-collector stopping
        time; ``"analytic"`` evaluates the
        :class:`~repro.api.backends.AnalyticBackend`'s conditional
        expectation of the recovery threshold on a large unit-rate cluster
        instead — no draws at all, so the ``ceil(m/r) H`` column is
        cross-validated by an independent closed-form path.
    """
    m = check_positive_int(num_examples, "num_examples")
    check_positive_int(num_trials, "num_trials")
    if loads is None:
        loads = [load for load in (5, 10, 20, 25, 50) if load <= m] or [max(m // 2, 1)]
    generator = as_generator(rng)
    result = Theorem1Validation(
        num_examples=m, loads=[int(r) for r in loads], estimator=estimator
    )

    def coupon_runner(spec: JobSpec) -> RunResult:
        """Monte-Carlo one load's coupon-collector stopping time."""
        load = int(spec.scheme["load"])
        num_batches = -(-m // load)
        draws = simulate_coupon_draws(
            num_batches, rng=spec.rng(), num_trials=num_trials
        )
        return RunResult(
            scheme_name="bcc",
            backend="coupon-monte-carlo",
            extras={"mean_draws": float(np.mean(draws))},
        )

    if estimator == "monte-carlo":
        base = JobSpec(scheme={"name": "bcc"}, num_units=m, seed=generator)
        backend = coupon_runner
    elif estimator == "analytic":
        # A worker cap large enough that conditioning on K <= n is
        # negligible; the backend needs a cluster to size the arrival pool.
        cap = min(max(8 * m, 200), 2000)
        cluster = ClusterSpec.homogeneous(cap, ExponentialDelay(straggling=1.0))
        base = JobSpec(
            scheme={"name": "bcc"},
            cluster=cluster,
            num_units=m,
            serialize_master_link=False,
            seed=generator,
        )
        backend = "analytic"
    else:
        raise ConfigurationError(
            f"estimator must be 'monte-carlo' or 'analytic', got {estimator!r}"
        )

    sweep = Sweep(
        base,
        parameters={"scheme.load": result.loads},
        backend=backend,
        seed_strategy="shared",
    )
    records = run_sweep(sweep).records
    for load, record in zip(result.loads, records):
        bounds = theorem1_bounds(m, load)
        result.lower_bounds.append(bounds.lower)
        result.closed_forms.append(bounds.upper)
        if estimator == "monte-carlo":
            result.simulated.append(record.result.extras["mean_draws"])
        else:
            result.simulated.append(record.result.average_recovery_threshold)
    return result


@dataclass
class Theorem2Validation:
    """Measured generalized-BCC coverage time against the Theorem 2 bounds."""

    num_examples: int
    bounds: Theorem2Bounds
    measured_coverage_time: float
    analytic_coverage_time: Optional[float] = None

    @property
    def within_bounds(self) -> bool:
        """Whether the measured time falls inside ``[lower, upper]`` (with slack).

        A 5 % tolerance absorbs Monte-Carlo noise on both sides.
        """
        slack_low = 0.95 * self.bounds.lower
        slack_high = 1.05 * self.bounds.upper
        return slack_low <= self.measured_coverage_time <= slack_high

    def render(self) -> str:
        table = TextTable(
            ["quantity", "value"],
            title=f"Theorem 2 validation (m={self.num_examples})",
        )
        table.add_row(["lower bound  min E[T-hat(m)]", self.bounds.lower])
        table.add_row(["measured generalized-BCC coverage time", self.measured_coverage_time])
        if self.analytic_coverage_time is not None:
            table.add_row(
                ["analytic generalized-BCC coverage time", self.analytic_coverage_time]
            )
        table.add_row(["upper bound  min E[T-hat(c m log m)] + 1", self.bounds.upper])
        table.add_row(["constant c", self.bounds.constant])
        return table.render()


def run_theorem2_validation(
    num_examples: int = 100,
    cluster: Optional[ClusterSpec] = None,
    *,
    num_trials: int = 200,
    rng: RandomState = 0,
    analytic: bool = False,
) -> Theorem2Validation:
    """Check the Theorem 2 sandwich on a (default: paper Fig. 5 style) cluster.

    With ``analytic=True`` the table additionally carries the closed-form
    coverage-time estimate of the generalized BCC scheme (the
    :meth:`~repro.schemes.base.Scheme.analytic_runtime` hook evaluated on a
    communication-free view of the cluster, matching the compute-only
    coverage time the Monte-Carlo estimator measures).
    """
    m = check_positive_int(num_examples, "num_examples")
    cluster = cluster or ClusterSpec.paper_fig5_cluster(
        num_workers=50, num_fast=3, shift=5.0
    )
    generator = as_generator(rng)
    bounds = theorem2_bounds(cluster, m, rng=generator, num_trials=num_trials)
    # The scheme under test, shared by the Monte-Carlo estimator and the
    # analytic path: P2-optimal loads for the c*m*log(m) target.
    target = max(int(math.floor(bounds.constant * m * math.log(m))), m)
    allocation = solve_p2_allocation(cluster, target=target, max_load=m)

    def coverage_runner(spec: JobSpec) -> RunResult:
        # Measure the generalized BCC scheme itself: random per-worker
        # example selection under the shared allocation, coverage stop.

        def assignment_sampler(gen: np.random.Generator):
            return heterogeneous_random_placement(m, allocation.loads, gen).assignments

        measured = estimate_coverage_time(
            spec.cluster,
            m,
            assignment_sampler,
            rng=spec.rng(),
            num_trials=num_trials,
            allow_incomplete=True,
        )
        return RunResult(
            scheme_name="generalized-bcc",
            backend="coverage-monte-carlo",
            extras={"coverage_time": measured},
        )

    sweep = Sweep(
        JobSpec(scheme="generalized-bcc", cluster=cluster, num_units=m, seed=generator),
        backend=coverage_runner,
        seed_strategy="shared",
    )
    (record,) = run_sweep(sweep).records

    analytic_time: Optional[float] = None
    if analytic:
        from repro.schemes.heterogeneous import GeneralizedBCCScheme

        compute_only = ClusterSpec(
            workers=cluster.workers, communication=ZeroCommunicationModel()
        )
        estimate = GeneralizedBCCScheme(loads=allocation.loads).analytic_runtime(
            compute_only, m, serialize_master_link=False
        )
        analytic_time = estimate.total_time

    return Theorem2Validation(
        num_examples=m,
        bounds=bounds,
        measured_coverage_time=record.result.extras["coverage_time"],
        analytic_coverage_time=analytic_time,
    )
