"""Reproduction of the paper's Fig. 5: heterogeneous clusters, LB vs generalized BCC.

Setting (Section IV-C): ``m = 500`` examples over ``n = 100`` workers; every
worker has shift parameter ``a_i = 20``; 95 workers have straggling parameter
``mu_i = 1`` and the remaining 5 have ``mu_i = 20``. The baseline "LB"
distributes the examples proportionally to worker speed without repetition
(so the master waits for every worker), while the generalized BCC scheme
assigns P2-optimal loads targeting ``m log m`` collected gradients and lets
every worker sample its examples uniformly at random; the master stops at
coverage. The paper reports a 29.28 % reduction in average computation time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.api import JobSpec, RunResult, Sweep, run_sweep
from repro.cluster.allocation import load_balanced_allocation, solve_p2_allocation
from repro.cluster.spec import ClusterSpec
from repro.cluster.waiting_time import sample_completion_times, sample_coverage_time
from repro.coding.placement import heterogeneous_random_placement
from repro.utils.rng import RandomState, as_generator
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive_int

__all__ = ["Fig5Result", "run_fig5"]


@dataclass
class Fig5Result:
    """Average computation times of the LB and generalized BCC strategies."""

    num_examples: int
    num_workers: int
    lb_average_time: float
    bcc_average_time: float
    lb_loads_total: int
    bcc_loads_total: int

    @property
    def reduction(self) -> float:
        """Relative reduction in average computation time of generalized BCC vs LB."""
        return 1.0 - self.bcc_average_time / self.lb_average_time

    def render(self) -> str:
        table = TextTable(
            ["strategy", "average computation time", "total assigned examples"],
            title=(
                f"Fig. 5 — heterogeneous cluster (m={self.num_examples}, "
                f"n={self.num_workers}); reduction={100 * self.reduction:.2f}%"
            ),
        )
        table.add_row(["LB", self.lb_average_time, self.lb_loads_total])
        table.add_row(["generalized BCC", self.bcc_average_time, self.bcc_loads_total])
        return table.render()


def run_fig5(
    num_examples: int = 500,
    cluster: Optional[ClusterSpec] = None,
    *,
    num_trials: int = 200,
    target_scale: Optional[float] = None,
    rng: RandomState = 0,
) -> Fig5Result:
    """Estimate the Fig. 5 comparison by Monte-Carlo over the cluster's delay models.

    Parameters
    ----------
    num_examples:
        Dataset size ``m`` (paper: 500).
    cluster:
        Heterogeneous cluster; defaults to the paper's Fig. 5 cluster.
    num_trials:
        Monte-Carlo trials for each strategy's average time.
    target_scale:
        Multiplier ``c`` such that the generalized BCC loads target
        ``c * m`` collected gradients; defaults to ``log m`` (the paper's
        ``m log m`` target).
    """
    m = check_positive_int(num_examples, "num_examples")
    check_positive_int(num_trials, "num_trials")
    cluster = cluster or ClusterSpec.paper_fig5_cluster()
    generator = as_generator(rng)

    def monte_carlo_runner(spec: JobSpec) -> RunResult:
        """Vectorised Monte-Carlo of one strategy's per-trial completion times.

        The sweep cells are the two Fig. 5 strategies; each cell returns its
        raw trial times in ``extras`` so the driver can post-process (the
        BCC coverage-failure fallback needs the LB average) and aggregate.
        """
        gen = spec.rng()
        strategy = spec.scheme
        if strategy == "load-balanced":
            # Proportional loads, wait for every loaded worker (workers with
            # zero load report nothing and are not waited for).
            loads = load_balanced_allocation(spec.cluster, m).loads
            times = sample_completion_times(
                spec.cluster, loads, rng=gen, num_trials=num_trials
            )
            per_trial = np.nanmax(np.where(np.isfinite(times), times, np.nan), axis=1)
        else:
            # P2-optimal loads for the m log m target, coverage stop.
            scale = target_scale if target_scale is not None else math.log(max(m, 2))
            target = max(int(math.floor(scale * m)), m)
            loads = solve_p2_allocation(spec.cluster, target=target, max_load=m).loads

            def assignment_sampler(g: np.random.Generator):
                return heterogeneous_random_placement(m, loads, g).assignments

            per_trial = sample_coverage_time(
                spec.cluster, m, assignment_sampler, rng=gen, num_trials=num_trials
            )
        return RunResult(
            scheme_name=str(strategy),
            backend="fig5-monte-carlo",
            extras={"trial_times": per_trial, "loads_total": int(loads.sum())},
        )

    sweep = Sweep(
        JobSpec(scheme="load-balanced", cluster=cluster, num_units=m, seed=generator),
        parameters={"scheme": ["load-balanced", "generalized-bcc"]},
        backend=monte_carlo_runner,
        seed_strategy="shared",
    )
    lb_record, bcc_record = run_sweep(sweep).records

    lb_per_trial = lb_record.result.extras["trial_times"]
    lb_average = float(np.mean(lb_per_trial))

    bcc_times = bcc_record.result.extras["trial_times"]
    finite = np.isfinite(bcc_times)
    if not finite.all():
        # Coverage failures are counted at the LB completion time (the master
        # could always fall back to waiting for everyone); with the paper's
        # target they essentially never occur.
        bcc_times = np.where(finite, bcc_times, lb_average)
    bcc_average = float(np.mean(bcc_times))

    return Fig5Result(
        num_examples=m,
        num_workers=cluster.num_workers,
        lb_average_time=lb_average,
        bcc_average_time=bcc_average,
        lb_loads_total=int(lb_record.result.extras["loads_total"]),
        bcc_loads_total=int(bcc_record.result.extras["loads_total"]),
    )
