"""Reproduction of the paper's Fig. 2: recovery threshold vs computational load.

The figure compares, for ``m = n = 100``, the lower bound ``m/r``, the BCC
scheme, the simple randomized scheme and the cyclic-repetition scheme. This
driver evaluates the analytical curves via :mod:`repro.analysis.tradeoff` and
additionally estimates the BCC and randomized thresholds by Monte-Carlo
simulation of the corresponding stopping rules, so the closed forms are
cross-checked against the actual schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.tradeoff import tradeoff_curves
from repro.api import JobSpec, Sweep, run_sweep
from repro.cluster.spec import ClusterSpec
from repro.stragglers.models import ExponentialDelay
from repro.utils.rng import RandomState, as_generator
from repro.utils.tables import TextTable
from repro.utils.validation import check_positive_int

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    """The four Fig. 2 curves plus Monte-Carlo cross-checks.

    Attributes
    ----------
    loads:
        Computational loads ``r`` on the x-axis.
    curves:
        Mapping scheme name -> analytic recovery thresholds, aligned with
        ``loads``.
    simulated:
        Mapping scheme name -> Monte-Carlo estimates (only for the schemes
        whose threshold is random: ``bcc`` and ``randomized``).
    """

    num_examples: int
    num_workers: int
    loads: List[int]
    curves: Dict[str, List[float]] = field(default_factory=dict)
    simulated: Dict[str, List[float]] = field(default_factory=dict)
    estimate_label: str = "sim"

    def render(self) -> str:
        """Monospace table with one row per load and one column per curve."""
        headers = ["r", *sorted(self.curves)]
        if self.simulated:
            headers += [
                f"{name} ({self.estimate_label})" for name in sorted(self.simulated)
            ]
        table = TextTable(
            headers,
            title=(
                f"Fig. 2 — recovery threshold vs computational load "
                f"(m={self.num_examples}, n={self.num_workers})"
            ),
        )
        for index, load in enumerate(self.loads):
            row: List[object] = [load]
            row += [self.curves[name][index] for name in sorted(self.curves)]
            row += [self.simulated[name][index] for name in sorted(self.simulated)]
            table.add_row(row)
        return table.render()


def _simulate_thresholds(
    loads: Sequence[int],
    num_units: int,
    num_workers: int,
    trials: int,
    rng: np.random.Generator,
    backend: str = "timing",
) -> Dict[str, List[float]]:
    """Estimate the BCC and randomized stopping rules over every load.

    One `run_sweep` grid covers the whole (load x scheme) plane. With the
    default ``"timing"`` backend each trial re-draws the random placement and
    simulates a single iteration, so the trial-averaged recovery threshold
    estimates the schemes' random thresholds Monte-Carlo style; the shared
    seed strategy threads one generator through the cells in order, matching
    the historic hand-written loop draw for draw. With ``backend="analytic"``
    the same grid returns the closed-form expected thresholds instead —
    no iteration is simulated and ``trials`` collapses to one evaluation.
    """
    cluster = ClusterSpec.homogeneous(num_workers, ExponentialDelay(straggling=1.0))
    base = JobSpec(
        scheme="bcc",
        cluster=cluster,
        num_units=num_units,
        num_iterations=1,
        serialize_master_link=False,
        seed=rng,
    )
    sweep = Sweep(
        base,
        parameters={
            "scheme.load": [int(load) for load in loads],
            "scheme.name": ["bcc", "randomized"],
        },
        trials=1 if backend == "analytic" else trials,
        backend=backend,
        seed_strategy="shared",
    )
    simulated: Dict[str, List[float]] = {"bcc": [], "randomized": []}
    result = run_sweep(sweep)
    for cell in range(result.num_cells):
        records = result.cell_records(cell)
        name = str(records[0].params["scheme.name"])
        counts = [record.result.average_recovery_threshold for record in records]
        simulated[name].append(float(np.mean(counts)))
    return simulated


def run_fig2(
    num_examples: int = 100,
    num_workers: int = 100,
    loads: Optional[Sequence[int]] = None,
    *,
    monte_carlo_trials: int = 30,
    rng: RandomState = 0,
    backend: str = "timing",
) -> Fig2Result:
    """Compute the Fig. 2 curves (and Monte-Carlo or analytic cross-checks).

    Parameters
    ----------
    num_examples, num_workers:
        Figure uses ``m = n = 100``.
    loads:
        The computational loads ``r`` to evaluate; defaults to
        ``5, 10, ..., 50`` (the figure's x-axis range).
    monte_carlo_trials:
        Trials per load for the simulated BCC / randomized thresholds; set to
        0 to skip the cross-check columns entirely.
    backend:
        ``"timing"`` (default) estimates the random thresholds by Monte-Carlo
        simulation; ``"analytic"`` evaluates them in closed form through the
        :class:`~repro.api.backends.AnalyticBackend`, so the figure
        regenerates without simulating a single iteration.
    """
    m = check_positive_int(num_examples, "num_examples")
    n = check_positive_int(num_workers, "num_workers")
    if loads is None:
        # The figure's grid, restricted to loads that fit the dataset.
        loads = [load for load in range(5, 51, 5) if load <= m] or [max(m // 2, 1)]
    loads = [int(load) for load in loads]
    generator = as_generator(rng)

    analytic = tradeoff_curves(m, n, loads)
    curves = {
        name: [point.recovery_threshold for point in points]
        for name, points in analytic.items()
    }

    simulated: Dict[str, List[float]] = {}
    if monte_carlo_trials > 0:
        simulated = _simulate_thresholds(
            loads, m, n, monte_carlo_trials, generator, backend=backend
        )

    return Fig2Result(
        num_examples=m,
        num_workers=n,
        loads=loads,
        curves=curves,
        simulated=simulated,
        estimate_label="analytic" if backend == "analytic" else "sim",
    )
