"""The unified result type every backend returns.

:class:`RunResult` is a superset of the historical
:class:`~repro.simulation.job.JobResult` (simulated timing metrics plus an
optional training trace) and
:class:`~repro.runtime.job.DistributedRunResult` (wall-clock measurements of
the multiprocessing runtime), so callers can hold results from any backend in
one table without caring where they came from. ``summary()`` is preserved
from ``JobResult`` and ``to_table()`` renders the headline metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.exceptions import SimulationError
from repro.runtime.job import DistributedRunResult
from repro.simulation.job import JobResult
from repro.utils.tables import TextTable

__all__ = ["RunResult"]


@dataclass
class RunResult(JobResult):
    """Unified outcome of one job run, whatever backend executed it.

    In addition to the inherited :class:`~repro.simulation.job.JobResult`
    fields (``scheme_name``, simulated ``iterations``, optional
    ``training``), a run result carries:

    Attributes
    ----------
    backend:
        Name of the backend that produced the result.
    iteration_times:
        Wall-clock seconds per iteration (multiprocessing backend only).
    workers_heard:
        Realised per-iteration recovery thresholds measured by the
        multiprocessing master (the simulation backends record the same
        information inside ``iterations``).
    total_seconds:
        Total wall-clock time of a real run (0.0 for simulated runs).
    extras:
        Free-form metrics attached by custom sweep runners.
    """

    backend: str = ""
    iteration_times: List[float] = field(default_factory=list)
    workers_heard: List[int] = field(default_factory=list)
    total_seconds: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_job(cls, job: JobResult, *, backend: str) -> "RunResult":
        """Wrap a simulated :class:`JobResult` (shares the iterations list)."""
        return cls(
            scheme_name=job.scheme_name,
            iterations=job.iterations,
            training=job.training,
            backend=backend,
        )

    @classmethod
    def from_distributed(
        cls, result: DistributedRunResult, *, backend: str
    ) -> "RunResult":
        """Wrap a multiprocessing :class:`DistributedRunResult`."""
        return cls(
            scheme_name=result.scheme_name,
            training=result.training,
            backend=backend,
            iteration_times=list(result.iteration_times),
            workers_heard=list(result.workers_heard),
            total_seconds=result.total_seconds,
        )

    # ------------------------------------------------------------------ #
    @property
    def num_iterations(self) -> int:
        """Number of executed iterations (simulated or wall-clock)."""
        if self.iterations:
            return len(self.iterations)
        return len(self.iteration_times)

    @property
    def average_recovery_threshold(self) -> float:
        """Mean workers waited for per iteration, from whichever record exists."""
        if self.iterations:
            return JobResult.average_recovery_threshold.fget(self)
        if self.workers_heard:
            return float(np.mean(self.workers_heard))
        raise SimulationError("the run recorded no iterations")

    @property
    def total_time(self) -> float:
        """Total running time: simulated when available, else wall-clock."""
        if self.iterations:
            return JobResult.total_time.fget(self)
        return self.total_seconds

    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Headline metrics; the ``JobResult`` keys are preserved verbatim."""
        if self.iterations:
            data = JobResult.summary(self)
        else:
            data = {
                "scheme": self.scheme_name,
                "iterations": self.num_iterations,
                "total_time": self.total_time,
            }
            if self.workers_heard:
                data["recovery_threshold"] = self.average_recovery_threshold
        if self.backend:
            data["backend"] = self.backend
        if self.total_seconds:
            data["wall_seconds"] = self.total_seconds
        if self.training is not None and self.training.history:
            data["final_loss"] = self.training.losses[-1]
        return data

    def to_table(self, *, title: str = "") -> TextTable:
        """One-row-per-metric monospace table of :meth:`summary`."""
        table = TextTable(
            ["metric", "value"],
            title=title or f"{self.scheme_name} ({self.backend or 'run'})",
        )
        for key, value in self.summary().items():
            table.add_row([key, value])
        for key, value in self.extras.items():
            table.add_row(
                [key, value if isinstance(value, (str, int, float)) else repr(value)]
            )
        return table
