"""The unified result type every backend returns.

:class:`RunResult` is a superset of the historical
:class:`~repro.simulation.job.JobResult` (simulated timing metrics plus an
optional training trace) and
:class:`~repro.runtime.job.DistributedRunResult` (wall-clock measurements of
the multiprocessing runtime), so callers can hold results from any backend in
one table without caring where they came from. ``summary()`` is preserved
from ``JobResult`` and ``to_table()`` renders the headline metrics.

Record modes
------------
A result normally carries its **full** per-iteration log. For Monte-Carlo
sweeps only the aggregates usually matter, and shipping thousands of
:class:`~repro.simulation.iteration.IterationOutcome` objects across a
process pool's pickle boundary dwarfs the simulation itself. ``compact()``
converts a result to **summary** form: the headline aggregates are frozen
into ``summary_data``, the iteration log (and training trace) is dropped,
and every aggregate property keeps answering from the frozen summary.
:func:`~repro.api.sweep.run_sweep` exposes this as ``record="summary"``;
:func:`validate_record` is the single source of the mode names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.runtime.job import DistributedRunResult
from repro.simulation.job import JobResult
from repro.utils.tables import TextTable

__all__ = ["RECORD_MODES", "RunResult", "validate_record"]

#: Recognised ``record`` knob values across the sweep stack.
RECORD_MODES = ("full", "summary")


def validate_record(record: str) -> str:
    """Validate a ``record`` knob value, returning it unchanged."""
    if record not in RECORD_MODES:
        raise ConfigurationError(
            f"unknown record mode {record!r}; expected one of {list(RECORD_MODES)}"
        )
    return record


@dataclass
class RunResult(JobResult):
    """Unified outcome of one job run, whatever backend executed it.

    In addition to the inherited :class:`~repro.simulation.job.JobResult`
    fields (``scheme_name``, simulated ``iterations``, optional
    ``training``), a run result carries:

    Attributes
    ----------
    backend:
        Name of the backend that produced the result.
    iteration_times:
        Wall-clock seconds per iteration (multiprocessing backend only).
    workers_heard:
        Realised per-iteration recovery thresholds measured by the
        multiprocessing master (the simulation backends record the same
        information inside ``iterations``).
    total_seconds:
        Total wall-clock time of a real run (0.0 for simulated runs).
    extras:
        Free-form metrics attached by custom sweep runners.
    summary_data:
        Frozen headline metrics of a compacted (``record="summary"``)
        result; ``None`` while the full iteration log is carried.
    """

    backend: str = ""
    iteration_times: List[float] = field(default_factory=list)
    workers_heard: List[int] = field(default_factory=list)
    total_seconds: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)
    summary_data: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_job(cls, job: JobResult, *, backend: str) -> "RunResult":
        """Wrap a simulated :class:`JobResult` (shares the iterations list)."""
        return cls(
            scheme_name=job.scheme_name,
            iterations=job.iterations,
            training=job.training,
            backend=backend,
        )

    @classmethod
    def from_distributed(
        cls, result: DistributedRunResult, *, backend: str
    ) -> "RunResult":
        """Wrap a multiprocessing :class:`DistributedRunResult`."""
        wrapped = cls(
            scheme_name=result.scheme_name,
            training=result.training,
            backend=backend,
            iteration_times=list(result.iteration_times),
            workers_heard=list(result.workers_heard),
            total_seconds=result.total_seconds,
        )
        if result.scheduled_workers:
            # Fault-injected run: keep the realised availability trace so
            # the cross-validation layer can line it up against the
            # simulators' replay of the same scenario.
            wrapped.extras["scheduled_workers"] = list(result.scheduled_workers)
        return wrapped

    # ------------------------------------------------------------------ #
    def compact(self) -> "RunResult":
        """This result in summary form (see "Record modes" above).

        Freezes :meth:`summary` into ``summary_data`` and drops the
        per-iteration log and training trace, so the result pickles in a few
        hundred bytes however many iterations it simulated. Aggregate
        properties (``total_time``, ``average_recovery_threshold``, ...) and
        :meth:`summary` keep answering from the frozen values; per-iteration
        access (``iterations``, ``training``) is gone. Already-compact
        results are returned unchanged.
        """
        if self.summary_data is not None and not self.iterations:
            return self
        return RunResult(
            scheme_name=self.scheme_name,
            backend=self.backend,
            total_seconds=self.total_seconds,
            extras=dict(self.extras),
            summary_data=dict(self.summary()),
        )

    def _frozen(self, key: str) -> Optional[object]:
        """A compacted result's frozen summary value, or ``None``."""
        if self.summary_data is not None and not self.iterations:
            return self.summary_data.get(key)
        return None

    # ------------------------------------------------------------------ #
    @property
    def num_iterations(self) -> int:
        """Number of executed iterations (simulated or wall-clock)."""
        if self.iterations:
            return len(self.iterations)
        frozen = self._frozen("iterations")
        if frozen is not None:
            return int(frozen)
        return len(self.iteration_times)

    @property
    def average_recovery_threshold(self) -> float:
        """Mean workers waited for per iteration, from whichever record exists."""
        if self.iterations:
            return JobResult.average_recovery_threshold.fget(self)
        frozen = self._frozen("recovery_threshold")
        if frozen is not None:
            return float(frozen)
        if self.workers_heard:
            return float(np.mean(self.workers_heard))
        raise SimulationError("the run recorded no iterations")

    @property
    def average_communication_load(self) -> float:
        """Mean per-iteration communication load, surviving compaction."""
        frozen = self._frozen("communication_load")
        if frozen is not None:
            return float(frozen)
        return JobResult.average_communication_load.fget(self)

    @property
    def total_time(self) -> float:
        """Total running time: simulated when available, else wall-clock."""
        if self.iterations:
            return JobResult.total_time.fget(self)
        frozen = self._frozen("total_time")
        if frozen is not None:
            return float(frozen)
        return self.total_seconds

    @property
    def total_computation_time(self) -> float:
        """Total computation time, surviving compaction."""
        frozen = self._frozen("computation_time")
        if frozen is not None:
            return float(frozen)
        return JobResult.total_computation_time.fget(self)

    @property
    def total_communication_time(self) -> float:
        """Total communication time, surviving compaction."""
        frozen = self._frozen("communication_time")
        if frozen is not None:
            return float(frozen)
        return JobResult.total_communication_time.fget(self)

    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Headline metrics; the ``JobResult`` keys are preserved verbatim."""
        if self.summary_data is not None and not self.iterations:
            return dict(self.summary_data)
        if self.iterations:
            data = JobResult.summary(self)
        else:
            data = {
                "scheme": self.scheme_name,
                "iterations": self.num_iterations,
                "total_time": self.total_time,
            }
            if self.workers_heard:
                data["recovery_threshold"] = self.average_recovery_threshold
        if self.backend:
            data["backend"] = self.backend
        if self.total_seconds:
            data["wall_seconds"] = self.total_seconds
        if self.training is not None and self.training.history:
            data["final_loss"] = self.training.losses[-1]
        return data

    def to_table(self, *, title: str = "") -> TextTable:
        """One-row-per-metric monospace table of :meth:`summary`."""
        table = TextTable(
            ["metric", "value"],
            title=title or f"{self.scheme_name} ({self.backend or 'run'})",
        )
        for key, value in self.summary().items():
            table.add_row([key, value])
        for key, value in self.extras.items():
            table.add_row(
                [key, value if isinstance(value, (str, int, float)) else repr(value)]
            )
        return table
