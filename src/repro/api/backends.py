"""Execution backends: one ``run(spec) -> RunResult`` front door each.

Four implementations cover the repository's execution substrates:

* :class:`TimingSimBackend` — discrete-event simulation, timing only (the
  mode every figure/table benchmark uses; thousands of iterations/second).
* :class:`SemanticSimBackend` — the same simulated timing, plus real encoded
  gradients driving the optimizer, so the run also trains a model.
* :class:`MultiprocessBackend` — one OS process per worker; wall-clock
  measurements of a genuinely parallel run.
* :class:`AnalyticBackend` — no execution at all: closed-form expected
  runtimes via :meth:`~repro.schemes.base.Scheme.analytic_runtime`, O(1) in
  the iteration count, for sweeps at scales Monte Carlo cannot touch.

Anything with a ``run(spec)`` method (or a bare callable) satisfies the
:class:`Backend` protocol, which is what the sweep engine dispatches on —
custom Monte-Carlo runners slot in the same way.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    List,
    Protocol,
    Sequence,
    Type,
    Union,
    runtime_checkable,
)

from repro.analysis.analytic import DEFAULT_QUANTILES
from repro.api.result import RunResult, validate_record
from repro.api.spec import JobSpec
from repro.cluster.dynamic import DynamicClusterSpec
from repro.exceptions import AnalyticIntractableError, ConfigurationError
from repro.runtime.faults import (
    build_fault_schedule,
    ensure_injectable,
    plan_example_loads,
    validate_fault_mode,
)
from repro.runtime.job import run_distributed_job
from repro.schemes.base import ExecutionPlan
from repro.simulation.iteration import IterationOutcome
from repro.simulation.job import RepeatedOutcomeLog, simulate_job, simulate_training_run
from repro.simulation.kernels import validate_kernels
from repro.simulation.vectorized import (
    resolve_engine,
    simulate_job_batch,
    validate_engine,
)
from repro.utils.rng import RandomState

__all__ = [
    "Backend",
    "BackendLike",
    "TimingSimBackend",
    "SemanticSimBackend",
    "MultiprocessBackend",
    "AnalyticBackend",
    "available_backends",
    "get_backend",
    "run",
]


@runtime_checkable
class Backend(Protocol):
    """Anything that can execute a :class:`JobSpec`."""

    name: str

    def run(self, spec: JobSpec) -> RunResult:
        """Execute the spec and return the unified result."""
        ...


#: A backend instance, a registered backend name, or a bare runner callable.
BackendLike = Union[Backend, str, Callable[[JobSpec], RunResult]]


class TimingSimBackend:
    """Timing-only discrete-event simulation of the spec.

    Parameters
    ----------
    engine:
        ``"loop"``, ``"vectorized"``, or ``"auto"`` (default) — which timing
        engine executes the job. A spec-level ``backend_options["engine"]``
        overrides this per run, so one sweep can compare engines. The
        engines consume the random stream identically and therefore return
        bit-identical results; ``auto`` simply picks by job size.
    kernels:
        Hot-loop backend for the vectorized engine — ``"auto"`` (default),
        ``"numba"``, ``"cext"``, or ``"numpy"``; see
        :mod:`repro.simulation.kernels`. A spec-level
        ``backend_options["kernels"]`` overrides this per run. Every kernel
        backend is bit-identical, so the knob (like ``engine``) never
        changes a result — it is deliberately excluded from the backend's
        cache identity.
    """

    name = "timing"

    _OPTIONS = frozenset({"engine", "kernels"})

    def __init__(self, engine: str = "auto", kernels: str = "auto") -> None:
        self.engine = validate_engine(engine)
        self.kernels = validate_kernels(kernels)

    def _checked_options(self, spec: JobSpec) -> dict:
        """The spec's backend options, rejecting unrecognised keys.

        The single validation both entry points (:meth:`run` and
        :meth:`run_batch`) share, so they cannot drift on which specs they
        accept.
        """
        options = dict(spec.backend_options)
        unknown = sorted(set(options) - self._OPTIONS)
        if unknown:
            raise ConfigurationError(
                f"timing backend does not understand option(s) {unknown}; "
                f"recognised: {sorted(self._OPTIONS)}"
            )
        return options

    def run(self, spec: JobSpec) -> RunResult:
        """Simulate ``spec`` and return its timing-only :class:`RunResult`."""
        options = self._checked_options(spec)
        engine = options.pop("engine", self.engine)
        kernels = options.pop("kernels", self.kernels)
        job = simulate_job(
            spec.resolve_scheme(),
            spec.require_cluster(),
            num_units=spec.resolved_num_units,
            num_iterations=spec.num_iterations,
            rng=spec.seed,
            unit_size=spec.resolved_unit_size,
            serialize_master_link=spec.serialize_master_link,
            engine=engine,
            kernels=kernels,
        )
        return RunResult.from_job(job, backend=self.name)

    # -- trial batching ------------------------------------------------- #
    def _spec_engine(self, spec: JobSpec) -> str:
        """The engine a spec would run on (spec-level option wins)."""
        return spec.backend_options.get("engine", self.engine)

    def _spec_kernels(self, spec: JobSpec) -> str:
        """The kernel backend a spec would run on (spec-level option wins)."""
        return spec.backend_options.get("kernels", self.kernels)

    def supports_trial_batching(self, spec: JobSpec, *, num_trials: int = 1) -> bool:
        """Whether :meth:`run_batch` can execute this spec.

        True when the spec's effective engine resolves to ``"vectorized"``
        for the spec's job size — the trial-batched entry point is a
        vectorized-engine feature; under ``"loop"`` (or an ``"auto"`` that
        picks the loop) the sweep engine keeps per-trial tasks.
        ``num_trials`` feeds the ``auto`` cutover: a batched cell amortises
        the vectorized setup over all its trials, so small-but-replicated
        cells batch too.
        """
        cluster = spec.cluster
        if cluster is None:
            return False
        return (
            resolve_engine(
                self._spec_engine(spec),
                num_iterations=spec.num_iterations,
                num_workers=cluster.num_workers,
                num_trials=num_trials,
            )
            == "vectorized"
        )

    def run_batch(
        self,
        spec: JobSpec,
        seeds: Sequence[RandomState],
        *,
        record: str = "full",
    ) -> List[RunResult]:
        """Execute ``len(seeds)`` Monte-Carlo trials of one spec in one call.

        The trial-batched fast path behind
        :func:`~repro.api.sweep.run_sweep`'s cell dispatch: one
        :func:`~repro.simulation.vectorized.simulate_job_batch` entry
        resolves the spec's scheme once and simulates every trial over the
        stacked draw tensor (see that function for the RNG contract making
        each trial bit-identical to a solo run at the same seed). The spec's
        own ``seed`` is unused — the per-trial ``seeds`` replace it.

        ``record="summary"`` compacts each result before returning it, so a
        process pool ships aggregate statistics instead of pickling full
        per-iteration logs.
        """
        validate_record(record)
        self._checked_options(spec)
        if not self.supports_trial_batching(spec, num_trials=len(seeds)):
            raise ConfigurationError(
                "trial batching needs the vectorized engine; this spec "
                f"resolves to engine={self._spec_engine(spec)!r}"
            )
        jobs = simulate_job_batch(
            spec.resolve_scheme(),
            spec.require_cluster(),
            num_units=spec.resolved_num_units,
            num_iterations=spec.num_iterations,
            seeds=seeds,
            unit_size=spec.resolved_unit_size,
            serialize_master_link=spec.serialize_master_link,
            kernels=self._spec_kernels(spec),
        )
        results = [RunResult.from_job(job, backend=self.name) for job in jobs]
        if record == "summary":
            results = [result.compact() for result in results]
        return results


class SemanticSimBackend:
    """Simulated timing plus real gradient computation and optimizer updates.

    With the same spec and seed this backend consumes the random stream
    identically to :class:`TimingSimBackend` (the gradient math is
    deterministic), so the two agree exactly on every timing metric — the
    property the backend-equivalence test pins down.
    """

    name = "semantic"

    def run(self, spec: JobSpec) -> RunResult:
        """Run ``spec`` with real gradients under simulated timing."""
        workload = spec.require_workload()
        job = simulate_training_run(
            spec.resolve_scheme(),
            spec.require_cluster(),
            workload.model,
            workload.dataset,
            workload.optimizer,
            num_iterations=spec.num_iterations,
            rng=spec.seed,
            unit_spec=workload.unit_spec,
            serialize_master_link=spec.serialize_master_link,
            initial_weights=workload.initial_weights,
        )
        return RunResult.from_job(job, backend=self.name)


class MultiprocessBackend:
    """Real parallel execution: one OS process per worker.

    The worker count comes from the spec's cluster when one is given,
    otherwise from a ``num_workers`` backend option. Recognised
    ``backend_options``: ``num_workers``, ``straggle_delays``,
    ``receive_timeout``, ``iteration_timeout``, ``mp_context``,
    ``fault_mode``, ``include_communication``.

    A spec carrying an *injectable*
    :class:`~repro.cluster.dynamic.DynamicClusterSpec` (every worker process
    drawn from the registered process classes — see
    :func:`~repro.runtime.faults.ensure_injectable`) is replayed on the real
    workers through a :class:`~repro.runtime.faults.FaultSchedule`:
    seed-deterministic injected sleeps per task, with preempted/churned-out
    slots realised per ``fault_mode`` (``"mute"`` silent skips, the default,
    or ``"respawn"`` kill-and-respawn). Dynamic specs whose processes are
    *not* registered raise a typed
    :class:`~repro.exceptions.ConfigurationError` naming the unsupported
    process kind.
    """

    name = "multiprocess"

    _OPTIONS = frozenset(
        {
            "num_workers",
            "straggle_delays",
            "receive_timeout",
            "iteration_timeout",
            "mp_context",
            "fault_mode",
            "include_communication",
        }
    )

    def run(self, spec: JobSpec) -> RunResult:
        """Execute ``spec`` on real worker processes and report wall times."""
        workload = spec.require_workload()
        options = dict(spec.backend_options)
        unknown = sorted(set(options) - self._OPTIONS)
        if unknown:
            raise ConfigurationError(
                f"multiprocess backend does not understand option(s) {unknown}; "
                f"recognised: {sorted(self._OPTIONS)}"
            )
        num_workers = options.pop("num_workers", None)
        fault_mode = validate_fault_mode(options.pop("fault_mode", "mute"))
        include_communication = bool(options.pop("include_communication", True))
        injecting = isinstance(spec.cluster, DynamicClusterSpec)
        if injecting:
            ensure_injectable(spec.cluster)
            if options.get("straggle_delays") is not None:
                raise ConfigurationError(
                    "straggle_delays cannot be combined with a "
                    "DynamicClusterSpec: the cluster's fault schedule "
                    "already realises every injected sleep"
                )
        if spec.cluster is not None:
            if num_workers is not None and num_workers != spec.cluster.num_workers:
                raise ConfigurationError(
                    f"backend option num_workers={num_workers} conflicts with "
                    f"the cluster's {spec.cluster.num_workers} workers"
                )
            num_workers = spec.cluster.num_workers
        if num_workers is None:
            raise ConfigurationError(
                "the multiprocess backend needs a cluster or a num_workers "
                "backend option to size the worker pool"
            )
        rng = spec.rng()
        resolved = spec.resolve_scheme()
        if isinstance(resolved, ExecutionPlan):
            plan = resolved
        else:
            plan = resolved.build_feasible_plan(
                spec.resolved_num_units, int(num_workers), rng
            )
        fault_schedule = None
        if injecting:
            assert isinstance(spec.cluster, DynamicClusterSpec)
            fault_schedule = build_fault_schedule(
                spec.cluster,
                spec.num_iterations,
                loads=plan_example_loads(plan, workload.unit_spec),
                message_sizes=plan.message_sizes if include_communication else None,
                include_communication=include_communication,
                rng=rng,
            )
        worker_seed = int(rng.integers(0, 2**31 - 1))
        result = run_distributed_job(
            plan,
            workload.model,
            workload.dataset,
            workload.optimizer,
            num_iterations=spec.num_iterations,
            unit_spec=workload.unit_spec,
            straggle_delays=options.pop("straggle_delays", None),
            seed=worker_seed,
            initial_weights=workload.initial_weights,
            fault_schedule=fault_schedule,
            fault_mode=fault_mode,
            **options,
        )
        wrapped = RunResult.from_distributed(result, backend=self.name)
        if fault_schedule is not None:
            wrapped.extras["fault_fingerprint"] = fault_schedule.fingerprint()
            wrapped.extras["fault_mode"] = fault_mode
        return wrapped


class AnalyticBackend:
    """Closed-form expected runtimes — no iteration is ever simulated.

    The spec's scheme supplies its own closed form via
    :meth:`~repro.schemes.base.Scheme.analytic_runtime` (order statistics of
    shift-exponential arrivals, coupon-collector stopping indices, group-wise
    maxima; see :mod:`repro.analysis.analytic`); the backend replicates the
    per-iteration expectation across the spec's iteration budget so the
    result tabulates exactly like a simulated run. The cost of a run is
    independent of ``num_iterations``, which makes parameter sweeps
    effectively free next to Monte Carlo.

    The returned :class:`~repro.api.result.RunResult` carries the
    order-statistic quantiles in ``extras["analytic_quantiles"]``
    (per-iteration) and ``extras["analytic_total_quantiles"]``
    (normal-approximation quantiles of the total over all iterations), plus
    the per-iteration variance in ``extras["analytic_variance"]``.

    Schemes or cluster models outside the tractable regime — including any
    non-stationary :class:`~repro.cluster.dynamic.DynamicClusterSpec` —
    raise :class:`~repro.exceptions.AnalyticIntractableError`; the spec's
    seed is ignored (there is nothing random to draw).

    Parameters
    ----------
    quantiles:
        Quantile levels to evaluate; a spec-level
        ``backend_options["quantiles"]`` overrides this per run.
    """

    name = "analytic"

    _OPTIONS = frozenset({"quantiles"})

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        self.quantiles = tuple(float(q) for q in quantiles)

    def run(self, spec: JobSpec) -> RunResult:
        """Evaluate ``spec``'s closed-form expected runtime as a result."""
        options = dict(spec.backend_options)
        unknown = sorted(set(options) - self._OPTIONS)
        if unknown:
            raise ConfigurationError(
                f"analytic backend does not understand option(s) {unknown}; "
                f"recognised: {sorted(self._OPTIONS)}"
            )
        quantiles = tuple(
            float(q) for q in options.pop("quantiles", self.quantiles)
        )
        cluster = spec.require_cluster()
        if isinstance(cluster, DynamicClusterSpec):
            raise AnalyticIntractableError(
                "the cluster is non-stationary (DynamicClusterSpec): the "
                "closed-form runtime models assume one delay model per "
                "worker for the whole job; run the spec on the timing "
                "backend (both engines support dynamic clusters) instead"
            )
        scheme = spec.resolve_scheme()
        if isinstance(scheme, ExecutionPlan):
            raise AnalyticIntractableError(
                "the spec carries a pre-built execution plan; the analytic "
                "backend needs the scheme itself (its closed form averages "
                "over placements, it cannot price one frozen plan)"
            )
        estimate = scheme.analytic_runtime(
            cluster,
            spec.resolved_num_units,
            unit_size=spec.resolved_unit_size,
            serialize_master_link=spec.serialize_master_link,
            quantiles=quantiles,
        )
        # One expected outcome standing in for the whole iteration budget:
        # every aggregate (totals, averages) matches the closed form exactly,
        # and both memory and aggregation stay O(1) in num_iterations.
        outcome = IterationOutcome(
            total_time=estimate.total_time,
            computation_time=estimate.computation_time,
            communication_time=estimate.communication_time,
            workers_heard=estimate.recovery_threshold,
            communication_load=estimate.communication_load,
            workers_finished_compute=estimate.workers_finished_compute,
            heard_workers=(),
        )
        result = RunResult(
            scheme_name=scheme.name,
            iterations=RepeatedOutcomeLog(outcome, spec.num_iterations),
            backend=self.name,
        )
        result.extras["analytic_quantiles"] = dict(estimate.quantiles)
        result.extras["analytic_total_quantiles"] = estimate.total_runtime_quantiles(
            spec.num_iterations
        )
        result.extras["analytic_variance"] = estimate.variance
        result.extras["analytic_mode"] = estimate.mode
        if estimate.details:
            result.extras["analytic_details"] = dict(estimate.details)
        return result


_BACKENDS: Dict[str, Type] = {
    TimingSimBackend.name: TimingSimBackend,
    SemanticSimBackend.name: SemanticSimBackend,
    MultiprocessBackend.name: MultiprocessBackend,
    AnalyticBackend.name: AnalyticBackend,
}


def available_backends() -> list:
    """Sorted names of the built-in backends."""
    return sorted(_BACKENDS)


def get_backend(backend: BackendLike) -> Backend:
    """Resolve a backend name/instance/callable into a ``Backend``."""
    if isinstance(backend, str):
        try:
            return _BACKENDS[backend]()
        except KeyError:
            raise ConfigurationError(
                f"unknown backend {backend!r}; available: {available_backends()}"
            ) from None
    if isinstance(backend, type):
        backend = backend()
    if callable(backend) and not hasattr(backend, "run"):
        return _CallableBackend(backend)
    if isinstance(backend, Backend):
        return backend
    raise ConfigurationError(
        f"cannot use {backend!r} as a backend; expected a name, a Backend, "
        "or a callable taking a JobSpec"
    )


class _CallableBackend:
    """Adapter giving a bare ``spec -> RunResult`` callable the protocol shape."""

    def __init__(self, runner: Callable[[JobSpec], RunResult]) -> None:
        self._runner = runner
        self.name = getattr(runner, "__name__", "custom")

    def run(self, spec: JobSpec) -> RunResult:
        return self._runner(spec)


def run(spec: JobSpec, backend: BackendLike = "timing") -> RunResult:
    """Execute one job spec on the chosen backend — the library's front door."""
    return get_backend(backend).run(spec)
