"""Declarative job specification — the single front door's input type.

A :class:`JobSpec` captures *what* to run (scheme, cluster, workload,
iteration budget, seed) without saying *how*; a
:class:`~repro.api.backends.Backend` decides that. The same spec can be
timed on the discrete-event simulator, trained semantically under simulated
time, or executed for real on multiprocessing workers — and the sweep engine
(:mod:`repro.api.sweep`) derives grid/zip variations from it via
:meth:`JobSpec.with_overrides`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Union

import numpy as np

from repro.cluster.dynamic import DynamicClusterSpec
from repro.cluster.spec import ClusterSpec
from repro.datasets.base import Dataset
from repro.datasets.batching import BatchSpec
from repro.exceptions import ConfigurationError
from repro.gradients.base import GradientModel
from repro.optim.base import Optimizer
from repro.schemes.base import ExecutionPlan, Scheme
from repro.schemes.registry import SchemeLike, scheme_from_config
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.api.backends import Backend

__all__ = ["Workload", "JobSpec"]


@dataclass(frozen=True)
class Workload:
    """The learning task of a semantic or multiprocessing run.

    Attributes
    ----------
    model, dataset, optimizer:
        The loss/gradient model, the training data, and the update rule.
    unit_spec:
        Unit-to-example mapping when the scheme's data units are batches
        ("super examples"); ``None`` means every example is its own unit.
    initial_weights:
        Starting point; ``None`` uses the model's default (the zero vector).
    """

    model: GradientModel
    dataset: Dataset
    optimizer: Optimizer
    unit_spec: Optional[BatchSpec] = None
    initial_weights: Optional[np.ndarray] = None

    @property
    def num_units(self) -> int:
        """Number of data units the scheme distributes."""
        if self.unit_spec is not None:
            return self.unit_spec.num_batches
        return self.dataset.num_examples

    @property
    def unit_size(self) -> int:
        """Examples per unit (drives the computation-time draws)."""
        if self.unit_spec is not None:
            return self.unit_spec.max_batch_size
        return 1


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to run one distributed-GD job, declaratively.

    Attributes
    ----------
    scheme:
        A :class:`~repro.schemes.Scheme` instance, a registered scheme name
        (``"bcc"``), or a config mapping (``{"name": "bcc", "load": 10}``).
        Config-form schemes are resolved against the registry with the
        spec's cluster, so heterogeneous schemes work by name too. The sweep
        engine may also place a pre-built
        :class:`~repro.schemes.base.ExecutionPlan` here (its per-cell plan
        hoisting): the simulation backends then skip plan resolution
        entirely — which consumes no randomness, so it only happens when the
        scheme's planning is itself draw-free.
    cluster:
        The (simulated) cluster — a stationary
        :class:`~repro.cluster.spec.ClusterSpec` or a
        :class:`~repro.cluster.dynamic.DynamicClusterSpec` (time-varying
        stragglers and worker churn; simulation backends only, the analytic
        backend raises
        :class:`~repro.exceptions.AnalyticIntractableError`). Required by
        the simulation backends; optional for custom sweep runners that do
        not simulate workers.
    num_units:
        Number of data units; ``None`` derives it from the workload.
    num_iterations:
        Gradient-descent iterations to run.
    seed:
        Seed-like value (int, ``SeedSequence``, ``Generator``, or ``None``)
        driving every random draw of the job.
    unit_size:
        Examples per unit for timing-only runs; ``None`` derives it from the
        workload (defaulting to 1).
    serialize_master_link:
        Whether master-side message receipt is serialised over one link
        (the paper's single-NIC master).
    workload:
        The learning task; required by the semantic and multiprocessing
        backends, ignored by timing-only simulation.
    backend_options:
        Backend-specific extras (e.g. ``receive_timeout`` or
        ``straggle_delays`` for the multiprocessing backend, ``engine`` for
        the timing backend, ``quantiles`` for the analytic backend).

    Examples
    --------
    Declare a BCC job on a deterministic ten-worker cluster and execute it
    (the default backend is the timing-only simulator; any other backend
    accepts the same spec):

    >>> from repro.api import JobSpec, run
    >>> from repro.cluster.spec import ClusterSpec
    >>> from repro.stragglers.models import DeterministicDelay
    >>> cluster = ClusterSpec.homogeneous(10, DeterministicDelay(0.01))
    >>> spec = JobSpec(
    ...     scheme={"name": "bcc", "load": 5},
    ...     cluster=cluster,
    ...     num_units=20,
    ...     num_iterations=3,
    ...     seed=0,
    ... )
    >>> spec.resolved_num_units
    20
    >>> run(spec).num_iterations
    3

    Sweep-style overrides derive cell specs without mutating the base:

    >>> spec.with_overrides({"scheme.load": 10}).scheme["load"]
    10
    >>> spec.scheme["load"]
    5
    """

    scheme: SchemeLike
    cluster: Optional[Union[ClusterSpec, DynamicClusterSpec]] = None
    num_units: Optional[int] = None
    num_iterations: int = 1
    seed: RandomState = 0
    unit_size: Optional[int] = None
    serialize_master_link: bool = True
    workload: Optional[Workload] = None
    backend_options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive_int(self.num_iterations, "num_iterations")
        if self.num_units is not None:
            check_positive_int(self.num_units, "num_units")
        if self.unit_size is not None:
            check_positive_int(self.unit_size, "unit_size")
        if self.workload is not None and self.num_units is not None:
            if self.num_units != self.workload.num_units:
                raise ConfigurationError(
                    f"num_units={self.num_units} conflicts with the workload, "
                    f"which defines {self.workload.num_units} units; set "
                    "num_units=None to derive it"
                )
        if self.workload is not None and self.unit_size is not None:
            if self.unit_size != self.workload.unit_size:
                raise ConfigurationError(
                    f"unit_size={self.unit_size} conflicts with the workload, "
                    f"whose units hold {self.workload.unit_size} example(s); "
                    "set unit_size=None to derive it"
                )

    # ------------------------------------------------------------------ #
    @property
    def resolved_num_units(self) -> int:
        """Number of data units, derived from the workload when unset."""
        if self.num_units is not None:
            return self.num_units
        if self.workload is not None:
            return self.workload.num_units
        raise ConfigurationError(
            "the spec defines neither num_units nor a workload to derive it from"
        )

    @property
    def resolved_unit_size(self) -> int:
        """Examples per unit, derived from the workload when unset."""
        if self.unit_size is not None:
            return self.unit_size
        if self.workload is not None:
            return self.workload.unit_size
        return 1

    def resolve_scheme(self) -> Union[Scheme, ExecutionPlan]:
        """Build (or pass through) the scheme, injecting the spec's cluster.

        A dynamic cluster injects its *base* cluster: placement (and
        heterogeneous load allocation) is planned against the nominal
        cluster, then the dynamics perturb execution. A pre-built
        :class:`~repro.schemes.base.ExecutionPlan` passes through unchanged
        (the simulation entry points accept either).
        """
        if isinstance(self.scheme, ExecutionPlan):
            return self.scheme
        cluster = self.cluster
        if isinstance(cluster, DynamicClusterSpec):
            cluster = cluster.base
        return scheme_from_config(self.scheme, cluster=cluster)

    def rng(self) -> np.random.Generator:
        """The job's random generator (shared instances pass through unchanged)."""
        return as_generator(self.seed)

    def require_cluster(self) -> ClusterSpec:
        """The spec's cluster, or a configuration error naming the gap."""
        if self.cluster is None:
            raise ConfigurationError("this backend needs the spec to define a cluster")
        return self.cluster

    def require_workload(self) -> Workload:
        """The spec's workload, or a configuration error naming the gap."""
        if self.workload is None:
            raise ConfigurationError(
                "this backend needs the spec to define a workload "
                "(model, dataset, optimizer)"
            )
        return self.workload

    def fingerprint(self, *, backend: Optional["Backend"] = None) -> str:
        """The spec's canonical content fingerprint (SHA-256 hex digest).

        Keys the result cache: the digest is computed from the spec's
        *configuration* — scheme, cluster, workload, iteration budget,
        seed — never from object identity (``id``/``hash``/``repr``), so
        equal configurations fingerprint identically across processes and
        sessions, and round-trip unchanged through config serialisation.
        Pass ``backend`` to fold the executing backend's identity (class
        and engine/configuration) into the digest; results from different
        engines must never collide in a cache.

        Raises
        ------
        FingerprintError
            When the spec carries state with no canonical form — a live
            :class:`numpy.random.Generator` seed, a custom runner
            callable, or an object whose constructor state is not
            recoverable. Such specs are uncacheable; the cache computes
            them normally instead of keying them unsafely.
        """
        from repro.api.fingerprint import fingerprint_spec

        return fingerprint_spec(self, backend=backend)

    # ------------------------------------------------------------------ #
    def replace(self, **changes: object) -> "JobSpec":
        """A copy of the spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_overrides(self, overrides: Mapping[str, object]) -> "JobSpec":
        """A copy with sweep-style overrides applied.

        Override keys are either spec field names (``"num_iterations"``,
        ``"cluster"``, ``"scheme"``, ...) or dotted scheme-config keys
        (``"scheme.load"``) that update the scheme's config mapping. A plain
        ``"scheme"`` override is applied before any dotted keys, so a sweep
        can vary both the scheme and its parameters in one grid.
        """
        field_names = {f.name for f in dataclasses.fields(self)}
        scheme = self.scheme
        scheme_updates: Dict[str, object] = {}
        field_updates: Dict[str, object] = {}
        for key, value in overrides.items():
            if key == "scheme":
                scheme = value
            elif key.startswith("scheme."):
                scheme_updates[key[len("scheme."):]] = value
            elif key in field_names:
                field_updates[key] = value
            else:
                raise ConfigurationError(
                    f"unknown sweep parameter {key!r}; use a JobSpec field "
                    "name or a 'scheme.<parameter>' key"
                )
        if scheme_updates:
            if isinstance(scheme, (Scheme, ExecutionPlan)):
                raise ConfigurationError(
                    "cannot apply 'scheme.*' overrides to an already-built "
                    "scheme instance; specify the scheme as a name or config "
                    "mapping instead"
                )
            config = {"name": scheme} if isinstance(scheme, str) else dict(scheme)
            config.update(scheme_updates)
            scheme = config
        return dataclasses.replace(self, scheme=scheme, **field_updates)
