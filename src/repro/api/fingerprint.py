"""Canonical content fingerprints — the result cache's keying contract.

A fingerprint is a SHA-256 digest over a *canonical form* of a job spec
(plus the backend that will execute it): a recursively normalised,
JSON-serialisable structure in which equal configurations encode equally
regardless of construction order, container identity, or interpreter
session. The contract, enforced here and linted by CACHE002:

* **Content only.** Nothing identity-derived ever enters a key — no
  ``id()``, no ``hash()``, no ``repr()`` of live objects. Two specs built
  independently from the same configuration fingerprint identically, in
  this process or any other.
* **Total or loud.** Every value either canonicalises completely or raises
  :class:`~repro.exceptions.FingerprintError` naming the offending piece.
  Live generators (``np.random.Generator``), callables, and objects whose
  state is not recoverable are *uncacheable by design* — silently keying
  them on identity would serve wrong results.
* **Round-trip stable.** The canonical form survives
  ``json.loads(json.dumps(...))`` unchanged, so a fingerprint computed
  from a config that went through serialisation matches the original.

Mappings are key-sorted; arrays encode as dtype/shape/content digests;
seeds encode by entropy and spawn key (the values that determine every
draw); dataclasses and plain model objects encode as their class path plus
canonicalised constructor state.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import types
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import FingerprintError

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.api.backends import Backend
    from repro.api.spec import JobSpec

__all__ = ["canonical_value", "backend_identity", "fingerprint_spec"]

#: Types that are already canonical (and JSON-stable) as-is.
_ATOMIC = (type(None), bool, int, float, str)

#: Callable flavours that carry code, not configuration — never canonical.
_CALLABLE_TYPES = (
    types.FunctionType,
    types.LambdaType,
    types.MethodType,
    types.BuiltinFunctionType,
    types.BuiltinMethodType,
)


def _class_path(value: object) -> str:
    """The importable ``module.QualName`` path of a value's class."""
    cls = type(value)
    return f"{cls.__module__}.{cls.__qualname__}"


def _sort_key(item: Tuple[object, object]) -> str:
    """Deterministic ordering for canonicalised mapping items."""
    return json.dumps(item[0], sort_keys=True, default=str)


def canonical_value(value: object) -> object:
    """Recursively normalise a value into its canonical, JSON-stable form.

    Raises
    ------
    FingerprintError
        If the value (or anything it contains) has no canonical form —
        live random generators, callables, or objects whose state cannot
        be recovered from attributes.
    """
    if isinstance(value, _ATOMIC):
        return value
    if isinstance(value, _CALLABLE_TYPES):
        raise FingerprintError(
            f"cannot fingerprint the callable {getattr(value, '__qualname__', value)!r}: "
            "functions carry code, not configuration; give the cache a "
            "named backend and config-form scheme instead"
        )
    if isinstance(value, (np.random.Generator, np.random.BitGenerator)):
        raise FingerprintError(
            "cannot fingerprint a live random generator: its state mutates "
            "with every draw, so no stable content key exists; seed the "
            "spec with an int or SeedSequence to make it cacheable"
        )
    if isinstance(value, np.random.SeedSequence):
        entropy = value.entropy
        return {
            "__seedseq__": canonical_value(
                list(entropy) if isinstance(entropy, (list, tuple)) else entropy
            ),
            "spawn_key": [int(key) for key in value.spawn_key],
            "pool_size": int(value.pool_size),
        }
    if isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        return {
            "__ndarray__": hashlib.sha256(contiguous.tobytes()).hexdigest(),
            "dtype": str(contiguous.dtype),
            "shape": list(contiguous.shape),
        }
    if isinstance(value, np.generic):
        return {"__npscalar__": value.item(), "dtype": str(value.dtype)}
    if isinstance(value, Mapping):
        items = [
            [canonical_value(key), canonical_value(entry)]
            for key, entry in value.items()
        ]
        items.sort(key=_sort_key)
        return {"__map__": items}
    if isinstance(value, (list, tuple)):
        return [canonical_value(entry) for entry in value]
    if isinstance(value, (set, frozenset)):
        members = [canonical_value(entry) for entry in value]
        members.sort(key=lambda entry: json.dumps(entry, sort_keys=True, default=str))
        return {"__set__": members}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            spec_field.name: canonical_value(getattr(value, spec_field.name))
            for spec_field in dataclasses.fields(value)
        }
        return {"__dataclass__": _class_path(value), "fields": fields}
    state = getattr(value, "__dict__", None)
    if isinstance(state, dict):
        return {
            "__object__": _class_path(value),
            "state": canonical_value(state),
        }
    raise FingerprintError(
        f"cannot fingerprint {_class_path(value)} instance: it exposes no "
        "recoverable constructor state (no dataclass fields, no __dict__)"
    )


def backend_identity(backend: "Backend") -> object:
    """The canonical identity of a backend: class path plus configuration.

    Two backend instances with the same class and the same configured
    state (engine, quantiles, ...) are interchangeable for caching; two
    different engines are not, because their results may differ bit-wise.
    Callable-wrapped backends (custom runners) raise
    :class:`~repro.exceptions.FingerprintError` — their behaviour lives in
    code the fingerprint cannot see.
    """
    return {"__backend__": _class_path(backend), "state": canonical_value(vars(backend))}


def fingerprint_spec(spec: "JobSpec", *, backend: Optional["Backend"] = None) -> str:
    """SHA-256 content fingerprint of a spec (and optionally its backend).

    The digest covers the spec's full configuration — scheme, cluster,
    workload, iteration budget, and seed — and, when given, the executing
    backend's identity (class + engine/configuration). Equal configurations
    produce equal digests across processes and sessions.
    """
    payload: Dict[str, object] = {"spec": canonical_value(spec)}
    if backend is not None:
        payload["backend"] = backend_identity(backend)
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
